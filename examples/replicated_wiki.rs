//! Replication by shipping the event log: a primary repository with a
//! background durability writer, and a read replica that tails the log
//! directory and serves a converging wiki + search index.
//!
//! Run with: `cargo run --example replicated_wiki`

use std::sync::Arc;
use std::time::Duration;

use bx::core::pipeline::{BackgroundWriter, PipelineConfig};
use bx::core::replica::Replica;
use bx::core::storage::{AutoCompactingEventLog, CompactionPolicy};
use bx::core::{EntryId, ExampleEntry, ExampleType, Principal, Repository};

fn entry(title: &str, overview: &str) -> ExampleEntry {
    ExampleEntry::builder(title)
        .of_type(ExampleType::Precise)
        .overview(overview)
        .models("Two model spaces, as ever.")
        .consistency("The usual relation.")
        .restoration("Forward fix.", "Backward fix.")
        .discussion("Discussed at length.")
        .author("alice")
        .build()
        .expect("valid entry")
}

fn main() {
    let dir = std::env::temp_dir().join(format!("bx-replicated-wiki-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // == the primary ==
    // Found a repository and attach the background durability pipeline:
    // an event-log backend under an aggressive auto-compaction policy,
    // written by a dedicated thread behind a bounded channel.
    let primary = Repository::found("bx-examples", vec![Principal::curator("curator")]);
    let backend = AutoCompactingEventLog::open(
        &dir,
        CompactionPolicy {
            // Small on purpose: the second flush below crosses this
            // threshold, so the replica demonstrably re-bases across a
            // checkpoint instead of only tailing one generation.
            checkpoint_every: 6,
        },
    )
    .expect("event log opens");
    // Group-commit durability: the writer thread holds a 2 ms fsync
    // window open, so concurrent commits share one `sync_all` instead of
    // paying one each; `flush()` still blocks until *our* events are
    // durable (a waiting flush closes the window early).
    let writer = Arc::new(BackgroundWriter::with_config(
        backend,
        PipelineConfig::group_commit(Duration::from_millis(2)),
    ));
    // Plain subscribe() is forward-only; subscribe_with_backfill also
    // hands the sink the pending history (here: the founding event),
    // atomically with the subscription.
    primary.subscribe_with_backfill(writer.clone());

    primary
        .register(Principal::member("alice"))
        .expect("fresh account");
    let composers = primary
        .contribute("alice", entry("COMPOSERS", "Composers and nationalities."))
        .expect("contribution lands");
    primary
        .contribute("alice", entry("DATES", "Date format synchronisation."))
        .expect("contribution lands");

    // Durability point: everything enqueued so far is on disk after this.
    writer.flush().expect("background writer healthy");
    let health = writer.health();
    println!(
        "primary: {} entries, pipeline healthy: {}, {} events over {} group commit(s)",
        primary.len(),
        health.healthy(),
        health.stats.durable,
        health.stats.group_commits,
    );

    // == the replica ==
    // In production this directory would be rsynced / NFS-shared; here the
    // replica tails it in place. It serves wiki pages and search without
    // ever touching the primary.
    let mut replica = Replica::open(&dir).expect("replica opens");
    println!(
        "replica: {} entries at position {:?}",
        replica.snapshot().records.len(),
        replica.position()
    );
    let page = replica
        .site()
        .current(&composers.page_name())
        .expect("replica serves the page");
    println!(
        "replica serves `{}` ({} markup lines)",
        composers.page_name(),
        page.lines().count()
    );
    println!(
        "replica search `composers`: {:?}",
        replica.query(&["composers"])
    );

    // == edits converge ==
    let mut revised = primary.latest(&composers).expect("entry exists");
    revised.overview = "Composers, now with key-based matching.".to_string();
    primary
        .revise("alice", &composers, revised)
        .expect("authors revise");
    primary
        .comment(
            "alice",
            &EntryId::from_title("DATES"),
            "2014-04-02",
            "Which calendar?",
        )
        .expect("members comment");

    writer.flush().expect("background writer healthy");
    let progress = replica.catch_up().expect("replica tails");
    println!(
        "replica caught up: {} tailed event(s), rebased across a checkpoint: {}",
        progress.events_applied, progress.rebased
    );
    println!(
        "replica page tracks the revision: {}",
        replica
            .site()
            .current(&composers.page_name())
            .expect("page present")
            .contains("key-based matching")
    );
    println!(
        "replica state == primary state: {}",
        replica.snapshot() == &primary.snapshot()
    );

    writer.shutdown().expect("orderly drain");
    // With BX_WIKI_KEEP_DIR set, the event-log directory is left on disk
    // (its path printed on the last line) so a follow-up tool can read
    // it — CI runs `bx_lint` over it to assert the example's log
    // restores to a diagnostics-clean repository.
    if std::env::var_os("BX_WIKI_KEEP_DIR").is_some() {
        println!("event log kept at: {}", dir.display());
    } else {
        std::fs::remove_dir_all(&dir).ok();
    }
}
