//! `bx logconv` — convert an event-log directory between the two
//! on-disk formats: JSONL (debug/interchange) and the binary segmented
//! log (fast replay, whole-log corruption detection).
//!
//! Run with: `cargo run --example bx_logconv -- <binary|jsonl> <src-dir> <dst-dir>`
//! or, for a whole federation's source set:
//! `cargo run --example bx_logconv -- <binary|jsonl> --federation <src-root> <dst-root>`
//!
//! The destination mirrors the source's durable contents — checkpoint
//! base plus the intact pending events — in the requested format, and
//! must be empty or absent (a conversion is never merged into an
//! existing log). A torn tail in the source is dropped, exactly as a
//! restart would drop it; real corruption aborts the conversion.
//!
//! In `--federation` mode every immediate subdirectory of `<src-root>`
//! is one source log (the layout a [`bx::core::replica::Federation`]
//! tails), converted to the same-named subdirectory of `<dst-root>`. A
//! per-source summary line reports each outcome; a source that fails
//! does not stop the others. Decode fans out over all cores via the
//! parallel restore pipeline.
//!
//! Exit codes: `0` — converted; `1` — conversion failed (corrupt
//! source, unwritable destination; in `--federation` mode, any source
//! failed); `2` — usage problem. Same contract as `bx_lint`, so CI can
//! chain them: convert a kept log, lint the conversion, convert it back.

use std::path::Path;
use std::process::ExitCode;

use bx::core::binlog::convert_log_dir_with;
use bx::core::RestoreOptions;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (format, federation, src, dst) = match args.as_slice() {
        [format, src, dst] => (format, false, src, dst),
        [format, flag, src, dst] if flag == "--federation" => (format, true, src, dst),
        _ => {
            eprintln!(
                "usage: bx_logconv <binary|jsonl> <src-dir> <dst-dir>\n\
                        bx_logconv <binary|jsonl> --federation <src-root> <dst-root>"
            );
            return ExitCode::from(2);
        }
    };
    let to_binary = match format.as_str() {
        "binary" => true,
        "jsonl" => false,
        other => {
            eprintln!("bx logconv: unknown target format `{other}` (want `binary` or `jsonl`)");
            return ExitCode::from(2);
        }
    };
    let (src, dst) = (Path::new(src), Path::new(dst));
    if !src.is_dir() {
        eprintln!("bx logconv: source `{}` is not a directory", src.display());
        return ExitCode::from(2);
    }
    if federation {
        return convert_federation(src, dst, to_binary, format);
    }

    match convert_log_dir_with(src, dst, to_binary, RestoreOptions::default()) {
        Ok(events) => {
            println!(
                "bx logconv: wrote {} pending event(s) from `{}` to `{}` as {}",
                events,
                src.display(),
                dst.display(),
                format,
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bx logconv: converting `{}` failed: {e}", src.display());
            ExitCode::from(1)
        }
    }
}

/// Convert every source subdirectory of `src_root` into the same-named
/// subdirectory of `dst_root`, reporting each outcome and failing the
/// run (exit 1) if any source failed while still attempting the rest.
fn convert_federation(src_root: &Path, dst_root: &Path, to_binary: bool, format: &str) -> ExitCode {
    let mut sources: Vec<(String, std::path::PathBuf)> = match std::fs::read_dir(src_root) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .filter(|e| e.path().is_dir())
            .map(|e| (e.file_name().to_string_lossy().into_owned(), e.path()))
            .collect(),
        Err(e) => {
            eprintln!("bx logconv: reading `{}` failed: {e}", src_root.display());
            return ExitCode::from(2);
        }
    };
    if sources.is_empty() {
        eprintln!(
            "bx logconv: `{}` has no source subdirectories to convert",
            src_root.display()
        );
        return ExitCode::from(2);
    }
    sources.sort();
    let mut converted = 0usize;
    let mut failed = 0usize;
    for (name, src) in &sources {
        let dst = dst_root.join(name);
        match convert_log_dir_with(src, &dst, to_binary, RestoreOptions::default()) {
            Ok(events) => {
                converted += 1;
                println!("bx logconv: source `{name}`: {events} pending event(s) as {format}");
            }
            Err(e) => {
                failed += 1;
                eprintln!("bx logconv: source `{name}`: FAILED: {e}");
            }
        }
    }
    println!(
        "bx logconv: federation `{}`: {converted} converted, {failed} failed",
        src_root.display()
    );
    if failed > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
