//! `bx logconv` — convert an event-log directory between the two
//! on-disk formats: JSONL (debug/interchange) and the binary segmented
//! log (fast replay, whole-log corruption detection).
//!
//! Run with: `cargo run --example bx_logconv -- <binary|jsonl> <src-dir> <dst-dir>`
//!
//! The destination mirrors the source's durable contents — checkpoint
//! base plus the intact pending events — in the requested format, and
//! must be empty or absent (a conversion is never merged into an
//! existing log). A torn tail in the source is dropped, exactly as a
//! restart would drop it; real corruption aborts the conversion.
//!
//! Exit codes: `0` — converted; `1` — conversion failed (corrupt
//! source, unwritable destination); `2` — usage problem. Same contract
//! as `bx_lint`, so CI can chain them: convert a kept log, lint the
//! conversion, convert it back.

use std::path::Path;
use std::process::ExitCode;

use bx::core::binlog::convert_log_dir;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [format, src, dst] = args.as_slice() else {
        eprintln!("usage: bx_logconv <binary|jsonl> <src-dir> <dst-dir>");
        return ExitCode::from(2);
    };
    let to_binary = match format.as_str() {
        "binary" => true,
        "jsonl" => false,
        other => {
            eprintln!("bx logconv: unknown target format `{other}` (want `binary` or `jsonl`)");
            return ExitCode::from(2);
        }
    };
    let (src, dst) = (Path::new(src), Path::new(dst));
    if !src.is_dir() {
        eprintln!("bx logconv: source `{}` is not a directory", src.display());
        return ExitCode::from(2);
    }

    match convert_log_dir(src, dst, to_binary) {
        Ok(events) => {
            println!(
                "bx logconv: wrote {} pending event(s) from `{}` to `{}` as {}",
                events,
                src.display(),
                dst.display(),
                format,
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bx logconv: converting `{}` failed: {e}", src.display());
            ExitCode::from(1)
        }
    }
}
