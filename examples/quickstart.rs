//! Quickstart: open the standard repository, look an example up, run its
//! executable artefact, and verify a claimed property.
//!
//! Run with: `cargo run --example quickstart`

use bx::core::{cite, EntryId};
use bx::examples::composers::{composer_set, composers_bx, pair_list};
use bx::examples::standard_repository;
use bx::theory::{check_all_laws, Bx, Samples};

fn main() {
    // 1. The repository.
    let repo = standard_repository();
    println!("repository `{}` holds {} entries:", repo.name(), repo.len());
    for id in repo.ids() {
        let e = repo.latest(&id).expect("listed id resolves");
        println!("  - {:<22} v{} {:?}", e.title, e.version, e.types);
    }

    // 2. A stable reference you could put in a paper.
    let id = EntryId::from_title("COMPOSERS");
    println!(
        "\ncite it as:\n  {}",
        cite::cite(&repo, &id, None).expect("entry exists")
    );

    // 3. The executable artefact: restore consistency forward.
    let b = composers_bx();
    let m = composer_set(&[
        ("Jean Sibelius", "1865-1957", "Finnish"),
        ("Aaron Copland", "1910-1990", "American"),
    ]);
    let n = pair_list(&[
        ("Jean Sibelius", "Finnish"),
        ("Wolfgang Mozart", "Austrian"),
    ]);
    println!("\nbefore: consistent = {}", b.consistent(&m, &n));
    let repaired = b.fwd(&m, &n);
    println!("after fwd: {repaired:?}");
    println!("after: consistent = {}", b.consistent(&m, &repaired));

    // 4. Machine-check the entry's Properties field.
    let entry = repo.latest(&id).expect("entry exists");
    let samples = Samples::new(
        vec![(m.clone(), repaired.clone()), (m, n)],
        vec![composer_set(&[])],
        vec![pair_list(&[])],
    );
    let matrix = check_all_laws(&b, &samples);
    println!("\nverifying the entry's claimed properties:");
    for verdict in matrix.verify_claims(&entry.properties) {
        println!("  {verdict}");
    }
}
