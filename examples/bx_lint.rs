//! `bx lint` — the diagnostics CLI: run the full law check over an
//! event-log directory and print the report.
//!
//! Run with: `cargo run --example bx_lint -- <event-log-dir>`
//! or, for a whole federation's source set:
//! `cargo run --example bx_lint -- --federation <src-root>`
//!
//! In `--federation` mode every immediate subdirectory of `<src-root>`
//! is one source log (the layout a [`bx::core::replica::Federation`]
//! tails), linted independently with a per-source summary line. A source
//! that fails to restore — or lints dirty — does not stop the others,
//! mirroring the federation's own supervision: one sick source never
//! starves its peers.
//!
//! Exit codes: `0` — no errors (warnings and infos allowed); `1` — at
//! least one error diagnostic (in `--federation` mode: in any source,
//! counting an unrestorable source as an error); `2` — usage or I/O
//! problem. That makes it scriptable: CI points it at a log directory
//! and fails the build when a law is violated. Same contract as
//! `bx_logconv --federation`, so the two chain.

use std::path::Path;
use std::process::ExitCode;

use bx::core::storage::EventLogBackend;
use bx::lint::{full_check, standard_catalog};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [dir] => lint_single(Path::new(dir)),
        [flag, root] if flag == "--federation" => lint_federation(Path::new(root)),
        _ => {
            eprintln!(
                "usage: bx_lint <event-log-dir>\n\
                        bx_lint --federation <src-root>"
            );
            ExitCode::from(2)
        }
    }
}

fn lint_single(dir: &Path) -> ExitCode {
    if !dir.is_dir() {
        eprintln!("bx lint: `{}` is not a directory", dir.display());
        return ExitCode::from(2);
    }

    // Recover the snapshot exactly as a restart would: checkpoint (if
    // any) plus replay of the intact log tail — a torn final append is
    // ignored, a corrupt interior line is a hard error.
    let snapshot = match EventLogBackend::restore_dir(dir) {
        Ok(snapshot) => snapshot,
        Err(e) => {
            eprintln!("bx lint: cannot restore `{}`: {e}", dir.display());
            return ExitCode::from(2);
        }
    };

    let catalog = standard_catalog();
    let index = full_check(&snapshot, &catalog);
    println!(
        "bx lint: {} entr{} checked in `{}` against {} registered artefact check(s)",
        snapshot.records.len(),
        if snapshot.records.len() == 1 {
            "y"
        } else {
            "ies"
        },
        dir.display(),
        catalog.len(),
    );
    print!("{}", index.report());

    if index.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Lint every source subdirectory of `src_root`, reporting each outcome
/// and failing the run (exit 1) if any source has errors — while still
/// linting the rest.
fn lint_federation(src_root: &Path) -> ExitCode {
    let mut sources: Vec<(String, std::path::PathBuf)> = match std::fs::read_dir(src_root) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .filter(|e| e.path().is_dir())
            .map(|e| (e.file_name().to_string_lossy().into_owned(), e.path()))
            .collect(),
        Err(e) => {
            eprintln!("bx lint: reading `{}` failed: {e}", src_root.display());
            return ExitCode::from(2);
        }
    };
    if sources.is_empty() {
        eprintln!(
            "bx lint: `{}` has no source subdirectories to lint",
            src_root.display()
        );
        return ExitCode::from(2);
    }
    sources.sort();
    let catalog = standard_catalog();
    let mut clean = 0usize;
    let mut failed = 0usize;
    for (name, src) in &sources {
        let snapshot = match EventLogBackend::restore_dir(src) {
            Ok(snapshot) => snapshot,
            Err(e) => {
                failed += 1;
                eprintln!("bx lint: source `{name}`: FAILED to restore: {e}");
                continue;
            }
        };
        let index = full_check(&snapshot, &catalog);
        if index.is_clean() {
            clean += 1;
            println!(
                "bx lint: source `{name}`: {} entr{} clean",
                snapshot.records.len(),
                if snapshot.records.len() == 1 {
                    "y"
                } else {
                    "ies"
                },
            );
        } else {
            failed += 1;
            println!("bx lint: source `{name}`: errors found");
            print!("{}", index.report());
        }
    }
    println!(
        "bx lint: federation `{}`: {clean} clean, {failed} with errors",
        src_root.display()
    );
    if failed > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
