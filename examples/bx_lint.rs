//! `bx lint` — the diagnostics CLI: run the full law check over an
//! event-log directory and print the report.
//!
//! Run with: `cargo run --example bx_lint -- <event-log-dir>`
//!
//! Exit codes: `0` — no errors (warnings and infos allowed); `1` — at
//! least one error diagnostic; `2` — usage or I/O problem. That makes it
//! scriptable: CI points it at a log directory and fails the build when
//! a law is violated.

use std::path::Path;
use std::process::ExitCode;

use bx::core::storage::EventLogBackend;
use bx::lint::{full_check, standard_catalog};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [dir] = args.as_slice() else {
        eprintln!("usage: bx_lint <event-log-dir>");
        return ExitCode::from(2);
    };
    let dir = Path::new(dir);
    if !dir.is_dir() {
        eprintln!("bx lint: `{}` is not a directory", dir.display());
        return ExitCode::from(2);
    }

    // Recover the snapshot exactly as a restart would: checkpoint (if
    // any) plus replay of the intact log tail — a torn final append is
    // ignored, a corrupt interior line is a hard error.
    let snapshot = match EventLogBackend::restore_dir(dir) {
        Ok(snapshot) => snapshot,
        Err(e) => {
            eprintln!("bx lint: cannot restore `{}`: {e}", dir.display());
            return ExitCode::from(2);
        }
    };

    let catalog = standard_catalog();
    let index = full_check(&snapshot, &catalog);
    println!(
        "bx lint: {} entr{} checked in `{}` against {} registered artefact check(s)",
        snapshot.records.len(),
        if snapshot.records.len() == 1 {
            "y"
        } else {
            "ies"
        },
        dir.display(),
        catalog.len(),
    );
    print!("{}", index.report());

    if index.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
