//! The databases-community face: updatable views via relational lenses —
//! select-then-drop and join with delete-left.
//!
//! Run with: `cargo run --example relational_views`

use bx::examples::orders_join::{albums_join, sample_albums, sample_years};
use bx::examples::persons_view::{persons_view, sample_people};
use bx::relational::{RelLens, Relation, Value};

fn main() {
    println!("== PERSONS-VIEW: select Paris, drop phone ==");
    let lens = persons_view();
    let source = sample_people();
    println!("source:\n{source}");
    let view = lens.get(&source).expect("schemas line up");
    println!("view:\n{view}");

    // Edit the view: keep Ana, add Dora.
    let edited = Relation::from_rows(
        view.schema().clone(),
        vec![
            vec![Value::str("Ana"), Value::str("Paris")],
            vec![Value::str("Dora"), Value::str("Paris")],
        ],
    )
    .expect("rows match view schema");
    let put_back = lens
        .put(&source, &edited)
        .expect("view rows satisfy the predicate");
    println!("after put (Ana keeps +33-1, Dora defaults, Lyon row untouched):\n{put_back}");

    println!("== ALBUMS-JOIN: delete-left ==");
    let join = albums_join();
    let src = (sample_albums(), sample_years());
    let joined = join.get(&src).expect("shared album column");
    println!("join view:\n{joined}");

    let mut v = joined.clone();
    v.remove(&[Value::str("Galore"), Value::Int(1), Value::Int(1997)]);
    let (albums, years) = join.put(&src, &v).expect("key determines left attributes");
    println!("after deleting Galore from the view:");
    println!("albums (row deleted):\n{albums}");
    println!("years (row retained as complement):\n{years}");
}
