//! A tour of the repository machinery: curation workflow, versioning,
//! search, citations, the wiki bx, persistence and the archival
//! manuscript.
//!
//! Run with: `cargo run --example repository_tour`

use bx::core::event::dirty_set;
use bx::core::index::SearchIndex;
use bx::core::manuscript::{export_manuscript, ManuscriptOptions};
use bx::core::wiki_bx::WikiBx;
use bx::core::{cite, persist, EntryId, EventLogBackend, Principal, StorageBackend, WikiSite};
use bx::examples::standard_repository;
use bx::theory::Bx;

fn main() {
    let repo = standard_repository();

    println!("== curation ==");
    let composers = EntryId::from_title("COMPOSERS");
    println!(
        "COMPOSERS status: {}",
        repo.status(&composers).expect("entry exists")
    );
    // A newcomer registers, comments, and the authors revise.
    repo.register(Principal::member("newcomer"))
        .expect("fresh account");
    repo.comment(
        "newcomer",
        &composers,
        "2014-04-01",
        "Should nationality changes be key-based?",
    )
    .expect("members may comment");
    println!(
        "comments on COMPOSERS: {}",
        repo.latest(&composers)
            .expect("entry exists")
            .comments
            .len()
    );

    println!("\n== versioning ==");
    let dates = EntryId::from_title("DATES");
    for v in repo.versions(&dates).expect("entry exists") {
        println!("DATES has version {v} (still citable)");
    }
    println!(
        "pinned citation: {}",
        cite::cite(&repo, &dates, Some(bx::core::Version::new(0, 1))).expect("old version kept")
    );

    println!("\n== search ==");
    let index = SearchIndex::build(&repo.snapshot());
    for (id, score) in index.query(&["lens"]) {
        println!("  `lens` found in {id} (score {score})");
    }

    println!("\n== the §5.4 wiki bx ==");
    let bx = WikiBx::new();
    let snap = repo.snapshot();
    let site = bx.fwd(&snap, &WikiSite::new());
    println!("published {} example pages", site.example_pages().len());
    println!("consistent: {}", bx.consistent(&snap, &site));
    let back = bx.bwd(&snap, &site);
    println!("round-trip lossless: {}", back == snap);

    println!("\n== the delta stream ==");
    // Everything above was also recorded as typed change events; drain
    // them and catch every downstream materialization up incrementally.
    let mut index = index;
    let mut site = site;
    repo.drain_events(); // history up to here is already materialized
    let dates_id = EntryId::from_title("DATES");
    repo.comment("newcomer", &dates_id, "2014-04-02", "Which calendar?")
        .expect("members may comment");
    let events = repo.drain_events();
    println!("one comment = {} delta event(s)", events.len());
    let snap = repo.snapshot();
    for event in &events {
        index.apply(event); // re-tokenises only the touched entry
    }
    let dirty = dirty_set(&events);
    bx.sync_changed(&snap, &mut site, &dirty); // re-renders only dirty pages
    println!(
        "incremental index ≡ rebuild: {}",
        index == SearchIndex::build(&snap)
    );
    println!(
        "dirty-synced site consistent: {} ({} page(s) re-rendered)",
        bx.consistent(&snap, &site),
        dirty.len()
    );

    println!("\n== persistence ==");
    let json = persist::to_json(&snap).expect("snapshots serialise");
    println!("JSON snapshot: {} bytes", json.len());
    let reloaded = persist::from_json(&json).expect("snapshots deserialise");
    println!("reload lossless: {}", reloaded == snap);

    // The pluggable backends speak deltas too: append the comment's
    // events to an event log and recover via snapshot+replay.
    let dir = std::env::temp_dir().join(format!("bx-tour-eventlog-{}", std::process::id()));
    let mut backend = EventLogBackend::open(&dir).expect("event log opens");
    backend.checkpoint(&snap).expect("checkpoint");
    repo.comment("newcomer", &dates_id, "2014-04-03", "Julian or Gregorian?")
        .expect("members may comment");
    backend.record(&repo.drain_events()).expect("append deltas");
    let recovered = backend.restore().expect("snapshot+replay");
    println!(
        "{} backend recovers the live state: {}",
        backend.kind(),
        recovered == repo.snapshot()
    );
    std::fs::remove_dir_all(&dir).ok();

    println!("\n== archival manuscript ==");
    let text = export_manuscript(&snap, ManuscriptOptions::default());
    let preview: String = text.lines().take(18).collect::<Vec<_>>().join("\n");
    println!("{preview}\n… ({} lines total)", text.lines().count());
}
