//! The notorious example, live: synchronise a UML class diagram with a
//! relational schema in both directions, and check conformance of the
//! lowered model against its metamodel.
//!
//! Run with: `cargo run --example uml_sync`

use bx::examples::uml2rdbms::{
    uml2rdbms_bx, uml_metamodel, uml_to_object_model, RdbModel, UmlModel,
};
use bx::mde::check_conformance;
use bx::theory::Bx;

fn main() {
    let b = uml2rdbms_bx();

    let uml = UmlModel::default()
        .with_class(
            "Person",
            true,
            &[("id", "Integer", true), ("name", "String", false)],
        )
        .with_class("Session", false, &[("token", "String", true)])
        .document("Person", "name", "full legal name");

    println!("== forward: generate the schema ==");
    let rdb = b.fwd(&uml, &RdbModel::default());
    for table in rdb.tables.values() {
        println!("table {}:", table.name);
        for c in &table.columns {
            println!("  {} {} {}", c.name, c.ty, if c.key { "KEY" } else { "" });
        }
    }
    println!("(Session is transient: no table)");
    assert!(b.consistent(&uml, &rdb));

    println!("\n== backward: the DBA adds a column ==");
    let mut edited = rdb.clone();
    edited
        .tables
        .get_mut("Person")
        .expect("table exists")
        .columns
        .push(bx::examples::uml2rdbms::Column {
            name: "email".to_string(),
            ty: "VARCHAR".to_string(),
            key: false,
        });
    let uml2 = b.bwd(&uml, &edited);
    let person = &uml2.classes["Person"];
    println!(
        "Person attributes now: {:?}",
        person
            .attributes
            .iter()
            .map(|a| a.name.as_str())
            .collect::<Vec<_>>()
    );
    assert!(
        uml2.classes.contains_key("Session"),
        "transient class survived"
    );
    assert!(b.consistent(&uml2, &edited));

    println!("\n== the cost: documentation does not round-trip ==");
    let gone = b.bwd(&b.bwd(&uml, &RdbModel::default()), &rdb);
    println!(
        "after delete-all + restore, Person.name comment = {:?} (was \"full legal name\")",
        gone.classes["Person"].attributes[1].comment
    );

    println!("\n== conformance against the metamodel ==");
    let om = uml_to_object_model(&uml2);
    let issues = check_conformance(&uml_metamodel(), &om);
    println!(
        "lowered model: {} objects, {} conformance issues",
        om.len(),
        issues.len()
    );
    assert!(issues.is_empty());
}
