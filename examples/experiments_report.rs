//! Regenerates the verification side of EXPERIMENTS.md: for every
//! executable entry in the collection, the law matrix and the verdict on
//! each published property claim — the paper's §4 Properties list as a
//! machine-checked table.
//!
//! Run with: `cargo run --example experiments_report`

use bx::examples::benchmark::{generate_composers, pairs_of, perturb_pairs};
use bx::examples::composers::{composers_bx, ComposerSet, PairList};
use bx::examples::families::{families_bx, Family, FamilyModel, NewMemberPolicy, PersonModel};
use bx::examples::uml2rdbms::{uml2rdbms_bx, RdbModel, UmlModel};
use bx::theory::{check_all_laws, Bx, Claim, Samples};

fn report<M, N, B>(title: &str, bx: &B, samples: &Samples<M, N>, claims: &[Claim])
where
    M: Clone + PartialEq + std::fmt::Debug,
    N: Clone + PartialEq + std::fmt::Debug,
    B: Bx<M, N>,
{
    println!("== {title} ==");
    let matrix = check_all_laws(bx, samples);
    for r in &matrix.reports {
        println!("  {r}");
    }
    println!("  published claims:");
    for verdict in matrix.verify_claims(claims) {
        println!("    {verdict}");
    }
    println!();
}

fn entry_claims(title: &str) -> Vec<Claim> {
    bx::examples::all_entries()
        .into_iter()
        .find(|e| e.title == title)
        .map(|e| e.properties)
        .unwrap_or_default()
}

fn composers_samples() -> Samples<ComposerSet, PairList> {
    let m1 = generate_composers(12, 1);
    let n1 = pairs_of(&m1);
    let bad = perturb_pairs(&n1, 3, 2, 1);
    let m2 = generate_composers(4, 2);
    Samples::new(
        vec![
            (m1.clone(), n1.clone()),
            (m1, bad),
            (m2.clone(), pairs_of(&m2)),
        ],
        vec![ComposerSet::new(), m2],
        vec![PairList::new()],
    )
}

fn uml_samples() -> Samples<UmlModel, RdbModel> {
    let b = uml2rdbms_bx();
    let m1 = UmlModel::default()
        .with_class(
            "Person",
            true,
            &[("id", "Integer", true), ("name", "String", false)],
        )
        .with_class("Session", false, &[("token", "String", true)])
        .document("Person", "name", "full legal name");
    let n1 = b.fwd(&m1, &RdbModel::default());
    let m2 = UmlModel::default().with_class("Invoice", true, &[("total", "Integer", false)]);
    let n2 = b.fwd(&m2, &RdbModel::default());
    Samples::new(
        vec![(m1.clone(), n1), (m2.clone(), n2.clone()), (m1, n2)],
        vec![m2, UmlModel::default()],
        vec![RdbModel::default()],
    )
}

fn family_samples() -> Samples<FamilyModel, PersonModel> {
    let b = families_bx(NewMemberPolicy::PreferChild);
    let mut m1 = FamilyModel::new();
    m1.insert(
        "March".to_string(),
        Family {
            father: Some("Jim".to_string()),
            mother: Some("Cindy".to_string()),
            sons: ["Brandon".to_string()].into(),
            daughters: ["Brenda".to_string()].into(),
        },
    );
    let n1 = b.fwd(&m1, &PersonModel::new());
    Samples::new(
        vec![(m1.clone(), n1), (m1, PersonModel::new())],
        vec![FamilyModel::new()],
        vec![PersonModel::new()],
    )
}

fn main() {
    println!("bx-repo experiments report — law matrices & claim verdicts\n");

    report(
        "E2/E3 COMPOSERS (paper section 4)",
        &composers_bx(),
        &composers_samples(),
        &entry_claims("COMPOSERS"),
    );
    report(
        "E8 UML2RDBMS",
        &uml2rdbms_bx(),
        &uml_samples(),
        &entry_claims("UML2RDBMS"),
    );
    report(
        "FAMILIES2PERSONS (prefer-child)",
        &families_bx(NewMemberPolicy::PreferChild),
        &family_samples(),
        &entry_claims("FAMILIES2PERSONS"),
    );
    report(
        "E7 repository<->wiki (paper section 5.4)",
        &bx::core::wiki_bx::WikiBx::new(),
        &{
            let bx = bx::core::wiki_bx::WikiBx::new();
            let snap = bx::examples::standard_repository().snapshot();
            let mut small = snap.clone();
            let extra: Vec<_> = small.records.keys().skip(3).cloned().collect();
            for id in extra {
                small.records.remove(&id);
            }
            let site = bx.fwd(&snap, &bx::core::WikiSite::new());
            let small_site = bx.fwd(&small, &bx::core::WikiSite::new());
            Samples::new(
                vec![
                    (snap.clone(), site.clone()),
                    (small.clone(), site),
                    (snap, small_site),
                ],
                vec![small],
                vec![bx::core::WikiSite::new()],
            )
        },
        &[
            Claim::holds(bx::theory::Property::Correct),
            Claim::holds(bx::theory::Property::Hippocratic),
        ],
    );

    println!("(UndoableFwd/UndoableBwd violations above are the *expected* outcome:");
    println!(" the entries claim \"Not undoable\" and the checker confirms it.)");
}
