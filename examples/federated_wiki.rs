//! A federated serving tier: two independent primaries (say, the EU and
//! US mirrors of the examples repository) each ship their own event log;
//! one federation node tails both into a single namespaced wiki + search
//! index, and a `ReplicaDaemon` polls it in the background while serving
//! federated query, citation and manuscript reads.
//!
//! Run with: `cargo run --example federated_wiki`

use std::time::Duration;

use bx::core::pipeline::BackgroundWriter;
use bx::core::replica::{DaemonConfig, Federation, ReplicaDaemon, SourceId};
use bx::core::storage::{AutoCompactingEventLog, CompactionPolicy};
use bx::core::{EntryId, ExampleEntry, ExampleType, ManuscriptOptions, Principal, Repository};
use std::sync::Arc;

fn entry(title: &str, overview: &str) -> ExampleEntry {
    ExampleEntry::builder(title)
        .of_type(ExampleType::Precise)
        .overview(overview)
        .models("Two model spaces, as ever.")
        .consistency("The usual relation.")
        .restoration("Forward fix.", "Backward fix.")
        .discussion("Discussed at length.")
        .author("alice")
        .build()
        .expect("valid entry")
}

/// One primary: a repository with a background durability writer shipping
/// an auto-compacting event log into `dir`.
fn primary(name: &str, dir: &std::path::Path) -> (Repository, Arc<BackgroundWriter>) {
    let repo = Repository::found(name, vec![Principal::curator("curator")]);
    let backend = AutoCompactingEventLog::open(
        dir,
        CompactionPolicy {
            checkpoint_every: 6, // small, so the federation re-bases visibly
        },
    )
    .expect("event log opens");
    let writer = Arc::new(BackgroundWriter::spawn(backend));
    repo.subscribe_with_backfill(writer.clone());
    repo.register(Principal::member("alice")).expect("fresh");
    (repo, writer)
}

fn main() {
    let base = std::env::temp_dir().join(format!("bx-federated-wiki-{}", std::process::id()));
    let eu_dir = base.join("eu");
    let us_dir = base.join("us");
    std::fs::remove_dir_all(&base).ok();

    // == two independent primaries ==
    let (eu, eu_writer) = primary("bx-examples-eu", &eu_dir);
    let (us, us_writer) = primary("bx-examples-us", &us_dir);

    // Both primaries publish a COMPOSERS entry — the classic collision a
    // single-directory replica could not hold. Each also has entries of
    // its own.
    eu.contribute("alice", entry("COMPOSERS", "Composers, the EU curation."))
        .expect("lands");
    eu.contribute("alice", entry("DATES", "Date format synchronisation."))
        .expect("lands");
    us.contribute("alice", entry("COMPOSERS", "Composers, the US curation."))
        .expect("lands");
    eu_writer.flush().expect("eu durable");
    us_writer.flush().expect("us durable");

    // == the federation node ==
    let federation = Federation::open(
        "The Federated Bx Examples Repository",
        vec![
            (SourceId::new("eu"), eu_dir.clone()),
            (SourceId::new("us"), us_dir.clone()),
        ],
    )
    .expect("federation opens");
    println!(
        "federation: {} entries from {} sources",
        federation.snapshot().records.len(),
        federation.source_ids().len()
    );
    let mut daemon = ReplicaDaemon::spawn(
        federation,
        DaemonConfig {
            poll_interval: Duration::from_millis(10),
        },
    );

    // Federated search: both COMPOSERS entries, namespaced apart.
    let hits = daemon.query(&["composers"]);
    println!("federated search `composers`:");
    for (id, score) in &hits {
        println!("  {id} (score {score})");
    }

    // Citations follow the namespaced page URLs.
    println!("citation listing:");
    for citation in daemon.citations() {
        println!("  {citation}");
    }

    // == writes keep flowing while the daemon serves ==
    let composers = EntryId::from_title("COMPOSERS");
    let mut revised = eu.latest(&composers).expect("exists");
    revised.overview = "Composers, now with key-based matching.".to_string();
    eu.revise("alice", &composers, revised)
        .expect("authors revise");
    us.comment("alice", &composers, "2014-04-02", "Which key, though?")
        .expect("members comment");
    eu_writer.flush().expect("eu durable");
    us_writer.flush().expect("us durable");

    daemon.force_catch_up().expect("both sources present");
    let stats = daemon.stats();
    println!(
        "daemon: {} polls, {} events applied, {} rebases, lag {:?}",
        stats.polls, stats.events_applied, stats.rebases, stats.source_lag
    );
    daemon.with_federation(|federation| {
        let page = federation
            .site()
            .current("examples:eu/composers")
            .expect("the EU page is served");
        println!(
            "eu/composers page tracks the revision: {}",
            page.contains("key-based matching")
        );
        println!(
            "us/composers page carries the comment: {}",
            federation
                .site()
                .current("examples:us/composers")
                .expect("the US page is served")
                .contains("Which key, though?")
        );
    });

    // The archival manuscript over the merged state: distinct BibTeX
    // keys even for the colliding titles.
    let manuscript = daemon.export_manuscript(ManuscriptOptions::default());
    let keys: Vec<&str> = manuscript
        .lines()
        .filter(|l| l.starts_with("@misc{"))
        .collect();
    println!("manuscript BibTeX keys: {keys:?}");

    // == clean teardown: no orphan threads ==
    let stats = daemon.stop();
    println!(
        "daemon stopped cleanly after {} polls (running: {})",
        stats.polls,
        daemon.is_running()
    );
    eu_writer.shutdown().expect("orderly drain");
    us_writer.shutdown().expect("orderly drain");
    std::fs::remove_dir_all(&base).ok();
}
