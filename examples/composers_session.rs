//! A full COMPOSERS session: walks the §4 example end to end — the base
//! bx, the undoability counterexample from the paper's Discussion, every
//! variation point, and the Boomerang string-lens variant.
//!
//! Run with: `cargo run --example composers_session`

use bx::examples::composers::{
    composer_set, composers_bx, composers_name_key_bx, composers_prepend_bx,
    composers_with_date_policy, pair_list, UNKNOWN_DATES,
};
use bx::examples::composers_boomerang::{composers_lens, SAMPLE_SOURCE};
use bx::theory::Bx;

fn main() {
    let b = composers_bx();

    println!("== the undoability counterexample (paper §4, Discussion) ==");
    let m0 = composer_set(&[("Jean Sibelius", "1865-1957", "Finnish")]);
    let n0 = pair_list(&[("Jean Sibelius", "Finnish")]);
    println!("start (consistent): m = {m0:?}");
    let n1 = pair_list(&[]); // delete from n
    let m1 = b.bwd(&m0, &n1);
    println!("after deleting the entry and restoring m: m = {m1:?}");
    let m2 = b.bwd(&m1, &n0); // restore n, re-enforce
    println!("after restoring the entry and re-enforcing: m = {m2:?}");
    assert_ne!(m2, m0);
    println!("the dates are gone ({UNKNOWN_DATES}); undoability fails.\n");

    println!("== variation point 1: modify-or-create (Britten) ==");
    let m = composer_set(&[("Benjamin Britten", "1913-1976", "British")]);
    let n = pair_list(&[("Benjamin Britten", "English")]);
    println!("base:     {:?}", b.bwd(&m, &n));
    println!("name-key: {:?}", composers_name_key_bx().bwd(&m, &n));
    println!();

    println!("== variation point 2: insert position ==");
    let m = composer_set(&[
        ("Aaron Copland", "1910-1990", "American"),
        ("Jean Sibelius", "1865-1957", "Finnish"),
    ]);
    let n = pair_list(&[("Jean Sibelius", "Finnish")]);
    println!("append (base): {:?}", b.fwd(&m, &n));
    println!("prepend:       {:?}", composers_prepend_bx().fwd(&m, &n));
    println!();

    println!("== variation point 3: dates policy ==");
    let custom = composers_with_date_policy("fl. c1700");
    let created = custom.bwd(&composer_set(&[]), &pair_list(&[("Anon", "Unknown")]));
    println!("with policy 'fl. c1700': {created:?}");
    println!();

    println!("== the Boomerang asymmetric variant (string lens) ==");
    let lens = composers_lens();
    println!("source file:\n{SAMPLE_SOURCE}");
    let view = lens
        .get(SAMPLE_SOURCE)
        .expect("sample source is well-formed");
    println!("view (dates elided):\n{view}");
    let edited = "Benjamin Britten, English\nJean Sibelius, Finnish\n";
    let put_back = lens
        .put(SAMPLE_SOURCE, edited)
        .expect("edited view is well-formed");
    println!("after reordering + deleting + editing the view, put back:\n{put_back}");
    assert!(
        put_back.contains("1913-1976"),
        "resourcefulness kept Britten's dates"
    );
}
