//! Federation fault tolerance under chaos: random per-source fault
//! plans (vanish/reappear, corrupt frames, flaky writers) against the
//! supervision layer. The invariants:
//!
//! * **healthy sources always converge** to [`federate_snapshots`] no
//!   matter how sick their peers are — a failing source surfaces a typed
//!   error in the catch-up outcome, never an abort;
//! * a quarantined source **recovers** — vanished directories resume
//!   their tail from the last good position once restored, and corrupt
//!   sources reopen from their intact prefix under
//!   [`RecoveryPolicy::SalvagePrefix`] with a [`SalvageReport`] on the
//!   record (and on the runtime health channel);
//! * **backoff bounds the poll cost** of a permanently dead source.

use std::path::PathBuf;
use std::time::Duration;

use bx::core::index::SearchIndex;
use bx::core::replica::{federate_snapshots, DaemonConfig, Federation, ReplicaDaemon, SourceId};
use bx::core::repo::RepositorySnapshot;
use bx::core::storage::{EventLogBackend, StorageBackend};
use bx::core::wiki_bx::WikiBx;
use bx::core::{HealthReport, RecoveryPolicy, RepoError, RetryPolicy, Runtime, SourceHealth};
use bx::theory::Bx;
use bx_testkit::faults::{
    corrupt_append, corrupt_append_binary, restore_dir, vanish_dir, FlakyBackend,
};
use bx_testkit::federation::{drive_federation, FederationScript, SourcePlan};
use bx_testkit::ops::{apply_op, arb_ops, scripted_repository, unique_temp_dir, RepoOp};
use proptest::prelude::*;

fn source_ids() -> [SourceId; 3] {
    [SourceId::new("a"), SourceId::new("b"), SourceId::new("c")]
}

fn dirs(tag: &str) -> Vec<PathBuf> {
    ["a", "b", "c"]
        .iter()
        .map(|s| unique_temp_dir(&format!("{tag}-{s}")))
        .collect()
}

fn plain_plan(ops: Vec<RepoOp>) -> SourcePlan {
    SourcePlan {
        ops,
        compaction: None,
        kill_after_events: None,
        torn_tail: false,
        binary: false,
    }
}

fn single_script(ops: Vec<RepoOp>) -> FederationScript {
    FederationScript {
        sources: vec![plain_plan(ops)],
        schedule: Vec::new(),
    }
}

fn open_federation(dirs: &[PathBuf]) -> Federation {
    let pairs = source_ids().into_iter().zip(dirs.iter().cloned()).collect();
    Federation::open("fed", pairs).expect("federation opens")
}

/// The merged state the federation must hold, given per-source folds.
fn spec(expected: &[RepositorySnapshot]) -> RepositorySnapshot {
    let pairs: Vec<_> = source_ids()
        .into_iter()
        .zip(expected.iter().cloned())
        .collect();
    federate_snapshots("fed", &pairs)
}

fn assert_converged(federation: &Federation, expected: &[RepositorySnapshot]) {
    let merged = spec(expected);
    assert_eq!(federation.snapshot(), &merged, "merged snapshot");
    assert_eq!(
        federation.index(),
        &SearchIndex::build(&merged),
        "merged index"
    );
    assert!(
        WikiBx::new().consistent(&merged, federation.site()),
        "merged wiki pages render the per-source folds"
    );
}

/// A supervision-friendly policy: no backoff (every pass polls every
/// source, keeping the test deterministic) but instant quarantine, so
/// the salvage gate opens on the first corruption.
fn eager_policy() -> RetryPolicy {
    RetryPolicy {
        quarantine_after: 1,
        ..RetryPolicy::immediate()
    }
}

/// One source's randomly drawn misfortune for a chaos round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    /// Writes round two normally.
    Healthy,
    /// Directory vanishes and stays gone until the final repair.
    VanishForever,
    /// Directory vanishes, then reappears mid-chaos (with new writes).
    VanishThenReappear,
    /// A complete-but-unparseable line lands after round two's durable
    /// writes — the reader must not apply anything past it.
    CorruptFrame,
    /// The primary's writer suffers transient IO faults: whole batches
    /// drop, then the writer recovers — readers see a stall, no error.
    FlakyWriter,
}

fn arb_fault() -> impl Strategy<Value = Fault> {
    prop_oneof![
        Just(Fault::Healthy),
        Just(Fault::VanishForever),
        Just(Fault::VanishThenReappear),
        Just(Fault::CorruptFrame),
        Just(Fault::FlakyWriter),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline chaos property: random scripts, random fault plans,
    /// and the healthy subset of a 3-source federation still converges
    /// to [`federate_snapshots`] over (healthy durable folds + sick
    /// sources' last good folds); after repair, everyone reconverges.
    #[test]
    fn healthy_sources_converge_regardless_of_sick_peers(
        round_one in (arb_ops(10), arb_ops(10), arb_ops(10)),
        round_two in (arb_ops(6), arb_ops(6), arb_ops(6)),
        fault_plan in (arb_fault(), arb_fault(), arb_fault()),
        flaky_failures in 1usize..4,
    ) {
        let dirs = dirs("chaos");
        let ids = source_ids();
        let faults = [fault_plan.0, fault_plan.1, fault_plan.2];
        let round_two = [round_two.0, round_two.1, round_two.2];

        // Round one: fault-free interleaved drive, then a clean open.
        // Every source opens with one guaranteed contribution: a source
        // with no durable history at all reads as "not written yet", and
        // a vanished empty directory would be indistinguishable from it.
        let seeded = |mut ops: Vec<RepoOp>, title: &str| {
            ops.insert(0, contribute(title));
            ops
        };
        let last_good = drive_federation(&dirs, &FederationScript {
            sources: vec![
                plain_plan(seeded(round_one.0, "SEED-A")),
                plain_plan(seeded(round_one.1, "SEED-B")),
                plain_plan(seeded(round_one.2, "SEED-C")),
            ],
            schedule: Vec::new(),
        });
        let mut federation = open_federation(&dirs);
        federation.set_retry_policy(eager_policy());
        assert_converged(&federation, &last_good);

        // Unleash the fault plans alongside round two's writes.
        let mut hidden: [Option<PathBuf>; 3] = [None, None, None];
        let mut expected = last_good.clone();
        for i in 0..3 {
            match faults[i] {
                Fault::Healthy => {
                    drive_federation(
                        std::slice::from_ref(&dirs[i]),
                        &single_script(round_two[i].clone()),
                    );
                    expected[i] = EventLogBackend::restore_dir(&dirs[i]).unwrap();
                }
                Fault::VanishForever | Fault::VanishThenReappear => {
                    hidden[i] = Some(vanish_dir(&dirs[i]).unwrap());
                    // Last good fold keeps serving.
                }
                Fault::CorruptFrame => {
                    drive_federation(
                        std::slice::from_ref(&dirs[i]),
                        &single_script(round_two[i].clone()),
                    );
                    let (_, generation) =
                        EventLogBackend::read_state_in(&dirs[i]).unwrap();
                    corrupt_append(&dirs[i].join(generation)).unwrap();
                    // The poll fails whole: nothing past the last good
                    // *tailed* state applies until salvage.
                    expected[i] = last_good[i].clone();
                }
                Fault::FlakyWriter => {
                    let repo = scripted_repository();
                    let mut writer =
                        FlakyBackend::new(EventLogBackend::open(&dirs[i]).unwrap());
                    writer.fail_next(flaky_failures);
                    for op in &round_two[i] {
                        apply_op(&repo, op);
                        // A dropped batch is lost whole — the durable
                        // fold below is the only truth.
                        let _ = writer.record(&repo.drain_events());
                    }
                    expected[i] = EventLogBackend::restore_dir(&dirs[i]).unwrap();
                }
            }
        }

        // Chaos pass: typed per-source errors, no abort, degraded serving.
        let outcome = federation.catch_up().unwrap();
        for i in 0..3 {
            match faults[i] {
                Fault::VanishForever | Fault::VanishThenReappear => {
                    prop_assert!(outcome.errors.iter().any(|(s, e)| s == &ids[i]
                        && matches!(e, RepoError::SourceUnavailable { .. })));
                }
                Fault::CorruptFrame => {
                    prop_assert!(outcome.errors.iter().any(|(s, e)| s == &ids[i]
                        && matches!(e, RepoError::CorruptFrame { .. })));
                }
                Fault::Healthy | Fault::FlakyWriter => {
                    prop_assert!(!outcome.errors.iter().any(|(s, _)| s == &ids[i]));
                }
            }
        }

        // Mid-chaos: the reappearing sources come back (and write more)
        // while the other faults stay live.
        for i in 0..3 {
            if faults[i] == Fault::VanishThenReappear {
                restore_dir(hidden[i].as_ref().unwrap(), &dirs[i]).unwrap();
                drive_federation(
                    std::slice::from_ref(&dirs[i]),
                    &single_script(round_two[i].clone()),
                );
                expected[i] = EventLogBackend::restore_dir(&dirs[i]).unwrap();
            }
        }
        for _ in 0..3 {
            federation.catch_up().unwrap();
        }
        assert_converged(&federation, &expected);
        for (i, (source, status)) in federation.source_status().iter().enumerate() {
            prop_assert_eq!(source, &ids[i]);
            match faults[i] {
                Fault::VanishForever | Fault::CorruptFrame => {
                    prop_assert_eq!(status.health, SourceHealth::Quarantined);
                }
                _ => prop_assert_eq!(status.health, SourceHealth::Healthy),
            }
        }

        // Repair: vanished directories return; corruption opts into
        // prefix salvage. One pass recovers everyone.
        for i in 0..3 {
            if faults[i] == Fault::VanishForever {
                restore_dir(hidden[i].as_ref().unwrap(), &dirs[i]).unwrap();
            }
        }
        federation.set_recovery_policy(RecoveryPolicy::SalvagePrefix);
        let outcome = federation.catch_up().unwrap();
        prop_assert!(outcome.errors.is_empty(), "everyone repaired: {:?}", outcome.errors);
        for i in 0..3 {
            if faults[i] == Fault::CorruptFrame {
                prop_assert!(
                    outcome.salvaged.iter().any(|(s, report)| s == &ids[i]
                        && report.bytes_dropped > 0),
                    "corruption recovery is never a silent skip"
                );
            }
        }

        // Full reconvergence to the durable folds — the salvaged sources
        // got their round-two prefix back, the vanished lost nothing.
        let repaired: Vec<RepositorySnapshot> = dirs
            .iter()
            .map(|dir| EventLogBackend::restore_dir(dir).unwrap())
            .collect();
        assert_converged(&federation, &repaired);
        for (_, status) in federation.source_status() {
            prop_assert_eq!(status.health, SourceHealth::Healthy);
        }

        // And a final healthy round converges for everyone.
        let final_folds = drive_federation(&dirs, &FederationScript {
            sources: vec![
                plain_plan(vec![contribute("ROUND-THREE-A")]),
                plain_plan(vec![contribute("ROUND-THREE-B")]),
                plain_plan(vec![contribute("ROUND-THREE-C")]),
            ],
            schedule: Vec::new(),
        });
        federation.catch_up().unwrap();
        assert_converged(&federation, &final_folds);

        for dir in &dirs {
            std::fs::remove_dir_all(dir).ok();
        }
    }
}

fn contribute(title: &str) -> RepoOp {
    RepoOp::Contribute {
        title: title.into(),
        discussion: "Chaos round.".into(),
    }
}

/// An hour of backoff means a permanently dead source costs exactly one
/// failed poll, no matter how hot the catch-up loop runs — while the
/// healthy peer keeps converging.
#[test]
fn backoff_bounds_the_poll_cost_of_a_dead_source() {
    let dirs = vec![
        unique_temp_dir("dead-a"),
        unique_temp_dir("dead-b"),
        unique_temp_dir("dead-c"),
    ];
    drive_federation(
        &dirs,
        &FederationScript {
            sources: vec![
                plain_plan(vec![contribute("COMPOSERS")]),
                plain_plan(vec![contribute("DATES")]),
                plain_plan(vec![contribute("FAMILIES")]),
            ],
            schedule: Vec::new(),
        },
    );
    let mut federation = open_federation(&dirs);
    let polls_at_open = federation.source_status()[0].1.polls_attempted;
    federation.set_retry_policy(RetryPolicy {
        base: Duration::from_secs(3600),
        max: Duration::from_secs(3600),
        multiplier: 1,
        jitter_percent: 0,
        quarantine_after: 5,
        seed: 0,
    });

    let _tomb = vanish_dir(&dirs[0]).unwrap();
    let outcome = federation.catch_up().unwrap();
    assert_eq!(outcome.errors.len(), 1);

    // Fifty hot catch-up passes: the dead source is skipped every time,
    // and the healthy peers keep folding new writes.
    let mut skipped = 0;
    for round in 0..50 {
        if round == 25 {
            drive_federation(&dirs[1..2], &single_script(vec![contribute("MIDWAY")]));
        }
        let outcome = federation.catch_up().unwrap();
        assert!(
            outcome.errors.is_empty(),
            "the dead source is not re-polled"
        );
        skipped += outcome.skipped;
    }
    assert_eq!(skipped, 50);
    let status = &federation.source_status()[0].1;
    assert_eq!(
        status.polls_attempted,
        polls_at_open + 1,
        "exactly one failed poll, then backoff gates the rest"
    );
    assert_eq!(status.failures, 1);
    assert_eq!(federation.query(&["midway"]).len(), 1, "degraded serving");
    for dir in &dirs {
        std::fs::remove_dir_all(dir).ok();
    }
}

/// A reappeared source resumes its tail exactly where it stopped — new
/// events apply incrementally, with no re-base and no replay from zero.
#[test]
fn a_reappeared_source_resumes_its_tail_without_rebase() {
    let dirs = vec![
        unique_temp_dir("resume-a"),
        unique_temp_dir("resume-b"),
        unique_temp_dir("resume-c"),
    ];
    drive_federation(
        &dirs,
        &FederationScript {
            sources: vec![
                plain_plan(vec![contribute("COMPOSERS")]),
                plain_plan(vec![contribute("DATES")]),
                plain_plan(vec![contribute("FAMILIES")]),
            ],
            schedule: Vec::new(),
        },
    );
    let mut federation = open_federation(&dirs);
    federation.set_retry_policy(eager_policy());

    let hidden = vanish_dir(&dirs[0]).unwrap();
    federation.catch_up().unwrap();
    federation.catch_up().unwrap();
    assert_eq!(
        federation.source_status()[0].1.health,
        SourceHealth::Quarantined
    );

    restore_dir(&hidden, &dirs[0]).unwrap();
    drive_federation(&dirs[..1], &single_script(vec![contribute("ENCORE")]));
    let outcome = federation.catch_up().unwrap();
    assert!(outcome.errors.is_empty());
    let resumed = &outcome.per_source[0];
    assert!(resumed.events_applied > 0, "the new events flow");
    assert!(
        !resumed.rebased,
        "resumption continues the tail, it does not re-base"
    );
    let folds: Vec<RepositorySnapshot> = dirs
        .iter()
        .map(|dir| EventLogBackend::restore_dir(dir).unwrap())
        .collect();
    assert_converged(&federation, &folds);
    for dir in &dirs {
        std::fs::remove_dir_all(dir).ok();
    }
}

/// The acceptance path end to end, on a [`ReplicaDaemon`] tenant of a
/// shared runtime: one JSONL source and one *binary* source both rot,
/// quarantine, salvage under [`RecoveryPolicy::SalvagePrefix`], and the
/// [`SalvageReport`]s surface in the catch-up outcome, in
/// `DaemonStats::source_health`, in the per-source error map (until
/// cleared), and as `HealthReport::Source` on the runtime channel.
#[test]
fn quarantined_corrupt_sources_salvage_and_report_on_the_runtime_channel() {
    let dir_a = unique_temp_dir("salvage-chan-a");
    let dir_b = unique_temp_dir("salvage-chan-b");
    drive_federation(
        std::slice::from_ref(&dir_a),
        &single_script(vec![contribute("COMPOSERS")]),
    );
    drive_federation(
        std::slice::from_ref(&dir_b),
        &FederationScript {
            sources: vec![SourcePlan {
                ops: vec![contribute("UML2RDBMS")],
                compaction: None,
                kill_after_events: None,
                torn_tail: false,
                binary: true,
            }],
            schedule: Vec::new(),
        },
    );

    let mut federation = Federation::open(
        "fed",
        vec![
            (SourceId::new("a"), dir_a.clone()),
            (SourceId::new("b"), dir_b.clone()),
        ],
    )
    .unwrap();
    federation.set_retry_policy(eager_policy());
    federation.set_recovery_policy(RecoveryPolicy::SalvagePrefix);
    let clean = federation.snapshot().clone();

    // Rot both formats beyond their tailed prefixes.
    let (_, generation_a) = EventLogBackend::read_state_in(&dir_a).unwrap();
    corrupt_append(&dir_a.join(generation_a)).unwrap();
    let (_, generation_b) = EventLogBackend::read_state_in(&dir_b).unwrap();
    corrupt_append_binary(&dir_b, &generation_b).unwrap();

    let runtime = Runtime::new(2);
    let daemon = ReplicaDaemon::spawn_on(
        federation,
        DaemonConfig {
            // Effectively tick-free: passes below are forced, so the
            // salvage sequence stays deterministic.
            poll_interval: Duration::from_secs(3600),
        },
        &runtime,
        "fed",
    );

    // Quarantine, then salvage. The build-time pass may have consumed
    // either step already, so drive passes until both sources report a
    // completed salvage.
    let mut salvaged: Vec<SourceId> = Vec::new();
    for _ in 0..4 {
        let outcome = daemon.force_catch_up().unwrap();
        salvaged.extend(outcome.salvaged.iter().map(|(s, _)| s.clone()));
        if salvaged.len() >= 2 {
            break;
        }
    }
    assert_eq!(salvaged.len(), 2, "both formats salvage");

    // The sticky per-source error map kept the corruption attributable
    // until explicitly cleared.
    let errors = daemon.last_errors();
    assert!(matches!(
        errors.get(&SourceId::new("a")),
        Some(RepoError::CorruptFrame { .. })
    ));
    assert!(matches!(
        errors.get(&SourceId::new("b")),
        Some(RepoError::CorruptFrame { .. })
    ));
    daemon.clear_error();
    assert!(daemon.last_errors().is_empty());

    // Degraded serving never blinked, and the salvage is on the stats
    // record with both sources healthy again.
    let stats = daemon.stats();
    for (source, status) in &stats.source_health {
        assert_eq!(status.health, SourceHealth::Healthy, "{source:?}");
        let report = status.salvage.as_ref().expect("salvage on record");
        assert!(report.bytes_dropped > 0);
        assert!(report.truncated_at.is_some());
    }

    // The runtime channel saw the quarantine and the salvaged recovery.
    let reports = runtime.health().drain();
    let mut saw_quarantine = false;
    let mut saw_salvage = false;
    for entry in reports {
        if let HealthReport::Source {
            state,
            salvaged_bytes,
            ..
        } = entry.report
        {
            assert_eq!(entry.component, "fed");
            saw_quarantine |= state == "quarantined";
            saw_salvage |= salvaged_bytes.is_some() && state == "healthy";
        }
    }
    assert!(saw_quarantine, "the quarantine transition was published");
    assert!(saw_salvage, "the salvaged recovery was published");

    // The merged state never lost the pre-corruption prefix.
    let federation = daemon.into_federation();
    assert_eq!(federation.snapshot(), &clean);
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}
