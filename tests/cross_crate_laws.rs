//! E3 at collection scale: every executable entry's claimed properties
//! are verified against its artefact, with proptest-generated models —
//! the mechanical reviewer pass over the whole repository.

use bx::examples::composers::{composers_bx, ComposerSet, PairList};
use bx::examples::families::{families_bx, NewMemberPolicy};
use bx::examples::uml2rdbms::{uml2rdbms_bx, RdbModel, UmlModel};
use bx::theory::laws::{ClaimVerdict, LawMatrix};
use bx::theory::{check_all_laws, Claim, Property, Samples};
use bx_testkit::strategies::{arb_composer_set, arb_family_model, arb_pair_list, arb_person_model};
use bx_testkit::{assert_well_behaved, samples_from_models};
use proptest::prelude::*;

fn claims_of(title: &str) -> Vec<Claim> {
    bx::examples::all_entries()
        .into_iter()
        .find(|e| e.title == title)
        .unwrap_or_else(|| panic!("entry {title} exists"))
        .properties
}

fn assert_claims_confirmed(matrix: &LawMatrix, claims: &[Claim]) {
    for verdict in matrix.verify_claims(claims) {
        match &verdict {
            ClaimVerdict::Confirmed(_) => {}
            ClaimVerdict::Unverifiable(c) if !c.property.checkable() => {}
            other => panic!("claim not confirmed: {other:?}\n{matrix}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn composers_claims_hold_on_generated_models(
        ms in prop::collection::vec(arb_composer_set(5), 1..3),
        ns in prop::collection::vec(arb_pair_list(5), 1..3),
    ) {
        let b = composers_bx();
        let samples = samples_from_models(&b, ms, ns);
        let matrix = assert_well_behaved(&b, &samples);
        // Positive claims must hold on *every* generated sample set;
        // the negative ("Not undoable") claim is existential and is
        // verified on a crafted witness below.
        let positive: Vec<Claim> = claims_of("COMPOSERS")
            .into_iter()
            .filter(|c| matches!(c.polarity, bx::theory::Polarity::Holds))
            .collect();
        assert_claims_confirmed(&matrix, &positive);
    }

    #[test]
    fn families_claims_hold_on_generated_models(
        ms in prop::collection::vec(arb_family_model(5), 1..3),
        ns in prop::collection::vec(arb_person_model(5), 1..3),
    ) {
        for policy in [NewMemberPolicy::PreferParent, NewMemberPolicy::PreferChild] {
            let b = families_bx(policy);
            let samples = samples_from_models(&b, ms.clone(), ns.clone());
            assert_well_behaved(&b, &samples);
        }
    }
}

#[test]
fn composers_negative_claim_needs_the_right_samples() {
    // "Not undoable" is an existential claim: it is *unverifiable* on
    // trivially small samples and *confirmed* once a witness excursion is
    // in range — the repository's reviewer guidance in miniature.
    let b = composers_bx();
    let m: ComposerSet = [bx::examples::composers::Composer::new("A", "1-2", "X")]
        .into_iter()
        .collect();
    let n: PairList = vec![("A".to_string(), "X".to_string())];
    let witness_samples = Samples::new(
        vec![(m.clone(), n)],
        vec![ComposerSet::new()],
        vec![PairList::new()],
    );
    let matrix = check_all_laws(&b, &witness_samples);
    let verdicts = matrix.verify_claims(&[Claim::fails(Property::Undoable)]);
    assert!(verdicts[0].confirmed(), "{:?}", verdicts[0]);
}

#[test]
fn uml2rdbms_claims_hold_on_handmade_battery() {
    let b = uml2rdbms_bx();
    let models: Vec<UmlModel> = vec![
        UmlModel::default(),
        UmlModel::default().with_class("A", true, &[("x", "Integer", true)]),
        UmlModel::default()
            .with_class("A", true, &[("x", "Integer", true)])
            .with_class("T", false, &[("y", "String", false)])
            .document("A", "x", "hidden doc"),
    ];
    let schemas: Vec<RdbModel> = vec![
        RdbModel::default(),
        RdbModel::default().with_table("A", &[("x", "INTEGER", true)]),
        RdbModel::default().with_table("B", &[("z", "BOOLEAN", false)]),
    ];
    let samples = samples_from_models(&b, models, schemas);
    let matrix = assert_well_behaved(&b, &samples);
    assert_claims_confirmed(&matrix, &claims_of("UML2RDBMS"));
}

#[test]
fn every_executable_entry_claims_are_internally_consistent() {
    // Static sanity over the whole collection: no entry claims a property
    // and its negation; sketches claim nothing.
    for entry in bx::examples::all_entries() {
        for (i, a) in entry.properties.iter().enumerate() {
            for b in entry.properties.iter().skip(i + 1) {
                assert!(
                    !(a.property == b.property && a.polarity != b.polarity),
                    "{} claims {} and its negation",
                    entry.title,
                    a.property
                );
            }
        }
    }
}
