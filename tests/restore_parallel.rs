//! The parallel restore pipeline is an *optimisation*, not a semantics
//! change — property-tested here. For any random mutation script, in
//! both on-disk formats, `restore(threads = N)` equals
//! `restore(threads = 1)` byte-for-byte: same snapshot from
//! `restore_dir_with`, same snapshot **and** search index **and** wiki
//! site (full revision histories included) from `Replica::open_with`
//! and `Federation::open_with`. Corruption reporting is deterministic
//! too: a corrupt log surfaces the same typed error — same segment,
//! same offset — at every thread count, across repeated runs, even
//! though the parallel decode *discovers* errors in scrambled order.

use bx::core::binlog::BinaryLogBackend;
use bx::core::replica::{Federation, Replica, SourceId};
use bx::core::storage::{EventLogBackend, StorageBackend};
use bx::core::{RepoError, RestoreOptions};
use bx_testkit::ops::{apply_ops, arb_ops, scripted_repository, unique_temp_dir};
use proptest::prelude::*;

/// Record a scripted history into `dir`: `before` ops, a checkpoint,
/// then `after` ops — so the restore exercises manifest base + pending
/// tail, not just a bare log.
fn checkpointed_jsonl(
    dir: &std::path::Path,
    before: &[bx_testkit::ops::RepoOp],
    after: &[bx_testkit::ops::RepoOp],
) -> bx::core::repo::RepositorySnapshot {
    let repo = scripted_repository();
    apply_ops(&repo, before);
    let mut backend = EventLogBackend::open(dir).unwrap();
    backend.record(&repo.drain_events()).unwrap();
    backend.checkpoint(&repo.snapshot()).unwrap();
    apply_ops(&repo, after);
    backend.record(&repo.drain_events()).unwrap();
    repo.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `EventLogBackend::restore_dir_with(threads = N)` equals the
    /// sequential restore on any script, in both formats.
    #[test]
    fn parallel_restore_matches_sequential(before in arb_ops(16), after in arb_ops(16)) {
        let jsonl = unique_temp_dir("par-restore-jsonl");
        let expected = checkpointed_jsonl(&jsonl, &before, &after);
        let binary = unique_temp_dir("par-restore-bin");
        bx::core::binlog::convert_log_dir(&jsonl, &binary, true).unwrap();
        for dir in [&jsonl, &binary] {
            let sequential = EventLogBackend::restore_dir(dir).unwrap();
            prop_assert_eq!(&sequential, &expected);
            for threads in [2usize, 8] {
                let parallel =
                    EventLogBackend::restore_dir_with(dir, RestoreOptions::with_threads(threads))
                        .unwrap();
                prop_assert_eq!(&parallel, &sequential);
            }
        }
    }

    /// `Replica::open_with(threads = N)` rebuilds the *same bytes* as
    /// the sequential open: snapshot, index, and wiki site with its full
    /// per-page revision history.
    #[test]
    fn parallel_replica_open_matches_sequential(before in arb_ops(12), after in arb_ops(12)) {
        let jsonl = unique_temp_dir("par-replica-jsonl");
        checkpointed_jsonl(&jsonl, &before, &after);
        let binary = unique_temp_dir("par-replica-bin");
        bx::core::binlog::convert_log_dir(&jsonl, &binary, true).unwrap();
        for dir in [&jsonl, &binary] {
            let sequential = Replica::open(dir).unwrap();
            for threads in [2usize, 8] {
                let parallel = Replica::open_with(dir, RestoreOptions::with_threads(threads)).unwrap();
                prop_assert_eq!(parallel.snapshot(), sequential.snapshot());
                prop_assert_eq!(parallel.index(), sequential.index());
                prop_assert_eq!(parallel.site(), sequential.site());
            }
        }
    }

    /// `Federation::open_with(threads = N)` over several sources merges
    /// to the sequential open's exact state.
    #[test]
    fn parallel_federation_open_matches_sequential(
        ops_a in arb_ops(10),
        ops_b in arb_ops(10),
        ops_c in arb_ops(10),
    ) {
        let dirs: Vec<std::path::PathBuf> = ["fed-par-a", "fed-par-b", "fed-par-c"]
            .iter()
            .map(|tag| unique_temp_dir(tag))
            .collect();
        for (dir, ops) in dirs.iter().zip([&ops_a, &ops_b, &ops_c]) {
            checkpointed_jsonl(dir, ops, &[]);
        }
        // One source in each format, to cross the dispatch too.
        let bin = unique_temp_dir("fed-par-a-bin");
        bx::core::binlog::convert_log_dir(&dirs[0], &bin, true).unwrap();
        let sources = vec![
            (SourceId::new("a"), bin),
            (SourceId::new("b"), dirs[1].clone()),
            (SourceId::new("c"), dirs[2].clone()),
        ];
        let sequential = Federation::open("fed", sources.clone()).unwrap();
        let parallel =
            Federation::open_with("fed", sources, RestoreOptions::with_threads(8)).unwrap();
        prop_assert_eq!(parallel.snapshot(), sequential.snapshot());
        prop_assert_eq!(parallel.index(), sequential.index());
        prop_assert_eq!(parallel.site(), sequential.site());
    }
}

/// Corruption reporting is deterministic across thread counts and runs:
/// a flipped byte in an *early* segment of a multi-segment binary log
/// surfaces the same `CorruptFrame { segment, offset }` whether one
/// thread or eight decode it, every time. (The parallel decode gathers
/// per-segment results in log order, so the first error in the log —
/// not the first discovered — always wins.)
#[test]
fn corrupt_segment_reports_identically_at_every_thread_count() {
    let dir = unique_temp_dir("par-corrupt-bin");
    let repo = scripted_repository();
    // Small segments force a multi-segment generation.
    let mut backend = BinaryLogBackend::open_with_segment_bytes(&dir, 400).unwrap();
    for i in 0..12 {
        repo.contribute(
            bx_testkit::ops::AUTHOR,
            bx_testkit::ops::valid_entry(
                &format!("Corrupt Determinism {i}"),
                "enough text to fill segments quickly",
            ),
        )
        .unwrap();
        backend.record(&repo.drain_events()).unwrap();
    }
    let segments = backend.generation_files().unwrap();
    assert!(
        segments.len() >= 3,
        "need several segments, got {}",
        segments.len()
    );
    // Flip one payload byte in an early (sealed) segment.
    let early = &segments[0];
    let path = dir.join(early);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, bytes).unwrap();

    let baseline = EventLogBackend::restore_dir(&dir).unwrap_err();
    let RepoError::CorruptFrame { ref segment, .. } = baseline else {
        panic!("expected CorruptFrame, got {baseline:?}");
    };
    assert_eq!(segment, early, "the corrupted segment is the one reported");
    for _run in 0..5 {
        for threads in [1usize, 8] {
            let err =
                EventLogBackend::restore_dir_with(&dir, RestoreOptions::with_threads(threads))
                    .unwrap_err();
            assert_eq!(err, baseline, "threads={threads}");
        }
    }
}

/// The same determinism for a JSONL log: a corrupted middle line
/// reports the same parse error at every thread count, and the parallel
/// replica open surfaces it exactly as the sequential open does.
#[test]
fn corrupt_jsonl_line_reports_identically_at_every_thread_count() {
    let dir = unique_temp_dir("par-corrupt-jsonl");
    let repo = scripted_repository();
    for i in 0..8 {
        repo.contribute(
            bx_testkit::ops::AUTHOR,
            bx_testkit::ops::valid_entry(&format!("Jsonl Determinism {i}"), "filler text"),
        )
        .unwrap();
    }
    let mut backend = EventLogBackend::open(&dir).unwrap();
    backend.record(&repo.drain_events()).unwrap();
    let log = dir.join("events-0.jsonl");
    let text = std::fs::read_to_string(&log).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let mut vandalised: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
    vandalised[lines.len() / 2] = "{\"NotAnEvent\":1}".to_string();
    std::fs::write(&log, vandalised.join("\n") + "\n").unwrap();

    let baseline = EventLogBackend::restore_dir(&dir).unwrap_err();
    assert!(
        matches!(
            baseline,
            RepoError::CorruptFrame { ref segment, .. } if segment == "events-0.jsonl"
        ),
        "corrupt JSONL is typed with its segment and offset: {baseline:?}"
    );
    for threads in [2usize, 8] {
        let err = EventLogBackend::restore_dir_with(&dir, RestoreOptions::with_threads(threads))
            .unwrap_err();
        assert_eq!(err, baseline, "threads={threads}");
        let open_err = Replica::open_with(&dir, RestoreOptions::with_threads(threads)).unwrap_err();
        assert_eq!(
            open_err,
            Replica::open(&dir).unwrap_err(),
            "threads={threads}"
        );
    }
}
