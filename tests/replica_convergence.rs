//! Replica convergence, property-tested: for any random mutation script,
//! a `Replica` tailing the primary's event-log directory — written by the
//! background durability pipeline under an auto-compaction policy —
//! converges with the primary after `flush()`: snapshot, search results
//! and rendered wiki pages all agree, at every intermediate sync point
//! and across a writer restart.

use std::sync::Arc;

use bx::core::index::SearchIndex;
use bx::core::pipeline::BackgroundWriter;
use bx::core::replica::Replica;
use bx::core::storage::{AutoCompactingEventLog, CompactionPolicy};
use bx::core::wiki_bx::WikiBx;
use bx::theory::Bx;
use bx_testkit::ops::{apply_op, arb_ops, scripted_repository, unique_temp_dir, TITLES};
use proptest::prelude::*;

/// Search-result parity on a spread of queries (empty, single-term,
/// conjunctive, absent).
fn assert_query_parity(replica: &Replica, primary_index: &SearchIndex) {
    for terms in [
        &["generated"][..],
        &["generated", "text"][..],
        &["composers"][..],
        &["zzz", "absent"][..],
    ] {
        assert_eq!(
            replica.query(terms),
            primary_index.query(terms),
            "terms {terms:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline acceptance property: random script, background
    /// writer, aggressive auto-compaction, periodic catch-up — the
    /// replica's three materializations equal the primary's after every
    /// flush, and a cold-opened replica agrees too.
    #[test]
    fn replica_converges_after_any_mutation_script(
        ops in arb_ops(24),
        checkpoint_every in 1usize..8,
        sync_every in 1usize..6,
    ) {
        let dir = unique_temp_dir("replica-conv");
        let repo = scripted_repository();
        let backend = AutoCompactingEventLog::open(
            &dir,
            CompactionPolicy { checkpoint_every },
        ).unwrap();
        let writer = Arc::new(BackgroundWriter::spawn(backend));
        // Backfill the pre-subscription history (founding + cast), then
        // switch to push delivery.
        writer.enqueue(&repo.drain_events());
        repo.subscribe(writer.clone());

        writer.flush().unwrap();
        let mut replica = Replica::open(&dir).unwrap();

        for (i, op) in ops.iter().enumerate() {
            apply_op(&repo, op);
            if i % sync_every == 0 {
                // Flush-then-catch-up is the documented sync point: after
                // it, the replica must hold exactly the primary's state.
                writer.flush().unwrap();
                replica.catch_up().unwrap();
                prop_assert_eq!(replica.snapshot(), &repo.snapshot());
            }
        }
        writer.flush().unwrap();
        replica.catch_up().unwrap();

        let snap = repo.snapshot();
        let primary_index = SearchIndex::build(&snap);
        let bx = WikiBx::new();
        prop_assert_eq!(replica.snapshot(), &snap);
        prop_assert_eq!(replica.index(), &primary_index);
        assert_query_parity(&replica, &primary_index);
        prop_assert!(bx.consistent(&snap, replica.site()), "replica wiki pages render the primary's entries");

        // A replica opened cold over the same directory agrees with the
        // incrementally maintained one.
        let cold = Replica::open(&dir).unwrap();
        prop_assert_eq!(cold.snapshot(), replica.snapshot());
        prop_assert_eq!(cold.index(), replica.index());
        prop_assert!(bx.consistent(&snap, cold.site()));

        writer.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Convergence survives a writer restart mid-script: the first writer
    /// is shut down (draining its queue), a second one reopens the same
    /// directory and continues. The replica tails across the boundary —
    /// including any compaction the reopen itself triggers.
    #[test]
    fn replica_converges_across_a_writer_restart(
        ops in arb_ops(20),
        checkpoint_every in 1usize..6,
    ) {
        let dir = unique_temp_dir("replica-restart");
        let repo = scripted_repository();
        let policy = CompactionPolicy { checkpoint_every };

        let writer = Arc::new(BackgroundWriter::spawn(
            AutoCompactingEventLog::open(&dir, policy).unwrap(),
        ));
        writer.enqueue(&repo.drain_events());
        repo.subscribe(writer.clone());

        let split = ops.len() / 2;
        for op in &ops[..split] {
            apply_op(&repo, op);
        }
        writer.shutdown().unwrap();

        let mut replica = Replica::open(&dir).unwrap();
        prop_assert_eq!(replica.snapshot(), &repo.snapshot());

        // Second writer process over the same directory. The old writer
        // is still subscribed but shut down; its accepts are counted as
        // dropped and must not disturb the successor.
        let writer2 = Arc::new(BackgroundWriter::spawn(
            AutoCompactingEventLog::open(&dir, policy).unwrap(),
        ));
        repo.drain_events(); // journal caught everything; second writer starts in sync
        repo.subscribe(writer2.clone());
        for op in &ops[split..] {
            apply_op(&repo, op);
        }
        writer2.flush().unwrap();
        replica.catch_up().unwrap();

        let snap = repo.snapshot();
        prop_assert_eq!(replica.snapshot(), &snap);
        prop_assert_eq!(replica.index(), &SearchIndex::build(&snap));
        prop_assert!(WikiBx::new().consistent(&snap, replica.site()));
        writer2.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Non-property smoke: titles used by the generator all map to distinct
/// slugs (a collision would weaken every property above).
#[test]
fn generator_titles_are_distinct_slugs() {
    let slugs: std::collections::BTreeSet<String> = TITLES
        .iter()
        .map(|t| bx::core::EntryId::from_title(t).as_str().to_string())
        .collect();
    assert_eq!(slugs.len(), TITLES.len());
}
