//! Testing the testers at collection scale: planted faults in real
//! example bx must be caught by the law checkers, and must be caught by
//! the *right* law (fault isolation).

use bx::examples::composers::{composer_set, composers_bx, pair_list, ComposerSet, PairList};
use bx::examples::uml2rdbms::{uml2rdbms_bx, RdbModel, UmlModel};
use bx::theory::{check_all_laws, check_law, Bx, Law, Samples};
use bx_testkit::{BreakCorrectFwd, BreakHippocraticBwd, BreakHippocraticFwd};

fn composers_samples() -> Samples<ComposerSet, PairList> {
    let m = composer_set(&[
        ("Jean Sibelius", "1865-1957", "Finnish"),
        ("Amy Beach", "1867-1944", "American"),
    ]);
    let n = pair_list(&[("Amy Beach", "American"), ("Jean Sibelius", "Finnish")]);
    Samples::new(
        vec![(m.clone(), n), (m, pair_list(&[("Erik Satie", "French")]))],
        vec![composer_set(&[])],
        vec![pair_list(&[])],
    )
}

#[test]
fn planted_correctness_fault_in_composers_is_isolated() {
    let faulty = BreakCorrectFwd::new(composers_bx(), |mut n: PairList| {
        n.push(("Phantom".to_string(), "Nowhere".to_string()));
        n
    });
    let samples = composers_samples();
    assert!(check_law(&faulty, Law::CorrectFwd, &samples).violated());
    // The backward direction is untouched.
    assert!(check_law(&faulty, Law::CorrectBwd, &samples).holds());
    assert!(check_law(&faulty, Law::HippocraticBwd, &samples).holds());
}

#[test]
fn planted_hippocratic_fault_in_composers_is_isolated() {
    // Reordering a consistent list keeps correctness, kills hippocraticness.
    let faulty = BreakHippocraticFwd::new(composers_bx(), |mut n: PairList| {
        n.reverse();
        n
    });
    let samples = composers_samples();
    assert!(check_law(&faulty, Law::CorrectFwd, &samples).holds());
    assert!(check_law(&faulty, Law::HippocraticFwd, &samples).violated());
    assert!(check_law(&faulty, Law::HippocraticBwd, &samples).holds());
}

#[test]
fn planted_fault_in_uml2rdbms_is_caught() {
    // Gratuitously bump every attribute comment on consistent bwd: the
    // schemas still match (correct) but the model changed (hippocratic).
    let faulty = BreakHippocraticBwd::new(uml2rdbms_bx(), |mut m: UmlModel| {
        for class in m.classes.values_mut() {
            for attr in &mut class.attributes {
                attr.comment.push('!');
            }
        }
        m
    });
    let uml = UmlModel::default()
        .with_class("A", true, &[("x", "Integer", true)])
        .document("A", "x", "doc");
    let rdb = uml2rdbms_bx().fwd(&uml, &RdbModel::default());
    let samples = Samples::new(
        vec![(uml, rdb)],
        vec![UmlModel::default()],
        vec![RdbModel::default()],
    );
    assert!(check_law(&faulty, Law::CorrectBwd, &samples).holds());
    assert!(check_law(&faulty, Law::HippocraticBwd, &samples).violated());
}

#[test]
fn claim_verification_refutes_faulty_artefacts() {
    // A repository reviewer running the claims of the COMPOSERS entry
    // against a buggy artefact must see refutation, not confirmation.
    let entry = bx::examples::composers::composers_entry();
    let faulty = BreakCorrectFwd::new(composers_bx(), |mut n: PairList| {
        n.push(("Phantom".to_string(), "Nowhere".to_string()));
        n
    });
    let matrix = check_all_laws(&faulty, &composers_samples());
    let verdicts = matrix.verify_claims(&entry.properties);
    assert!(
        verdicts
            .iter()
            .any(|v| matches!(v, bx::theory::laws::ClaimVerdict::Refuted { .. })),
        "a correctness bug must refute at least one published claim: {verdicts:?}"
    );
}

#[test]
fn fault_free_artefacts_still_pass_after_wrapping() {
    // Identity perturbations: the wrappers themselves add no failures.
    let wrapped = BreakHippocraticFwd::new(composers_bx(), |n: PairList| n);
    let matrix = check_all_laws(&wrapped, &composers_samples());
    for law in [
        Law::CorrectFwd,
        Law::CorrectBwd,
        Law::HippocraticFwd,
        Law::HippocraticBwd,
    ] {
        assert!(matrix.law_holds(law), "{matrix}");
    }
}
