//! Runtime stress: every background tenant the workspace has — durability
//! writers, a federation's replica daemon, auto-compaction, the lint
//! engine — multiplexed onto ONE small shared [`Runtime`] pool, under
//! fault injection (a `CrashingBackend` fuse burns a writer out
//! mid-stream, a planted lint check panics on a pool worker). The pool
//! must survive both faults, every healthy tenant must converge, and no
//! tenant may starve another. Runs in the CI release test step.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bx::core::pipeline::{BackgroundWriter, PipelineConfig};
use bx::core::replica::{DaemonConfig, Federation, ReplicaDaemon, SourceId};
use bx::core::runtime::{HealthReport, Runtime};
use bx::core::storage::{
    AutoCompactingEventLog, CompactionPolicy, EventLogBackend, StorageBackend,
};
use bx::core::template::ArtefactKind;
use bx::core::{EntryId, Principal, RepoError, Repository};
use bx::lint::{CheckCatalog, LawChecker};
use bx_testkit::faults::CrashingBackend;
use bx_testkit::ops::unique_temp_dir;

fn entry(title: &str) -> bx::core::ExampleEntry {
    bx::core::ExampleEntry::builder(title)
        .of_type(bx::core::template::ExampleType::Precise)
        .overview("O.")
        .models("M.")
        .consistency("C.")
        .restoration("F.", "B.")
        .discussion("D.")
        .author("alice")
        .build()
        .unwrap()
}

fn primary(name: &str) -> Repository {
    let r = Repository::found(name, vec![Principal::curator("c")]);
    r.register(Principal::member("alice")).unwrap();
    r
}

/// The headline scenario: writer + daemon + compaction + lint as tenants
/// of one two-worker pool, with a crashing backend and a panicking lint
/// check injected. Asserts (a) the pool survives both faults, (b) every
/// healthy tenant converges to its expected end state, (c) each tenant's
/// health lands on the unified channel — i.e. all of them made progress
/// on the shared pool, none starved another out.
#[test]
fn mixed_tenants_on_one_small_pool_survive_faults_and_converge() {
    let dir = unique_temp_dir("stress-writer");
    let crash_dir = unique_temp_dir("stress-crash");
    let runtime = Runtime::named("bx-stress", 2);

    // Tenant 1: a healthy group-commit writer into an auto-compacting
    // log that reports its compaction passes (tenant 2) on the channel.
    let mut backend = AutoCompactingEventLog::open(
        &dir,
        CompactionPolicy {
            checkpoint_every: 8,
        },
    )
    .unwrap();
    backend.set_observer(runtime.health(), "compaction");
    let writer = Arc::new(BackgroundWriter::on_runtime(
        backend,
        PipelineConfig {
            channel_capacity: 16,
            write_batch: 4,
            group_commit_window: Some(Duration::from_millis(2)),
            ..PipelineConfig::default()
        },
        &runtime,
        "writer",
    ));

    // Tenant 3: a doomed writer whose backend burns out mid-stream.
    let doomed = Arc::new(BackgroundWriter::on_runtime(
        CrashingBackend::new(EventLogBackend::open(&crash_dir).unwrap(), 5),
        PipelineConfig {
            channel_capacity: 16,
            write_batch: 4,
            ..PipelineConfig::default()
        },
        &runtime,
        "writer:crash",
    ));

    // Tenant 4: the lint engine, with a planted check that panics on the
    // pool worker that runs it.
    let mut catalog = CheckCatalog::new();
    catalog.register_lens_check("stress::panic_lens", || panic!("injected lint panic"));
    let checker = Arc::new(LawChecker::on_runtime(Arc::new(catalog), &runtime, "lint"));

    // Drive a primary through both writers and the checker.
    let repo = primary("bx");
    repo.subscribe(writer.clone());
    repo.subscribe(doomed.clone());
    repo.subscribe_with_backfill(checker.clone());

    let mut poisoned = entry("POISONED");
    poisoned.artefacts.push(bx::core::template::Artefact {
        name: "boom".to_string(),
        kind: ArtefactKind::Code,
        location: "stress::panic_lens".to_string(),
    });
    let titles = [
        "COMPOSERS",
        "UML2RDBMS",
        "DATES",
        "FAMILIES",
        "BIBTEX",
        "ASTS",
        "VIEWS",
        "SPREADSHEET",
    ];
    for title in titles {
        repo.contribute("alice", entry(title)).unwrap();
        repo.comment("alice", &EntryId::from_title(title), "2014-03-28", "stress")
            .unwrap();
    }
    repo.contribute("alice", poisoned).unwrap();

    // The lint panic is caught by the pool: wait_idle returns (the
    // panicked job still released its pending slot) and the pool's
    // workers survive to run everything below.
    checker.wait_idle();
    assert!(checker.checks_run() > 0, "healthy checks still fold");
    // wait_idle returns the moment the panicking job releases its
    // pending slot (mid-unwind); the worker bumps `panics_caught` an
    // instant later, once catch_unwind hands the payload back — settle.
    let settle = Instant::now();
    while runtime.pool_stats().panics_caught == 0 && settle.elapsed() < Duration::from_secs(5) {
        std::thread::yield_now();
    }
    assert!(
        runtime.pool_stats().panics_caught >= 1,
        "the planted panic was caught, not fatal"
    );

    // The doomed writer surfaces its sticky injected error...
    let err = doomed.flush().unwrap_err();
    assert!(matches!(err, RepoError::Persist(ref m) if m.contains("injected crash")));
    assert!(doomed.shutdown().is_err());

    // ...while the healthy writer converges to full durability.
    writer.flush().unwrap();
    let event_count = writer.stats().enqueued;
    writer.shutdown().unwrap();
    assert_eq!(writer.stats().durable, event_count);

    // Tenant 5: a replica daemon federating the healthy directory, on
    // the same pool.
    let federation =
        Federation::open_on("fed", vec![(SourceId::new("a"), dir.clone())], &runtime).unwrap();
    let mut daemon = ReplicaDaemon::spawn_on(
        federation,
        DaemonConfig {
            poll_interval: Duration::from_millis(1),
        },
        &runtime,
        "daemon",
    );
    daemon.force_catch_up().unwrap();
    assert_eq!(
        daemon.with_federation(|f| f.snapshot().records.len()),
        titles.len() + 1, // the 8 clean entries plus POISONED
        "the daemon serves everything the writer made durable"
    );
    daemon.stop();

    // No tenant starved: every component reported on the one channel,
    // and the whole run used exactly the two bounded workers.
    let health = runtime.health();
    for component in ["writer", "writer:crash", "compaction", "lint", "daemon"] {
        let report = health
            .latest(component)
            .unwrap_or_else(|| panic!("`{component}` never reported"));
        match (component, &report.report) {
            ("writer", HealthReport::Pipeline { durable, error, .. }) => {
                assert_eq!(*durable, event_count);
                assert!(error.is_none());
            }
            ("writer:crash", HealthReport::Pipeline { error, .. }) => {
                assert!(
                    error.as_deref().is_some_and(|m| m.contains("injected")),
                    "the injected crash is visible on the channel"
                );
            }
            ("compaction", HealthReport::Compaction { checkpoints, .. }) => {
                assert!(*checkpoints >= 1)
            }
            ("lint", HealthReport::Lint { checks_run, .. }) => assert!(*checks_run >= 1),
            ("daemon", HealthReport::Daemon { polls, error, .. }) => {
                assert!(*polls >= 1);
                assert!(error.is_none());
            }
            (component, other) => panic!("`{component}` reported the wrong variant: {other:?}"),
        }
    }
    assert_eq!(runtime.pool_stats().threads, 2, "bounded: one small pool");

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&crash_dir).ok();
}

/// 64 federated sources cold-opened and then daemon-polled on ONE shared
/// pool: thread count stays bounded at the pool width, the merged state
/// matches the sequential open exactly, and stopping the daemon is
/// prompt. This is the test-suite twin of the `federation` bench's
/// shared-runtime rows.
#[test]
fn sixty_four_sources_cold_open_and_poll_on_one_shared_pool() {
    let mut sources = Vec::new();
    let mut dirs = Vec::new();
    for i in 0..64 {
        let dir = unique_temp_dir(&format!("stress-fed-{i}"));
        let r = primary(&format!("src{i}"));
        r.contribute("alice", entry(&format!("ENTRY{i}"))).unwrap();
        let mut backend = EventLogBackend::open(&dir).unwrap();
        backend.record(&r.drain_events()).unwrap();
        sources.push((SourceId::new(&format!("s{i}")), dir.clone()));
        dirs.push(dir);
    }

    let runtime = Runtime::named("bx-fed64", 4);
    let sequential = Federation::open("fed", sources.clone()).unwrap();
    let federation = Federation::open_on("fed", sources, &runtime).unwrap();
    assert_eq!(federation.snapshot(), sequential.snapshot());
    assert_eq!(federation.index(), sequential.index());
    assert_eq!(runtime.pool_stats().threads, 4, "64 sources, 4 workers");

    let mut daemon = ReplicaDaemon::spawn_on(
        federation,
        DaemonConfig {
            poll_interval: Duration::from_secs(5),
        },
        &runtime,
        "daemon",
    );
    let settle = Instant::now();
    while daemon.stats().polls == 0 && settle.elapsed() < Duration::from_secs(5) {
        std::thread::yield_now();
    }
    assert_eq!(daemon.stats().source_lag.len(), 64);
    // Prompt stop: cancelling a 5 s tick must not wait the interval out.
    let begin = Instant::now();
    daemon.stop();
    assert!(
        begin.elapsed() < Duration::from_millis(100),
        "stop waited {:?}",
        begin.elapsed()
    );

    // One source converted to the binary format on the same shared pool
    // round-trips its durable contents.
    let bin = unique_temp_dir("stress-fed-bin");
    bx::core::binlog::convert_log_dir_on(&dirs[0], &bin, true, &runtime).unwrap();
    let converted = bx::core::binlog::BinaryLogBackend::open(&bin).unwrap();
    let original = EventLogBackend::open(&dirs[0]).unwrap();
    assert_eq!(
        converted.restore().unwrap(),
        original.restore().unwrap(),
        "shared-pool conversion preserves the durable state"
    );

    for dir in &dirs {
        std::fs::remove_dir_all(dir).ok();
    }
    std::fs::remove_dir_all(&bin).ok();
}
