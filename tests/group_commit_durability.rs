//! The group-commit durability pipeline end to end over real files:
//! concurrent producers converge through one fsync per window, the
//! window composes with auto-compaction's generation rolls, periodic
//! health reports surface the amortisation, and the per-batch default
//! stays exactly as durable as it always was.

use std::sync::Arc;
use std::time::Duration;

use bx::core::pipeline::{BackgroundWriter, PipelineConfig};
use bx::core::storage::{
    AutoCompactingEventLog, CompactionPolicy, EventLogBackend, StorageBackend,
};
use bx::core::{EntryId, ExampleEntry, ExampleType, Principal, Repository};
use bx_testkit::ops::unique_temp_dir;

fn entry(title: &str) -> ExampleEntry {
    ExampleEntry::builder(title)
        .of_type(ExampleType::Precise)
        .overview("O.")
        .models("M.")
        .consistency("C.")
        .restoration("F.", "B.")
        .discussion("D.")
        .author("alice")
        .build()
        .unwrap()
}

/// A repository with one entry per producer thread, events drained.
fn seeded(producers: usize) -> (Arc<Repository>, Vec<EntryId>) {
    let repo = Arc::new(Repository::found("bx", vec![Principal::curator("c")]));
    repo.register(Principal::member("alice")).unwrap();
    let ids: Vec<EntryId> = (0..producers)
        .map(|i| {
            repo.contribute("alice", entry(&format!("ENTRY-{i}")))
                .unwrap()
        })
        .collect();
    (repo, ids)
}

#[test]
fn concurrent_producers_converge_through_group_commit() {
    let dir = unique_temp_dir("group-commit-concurrent");
    let (repo, ids) = seeded(4);
    let writer = Arc::new(BackgroundWriter::with_config(
        EventLogBackend::open(&dir).unwrap(),
        PipelineConfig::group_commit(Duration::from_millis(2)),
    ));
    repo.subscribe_with_backfill(writer.clone());

    const COMMENTS: usize = 24;
    let threads: Vec<_> = ids
        .iter()
        .cloned()
        .map(|id| {
            let repo = repo.clone();
            std::thread::spawn(move || {
                for i in 0..COMMENTS {
                    repo.comment("alice", &id, "2014-03-28", &format!("c{i}"))
                        .unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    writer.flush().unwrap();

    let stats = writer.stats();
    assert_eq!(stats.durable, stats.enqueued);
    assert_eq!(stats.dropped, 0);
    assert!(stats.group_commits >= 1);
    assert_eq!(stats.fsyncs, stats.group_commits);
    assert!(
        stats.fsyncs < stats.durable,
        "{} events must not cost {} fsyncs",
        stats.durable,
        stats.fsyncs
    );
    writer.shutdown().unwrap();

    // A fresh process over the directory recovers the primary exactly.
    let recovered = EventLogBackend::open(&dir).unwrap();
    assert_eq!(recovered.restore().unwrap(), repo.snapshot());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn group_commit_composes_with_auto_compaction() {
    let dir = unique_temp_dir("group-commit-compact");
    let (repo, ids) = seeded(2);
    // Aggressive checkpointing: the appender must roll generations many
    // times inside the group-commit regime.
    let backend = AutoCompactingEventLog::open(
        &dir,
        CompactionPolicy {
            checkpoint_every: 8,
        },
    )
    .unwrap();
    let writer = Arc::new(BackgroundWriter::with_config(
        backend,
        PipelineConfig::group_commit(Duration::from_millis(1)),
    ));
    repo.subscribe_with_backfill(writer.clone());
    for i in 0..40 {
        repo.comment("alice", &ids[i % ids.len()], "2014-03-28", &format!("c{i}"))
            .unwrap();
    }
    writer.flush().unwrap();
    writer.shutdown().unwrap();

    let recovered = EventLogBackend::open(&dir).unwrap();
    assert_eq!(recovered.restore().unwrap(), repo.snapshot());
    // Compaction kept working off-thread: the log was checkpointed, so a
    // restore replays far less than the full history.
    assert!(
        recovered.pending_events().unwrap() < 40,
        "auto-compaction must keep the replay tail bounded"
    );
    assert!(recovered.generation_files().unwrap().len() <= 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn periodic_health_reports_show_the_amortisation() {
    let dir = unique_temp_dir("group-commit-health");
    let (repo, ids) = seeded(1);
    let writer = Arc::new(BackgroundWriter::with_config(
        EventLogBackend::open(&dir).unwrap(),
        PipelineConfig {
            health_every: 1,
            ..PipelineConfig::group_commit(Duration::from_millis(1))
        },
    ));
    repo.subscribe_with_backfill(writer.clone());
    for i in 0..16 {
        repo.comment("alice", &ids[0], "2014-03-28", &format!("c{i}"))
            .unwrap();
    }
    writer.flush().unwrap();

    let reports = writer.drain_health_reports();
    assert!(!reports.is_empty());
    let last = reports.last().unwrap();
    assert!(last.healthy());
    assert_eq!(last.stats.group_commits, last.stats.fsyncs);
    for pair in reports.windows(2) {
        assert!(
            pair[0].stats.group_commits < pair[1].stats.group_commits,
            "each health_every=1 report marks one more window"
        );
    }
    assert!(writer.health().healthy());
    writer.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn per_batch_default_remains_one_call_durable() {
    let dir = unique_temp_dir("per-batch-default");
    let (repo, ids) = seeded(1);
    let writer = Arc::new(BackgroundWriter::spawn(
        EventLogBackend::open(&dir).unwrap(),
    ));
    repo.subscribe_with_backfill(writer.clone());
    for i in 0..8 {
        repo.comment("alice", &ids[0], "2014-03-28", &format!("c{i}"))
            .unwrap();
    }
    writer.flush().unwrap();
    let stats = writer.stats();
    assert_eq!(stats.durable, stats.enqueued);
    assert_eq!(stats.group_commits, 0, "no windows in per-batch mode");
    assert!(stats.fsyncs >= 1);
    writer.shutdown().unwrap();
    let recovered = EventLogBackend::open(&dir).unwrap();
    assert_eq!(recovered.restore().unwrap(), repo.snapshot());
    std::fs::remove_dir_all(&dir).ok();
}
