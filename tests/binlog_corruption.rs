//! Corruption detection across the whole binary log, by exhaustive
//! fault injection: flip any single byte of any segment and recovery
//! reports the typed [`RepoError::CorruptFrame`] — never a silent skip,
//! never a panic, never a clean-looking restore over damaged history.
//! Truncation is the one tolerated fault: cutting the *live* segment
//! anywhere restores the clean prefix, exactly what a crash mid-append
//! may leave. Plus the composition checks: replicas tail binary
//! directories incrementally, auto-compaction checkpoints them, and a
//! `CrashingBackend` fuse leaves a recoverable directory behind.

use bx::core::binlog::BinaryLogBackend;
use bx::core::replica::{LogTail, Replica};
use bx::core::storage::{
    AutoCompactingBinaryLog, CompactionPolicy, EventLogBackend, StorageBackend,
};
use bx::core::{Principal, RepoError};
use bx_testkit::faults::CrashingBackend;
use bx_testkit::ops::{apply_ops, scripted_repository, unique_temp_dir, valid_entry, RepoOp};

/// A short deterministic script producing a healthy spread of event
/// variants (contributions, revisions, comments, reviews, approvals).
fn script(titles: &[&str]) -> Vec<RepoOp> {
    let mut ops = Vec::new();
    for title in titles {
        ops.push(RepoOp::Contribute {
            title: title.to_string(),
            discussion: format!("discussion of {title}"),
        });
        ops.push(RepoOp::Comment {
            title: title.to_string(),
            text: format!("a note on {title}"),
        });
        ops.push(RepoOp::Revise {
            title: title.to_string(),
            overview: format!("revised {title}"),
        });
        ops.push(RepoOp::RequestReview {
            title: title.to_string(),
        });
        ops.push(RepoOp::Approve {
            title: title.to_string(),
        });
    }
    ops
}

/// A recorded binary log directory plus the healthy snapshot it holds.
fn recorded_dir(tag: &str, segment_bytes: Option<u64>) -> (std::path::PathBuf, Vec<String>) {
    let dir = unique_temp_dir(tag);
    let repo = scripted_repository();
    apply_ops(&repo, &script(&["Composers", "Dates", "Heaters"]));
    let mut backend = match segment_bytes {
        Some(cap) => BinaryLogBackend::open_with_segment_bytes(&dir, cap).unwrap(),
        None => BinaryLogBackend::open(&dir).unwrap(),
    };
    backend.record(&repo.drain_events()).unwrap();
    assert_eq!(backend.restore().unwrap(), repo.snapshot());
    let segments = backend.generation_files().unwrap();
    (dir, segments)
}

/// Restore the directory and demand the typed corruption error — not a
/// clean snapshot (silent skip) and not a panic.
fn assert_corrupt(dir: &std::path::Path, segment: &str, byte: usize) {
    match EventLogBackend::restore_dir(dir) {
        Err(RepoError::CorruptFrame { .. }) => {}
        Ok(_) => panic!("flipping byte {byte} of `{segment}` restored cleanly — silent corruption"),
        Err(other) => panic!("flipping byte {byte} of `{segment}` gave untyped error: {other}"),
    }
}

#[test]
fn every_flipped_byte_of_a_single_segment_log_is_detected() {
    let (dir, segments) = recorded_dir("binlog-flip-all", None);
    assert_eq!(segments.len(), 1, "default cap keeps one segment");
    let path = dir.join(&segments[0]);
    let pristine = std::fs::read(&path).unwrap();
    for byte in 0..pristine.len() {
        let mut bytes = pristine.clone();
        bytes[byte] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert_corrupt(&dir, &segments[0], byte);
    }
    std::fs::write(&path, &pristine).unwrap();
    assert!(EventLogBackend::restore_dir(&dir).is_ok());
}

#[test]
fn flips_across_a_multi_segment_log_are_detected_in_every_segment() {
    let (dir, segments) = recorded_dir("binlog-flip-multi", Some(512));
    assert!(
        segments.len() >= 3,
        "a 512-byte cap must roll several segments (got {})",
        segments.len()
    );
    for segment in &segments {
        let path = dir.join(segment);
        let pristine = std::fs::read(&path).unwrap();
        // Stepped sweep: the single-segment test is exhaustive, here we
        // cover every segment (sealed and live) at a coarser grain.
        for byte in (0..pristine.len()).step_by(7) {
            let mut bytes = pristine.clone();
            bytes[byte] ^= 0x01;
            std::fs::write(&path, &bytes).unwrap();
            assert_corrupt(&dir, segment, byte);
        }
        std::fs::write(&path, &pristine).unwrap();
    }
    assert!(EventLogBackend::restore_dir(&dir).is_ok());
}

#[test]
fn any_truncation_of_the_live_segment_restores_a_clean_prefix() {
    let (dir, segments) = recorded_dir("binlog-truncate", None);
    let generation = EventLogBackend::read_state_in(&dir).unwrap().1;
    let full = EventLogBackend::read_generation_events(&dir, &generation).unwrap();
    let path = dir.join(&segments[0]);
    let pristine = std::fs::read(&path).unwrap();
    let mut prefix_lengths = std::collections::BTreeSet::new();
    for cut in (0..pristine.len()).rev() {
        std::fs::write(&path, &pristine[..cut]).unwrap();
        let events = EventLogBackend::read_generation_events(&dir, &generation)
            .unwrap_or_else(|e| panic!("truncation at {cut} must stay readable, got {e}"));
        assert_eq!(
            events,
            full[..events.len()],
            "truncation at byte {cut} must yield a prefix of the history"
        );
        prefix_lengths.insert(events.len());
    }
    assert!(
        prefix_lengths.len() > 2,
        "sweep should hit several distinct prefixes, got {prefix_lengths:?}"
    );
    std::fs::write(&path, &pristine).unwrap();
    assert_eq!(
        EventLogBackend::read_generation_events(&dir, &generation).unwrap(),
        full
    );
}

#[test]
fn truncating_a_sealed_segment_is_corruption_not_a_torn_tail() {
    let (dir, segments) = recorded_dir("binlog-truncate-sealed", Some(512));
    assert!(segments.len() >= 2);
    let sealed = dir.join(&segments[0]);
    let pristine = std::fs::read(&sealed).unwrap();
    std::fs::write(&sealed, &pristine[..pristine.len() - 3]).unwrap();
    match EventLogBackend::restore_dir(&dir) {
        Err(RepoError::CorruptFrame { .. }) => {}
        other => panic!("a short sealed segment must be CorruptFrame, got {other:?}"),
    }
}

#[test]
fn replicas_tail_binary_logs_incrementally_and_across_checkpoints() {
    let dir = unique_temp_dir("binlog-replica");
    let repo = scripted_repository();
    let mut backend = BinaryLogBackend::open(&dir).unwrap();
    backend.record(&repo.drain_events()).unwrap();

    let mut replica = Replica::open(&dir).unwrap();
    assert_eq!(replica.snapshot(), &repo.snapshot());

    // Unchanged log: polling applies nothing and does not rebase.
    let idle = replica.catch_up().unwrap();
    assert_eq!((idle.events_applied, idle.rebased), (0, false));

    // Incremental: only the appended tail is applied.
    apply_ops(&repo, &script(&["Tailed"]));
    backend.record(&repo.drain_events()).unwrap();
    let caught = replica.catch_up().unwrap();
    assert!(caught.events_applied > 0 && !caught.rebased);
    assert_eq!(replica.snapshot(), &repo.snapshot());

    // Checkpoint crossing: the tail adopts the new base (rebases) and
    // lands on the same state.
    backend.checkpoint(&repo.snapshot()).unwrap();
    apply_ops(&repo, &script(&["Post Checkpoint"]));
    backend.record(&repo.drain_events()).unwrap();
    let crossed = replica.catch_up().unwrap();
    assert!(crossed.rebased);
    assert_eq!(replica.snapshot(), &repo.snapshot());
}

#[test]
fn an_unchanged_binary_log_polls_with_zero_lag_and_zero_events() {
    let dir = unique_temp_dir("binlog-tail-idle");
    let repo = scripted_repository();
    let mut backend = BinaryLogBackend::open(&dir).unwrap();
    backend.record(&repo.drain_events()).unwrap();

    let (mut tail, _base) = LogTail::open(&dir).unwrap();
    let first = tail.poll().unwrap();
    assert!(!first.events.is_empty());
    assert_eq!(tail.lag_bytes(), 0);
    let (generation, applied) = {
        let (g, a) = tail.position();
        (g.to_string(), a)
    };

    // Unchanged log: lag stays zero (a metadata stat over the segment
    // run), the poll returns nothing, and the position does not move.
    for _ in 0..3 {
        let idle = tail.poll().unwrap();
        assert!(idle.events.is_empty() && !idle.rebased);
        assert_eq!(tail.lag_bytes(), 0);
        assert_eq!(tail.position(), (generation.as_str(), applied));
    }

    // New frames become lag immediately, measured in bytes, before any
    // poll consumes them.
    repo.register(Principal::member("tessa")).unwrap();
    repo.contribute("tessa", valid_entry("Lag Probe", "lag measurement"))
        .unwrap();
    backend.record(&repo.drain_events()).unwrap();
    assert!(tail.lag_bytes() > 0);
    tail.poll().unwrap();
    assert_eq!(tail.lag_bytes(), 0);
}

#[test]
fn auto_compaction_checkpoints_binary_logs_and_replicas_follow() {
    let dir = unique_temp_dir("binlog-compact");
    let repo = scripted_repository();
    let mut backend = AutoCompactingBinaryLog::open_with(
        &dir,
        CompactionPolicy {
            checkpoint_every: 8,
        },
    )
    .unwrap();
    backend.record(&repo.drain_events()).unwrap();
    let mut replica = Replica::open(&dir).unwrap();

    let mut rebases = 0;
    for round in 0..4 {
        apply_ops(&repo, &script(&[&format!("Compacted {round}")]));
        backend.record(&repo.drain_events()).unwrap();
        let caught = replica.catch_up().unwrap();
        rebases += usize::from(caught.rebased);
        assert_eq!(replica.snapshot(), &repo.snapshot());
    }
    assert!(
        rebases > 0,
        "an 8-event policy must checkpoint within 4 five-op rounds"
    );
    assert_eq!(EventLogBackend::restore_dir(&dir).unwrap(), repo.snapshot());
}

#[test]
fn a_crashing_fuse_leaves_a_recoverable_binary_directory() {
    let dir = unique_temp_dir("binlog-fuse");
    let repo = scripted_repository();
    let founding = repo.drain_events();
    let mut backend = CrashingBackend::new(BinaryLogBackend::open(&dir).unwrap(), 12);
    backend.record(&founding).unwrap();

    apply_ops(&repo, &script(&["Doomed", "Writes"]));
    let mut durable = founding.len();
    let mut tripped = false;
    for event in repo.drain_events() {
        match backend.record(std::slice::from_ref(&event)) {
            Ok(()) => durable += 1,
            Err(e) => {
                assert!(matches!(e, RepoError::Persist(ref m) if m.contains("injected crash")));
                tripped = true;
                break;
            }
        }
    }
    assert!(tripped, "the fuse must burn out mid-script");

    // The directory holds exactly the events that committed before the
    // crash — a fresh open (with torn-tail repair) restores them.
    let reopened = BinaryLogBackend::open(&dir).unwrap();
    assert_eq!(reopened.pending_events().unwrap(), durable);
    assert!(reopened.restore().is_ok());
}
