//! Delta equivalence, property-tested: for any random mutation script,
//! every delta-driven materialization agrees with its from-scratch
//! counterpart —
//!
//! * `SearchIndex::apply` over the event stream ≡ `SearchIndex::build`
//!   from the resulting snapshot;
//! * `WikiBx::sync_changed` over the event dirty set ≡ the total
//!   `WikiBx::fwd`;
//! * event-log replay (and the other `StorageBackend`s) ≡ the JSON
//!   snapshot restore.

use bx::core::event::{dirty_set, replay};
use bx::core::index::SearchIndex;
use bx::core::storage::{EventLogBackend, JsonFileBackend, MemoryBackend, StorageBackend};
use bx::core::wiki_bx::WikiBx;
use bx::core::{persist, Repository, WikiSite};
use bx::theory::Bx;
use bx_testkit::ops::{apply_op, arb_ops, scripted_repository, unique_temp_dir};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Incremental index maintenance is exactly rebuild-from-snapshot, at
    /// every intermediate point of the script, not just at the end.
    #[test]
    fn index_apply_equals_build(ops in arb_ops(24)) {
        let repo = scripted_repository();
        let mut incremental = SearchIndex::build(&repo.snapshot());
        for event in repo.drain_events() {
            // The pre-script events (founding, registrations) are account
            // events; applying them anyway must be a no-op.
            incremental.apply(&event);
        }
        for op in &ops {
            apply_op(&repo, op);
            for event in repo.drain_events() {
                incremental.apply(&event);
            }
            prop_assert_eq!(&incremental, &SearchIndex::build(&repo.snapshot()));
        }
    }

    /// Dirty-tracked wiki sync lands on the same site as the total fwd,
    /// for every batch boundary the script produces.
    #[test]
    fn sync_changed_equals_fwd(ops in arb_ops(24)) {
        let bx = WikiBx::new();
        let repo = scripted_repository();
        let mut site = bx.fwd(&repo.snapshot(), &WikiSite::new());
        repo.drain_events();
        // Sync after every op: maximally many small dirty batches.
        for op in &ops {
            apply_op(&repo, op);
            // Drain-first, snapshot-second: the order `drain_events` documents
            // as safe under concurrency.
            let dirty = dirty_set(&repo.drain_events());
            let snap = repo.snapshot();
            let total = bx.fwd(&snap, &site);
            bx.sync_changed(&snap, &mut site, &dirty);
            prop_assert_eq!(&site, &total);
            prop_assert!(bx.consistent(&snap, &site));
        }
    }

    /// All three storage backends, fed the same event stream, restore the
    /// same state — and that state round-trips the JSON snapshot path.
    #[test]
    fn backends_agree_with_snapshot_restore(ops in arb_ops(16)) {
        let repo = scripted_repository();
        let mut memory = MemoryBackend::new();
        let json_dir = unique_temp_dir("delta-eq-json");
        let mut json = JsonFileBackend::new(json_dir.join("repo.json"));
        let log_dir = unique_temp_dir("delta-eq-log");
        let mut log = EventLogBackend::open(&log_dir).unwrap();

        // Record in per-op batches, checkpointing the log backend midway
        // to exercise snapshot+replay recovery (not just pure replay).
        let checkpoint_at = ops.len() / 2;
        let events = repo.drain_events();
        memory.record(&events).unwrap();
        json.record(&events).unwrap();
        log.record(&events).unwrap();
        for (i, op) in ops.iter().enumerate() {
            apply_op(&repo, op);
            let events = repo.drain_events();
            memory.record(&events).unwrap();
            json.record(&events).unwrap();
            log.record(&events).unwrap();
            if i == checkpoint_at {
                log.checkpoint(&repo.snapshot()).unwrap();
            }
        }

        let expected = repo.snapshot();
        // Replay of the full journal (drained incrementally above) is what
        // the memory backend holds; the log backend mixes checkpoint and
        // replay; the json backend folds eagerly.
        prop_assert_eq!(memory.restore().unwrap(), expected.clone());
        prop_assert_eq!(json.restore().unwrap(), expected.clone());
        prop_assert_eq!(log.restore().unwrap(), expected.clone());
        // …and they agree with the plain JSON snapshot round trip.
        let json_restore = persist::from_json(&persist::to_json(&expected).unwrap()).unwrap();
        prop_assert_eq!(json_restore, expected);

        std::fs::remove_dir_all(&json_dir).ok();
        std::fs::remove_dir_all(&log_dir).ok();
    }

    /// The journal alone reconstructs the live repository from nothing —
    /// and the reconstruction is again a working repository.
    #[test]
    fn journal_replay_reconstructs_live_state(ops in arb_ops(24)) {
        let repo = scripted_repository();
        let mut journal = repo.drain_events();
        for op in &ops {
            apply_op(&repo, op);
            journal.extend(repo.drain_events());
        }
        let replayed = replay(bx::core::repo::RepositorySnapshot::empty(""), &journal);
        prop_assert_eq!(&replayed, &repo.snapshot());
        let revived = Repository::from_snapshot(replayed);
        prop_assert_eq!(revived.len(), repo.len());
    }
}
