//! `bx_logconv` round trips, property-tested: for any random mutation
//! script, converting the recorded JSONL log to the binary format and
//! back restores exactly the same snapshot at every hop — the two
//! on-disk formats are interchangeable carriers of the same event
//! history. Deterministic cases pin the edges the property can't reach:
//! checkpointed sources keep their checkpoint, torn tails are dropped
//! (never carried), occupied destinations are refused, and a converted
//! directory is a first-class log the native backend can keep appending
//! to.

use bx::core::binlog::{convert_log_dir, is_binary_generation, torn_frame_bytes, BinaryLogBackend};
use bx::core::storage::{EventLogBackend, StorageBackend};
use bx::core::{Principal, RepoError};
use bx_testkit::ops::{apply_ops, arb_ops, scripted_repository, unique_temp_dir, valid_entry};
use proptest::prelude::*;

/// The format of the generation a directory's durable state names.
fn generation_of(dir: &std::path::Path) -> String {
    EventLogBackend::read_state_in(dir).unwrap().1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// JSONL → binary → JSONL: every hop restores the same snapshot,
    /// and each hop really is in the format it claims.
    #[test]
    fn conversion_round_trips_any_script(ops in arb_ops(24)) {
        let jsonl = unique_temp_dir("logconv-src");
        let repo = scripted_repository();
        apply_ops(&repo, &ops);
        let mut backend = EventLogBackend::open(&jsonl).unwrap();
        backend.record(&repo.drain_events()).unwrap();
        let expected = repo.snapshot();

        let binary = unique_temp_dir("logconv-bin");
        let back = unique_temp_dir("logconv-back");
        convert_log_dir(&jsonl, &binary, true).unwrap();
        convert_log_dir(&binary, &back, false).unwrap();

        prop_assert!(is_binary_generation(&generation_of(&binary)));
        prop_assert!(!is_binary_generation(&generation_of(&back)));
        prop_assert_eq!(EventLogBackend::restore_dir(&jsonl).unwrap(), expected.clone());
        prop_assert_eq!(EventLogBackend::restore_dir(&binary).unwrap(), expected.clone());
        prop_assert_eq!(EventLogBackend::restore_dir(&back).unwrap(), expected);
    }

    /// A checkpoint mid-script survives the round trip: the converted
    /// directory carries a manifest whose base + pending replay equals
    /// the source's, in both directions.
    #[test]
    fn checkpointed_sources_convert_with_their_manifest(
        before in arb_ops(12),
        after in arb_ops(12),
    ) {
        let jsonl = unique_temp_dir("logconv-ckpt-src");
        let repo = scripted_repository();
        apply_ops(&repo, &before);
        let mut backend = EventLogBackend::open(&jsonl).unwrap();
        backend.record(&repo.drain_events()).unwrap();
        backend.checkpoint(&repo.snapshot()).unwrap();
        apply_ops(&repo, &after);
        backend.record(&repo.drain_events()).unwrap();
        let expected = repo.snapshot();

        let binary = unique_temp_dir("logconv-ckpt-bin");
        let back = unique_temp_dir("logconv-ckpt-back");
        convert_log_dir(&jsonl, &binary, true).unwrap();
        convert_log_dir(&binary, &back, false).unwrap();

        prop_assert!(binary.join("checkpoint.json").exists());
        prop_assert!(back.join("checkpoint.json").exists());
        prop_assert_eq!(EventLogBackend::restore_dir(&binary).unwrap(), expected.clone());
        prop_assert_eq!(EventLogBackend::restore_dir(&back).unwrap(), expected);
    }
}

/// A converted binary directory is not a dead export: the native
/// backend opens it and keeps appending, and the result replays as one
/// continuous history.
#[test]
fn converted_directory_accepts_further_appends() {
    let jsonl = unique_temp_dir("logconv-append-src");
    let repo = scripted_repository();
    let mut backend = EventLogBackend::open(&jsonl).unwrap();
    backend.record(&repo.drain_events()).unwrap();

    let binary = unique_temp_dir("logconv-append-bin");
    convert_log_dir(&jsonl, &binary, true).unwrap();

    repo.register(Principal::member("nadia")).unwrap();
    repo.contribute(
        "nadia",
        valid_entry("Converted Then Extended", "post-conversion append"),
    )
    .unwrap();
    let mut bin_backend = BinaryLogBackend::open(&binary).unwrap();
    bin_backend.record(&repo.drain_events()).unwrap();

    assert_eq!(
        EventLogBackend::restore_dir(&binary).unwrap(),
        repo.snapshot()
    );
}

/// A torn tail is crash debris, not history: conversion carries exactly
/// the clean prefix a restart would restore, from either format.
#[test]
fn torn_tails_are_dropped_not_converted() {
    let binary = unique_temp_dir("logconv-torn-src");
    let repo = scripted_repository();
    let mut backend = BinaryLogBackend::open(&binary).unwrap();
    backend.record(&repo.drain_events()).unwrap();
    let expected = backend.restore().unwrap();

    // Tear the live segment the way a crash mid-write would.
    let segments = backend.generation_files().unwrap();
    let last = segments.last().expect("recorded events produce a segment");
    let path = binary.join(last);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes.extend_from_slice(&torn_frame_bytes());
    std::fs::write(&path, bytes).unwrap();

    let jsonl = unique_temp_dir("logconv-torn-dst");
    convert_log_dir(&binary, &jsonl, false).unwrap();
    assert_eq!(EventLogBackend::restore_dir(&jsonl).unwrap(), expected);
}

/// Conversions never merge: any contents at the destination — even a
/// single unrelated file — refuse the conversion.
#[test]
fn occupied_destinations_are_refused() {
    let jsonl = unique_temp_dir("logconv-refuse-src");
    let repo = scripted_repository();
    let mut backend = EventLogBackend::open(&jsonl).unwrap();
    backend.record(&repo.drain_events()).unwrap();

    let dst = unique_temp_dir("logconv-refuse-dst");
    std::fs::create_dir_all(&dst).unwrap();
    std::fs::write(dst.join("unrelated.txt"), "keep me").unwrap();

    let err = convert_log_dir(&jsonl, &dst, true).unwrap_err();
    match err {
        RepoError::Persist(msg) => assert!(msg.contains("refusing to merge"), "got: {msg}"),
        other => panic!("expected Persist refusal, got {other:?}"),
    }
    assert_eq!(
        std::fs::read_to_string(dst.join("unrelated.txt")).unwrap(),
        "keep me"
    );
}

/// A corrupt source aborts the conversion with the typed frame error —
/// corruption is never silently laundered into a clean-looking copy.
#[test]
fn corrupt_sources_abort_the_conversion() {
    let binary = unique_temp_dir("logconv-corrupt-src");
    let repo = scripted_repository();
    let mut backend = BinaryLogBackend::open(&binary).unwrap();
    backend.record(&repo.drain_events()).unwrap();

    let segments = backend.generation_files().unwrap();
    let path = binary.join(segments.last().unwrap());
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, bytes).unwrap();

    let dst = unique_temp_dir("logconv-corrupt-dst");
    match convert_log_dir(&binary, &dst, false) {
        Err(RepoError::CorruptFrame { .. }) => {}
        other => panic!("expected CorruptFrame, got {other:?}"),
    }
}
