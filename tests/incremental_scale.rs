//! The acceptance check for the delta-driven core at benchmark scale:
//! after a single-entry revise of `scaled_repository(90)` (103 entries),
//! the incremental paths touch exactly one entry — no untouched entry is
//! re-tokenised, no untouched page is re-rendered — while landing on
//! exactly the states the full rebuilds produce.

use bx::core::event::dirty_set;
use bx::core::index::{entries_tokenized, SearchIndex};
use bx::core::wiki::render::entries_rendered;
use bx::core::wiki_bx::WikiBx;
use bx::core::{EntryId, WikiSite};
use bx::theory::Bx;
use bx_bench::scaled_repository;

#[test]
fn single_revise_touches_one_entry_at_scale_90() {
    let repo = scaled_repository(90);
    assert_eq!(repo.len(), 103);
    let bx = WikiBx::new();
    let mut index = SearchIndex::build(&repo.snapshot());
    let mut site = bx.fwd(&repo.snapshot(), &WikiSite::new());
    repo.drain_events(); // construction history is already materialized

    let id = EntryId::from_title("SYNTH-00042");
    let mut entry = repo.latest(&id).expect("synthetic entry exists");
    entry.discussion = "Revised once, at scale.".to_string();
    repo.revise("bench-bot", &id, entry)
        .expect("author revises");

    let events = repo.drain_events();
    let snap = repo.snapshot();
    let dirty = dirty_set(&events);
    assert_eq!(dirty.len(), 1);

    // Incremental index: exactly one entry re-tokenised out of 103.
    let tokenized_before = entries_tokenized();
    for event in &events {
        index.apply(event);
    }
    assert_eq!(entries_tokenized() - tokenized_before, 1);
    assert_eq!(index, SearchIndex::build(&snap), "apply ≡ build");

    // Dirty-tracked wiki sync: exactly one page re-rendered out of 103.
    let before_site = site.clone();
    let rendered_before = entries_rendered();
    bx.sync_changed(&snap, &mut site, &dirty);
    assert_eq!(entries_rendered() - rendered_before, 1);
    assert_eq!(site, bx.fwd(&snap, &before_site), "sync_changed ≡ fwd");
    assert!(bx.consistent(&snap, &site));

    // Revision counts: the touched page gained one revision; every
    // untouched page kept its single original revision.
    assert_eq!(site.revisions(&id.page_name()).len(), 2);
    for other in snap.records.keys().filter(|k| **k != id) {
        assert_eq!(
            site.revisions(&other.page_name()).len(),
            1,
            "untouched page {other} must not gain revisions"
        );
    }
}
