//! E6 at collection scale: discovery — search, type/property filters,
//! the published home and glossary pages — over the standard collection.

use bx::core::index::{entries_claiming, entries_of_type, entries_with_claim, SearchIndex};
use bx::core::wiki_bx::WikiBx;
use bx::core::{ExampleType, WikiSite};
use bx::examples::standard_repository;
use bx::theory::{Claim, Property};

#[test]
fn search_surfaces_the_right_entries() {
    let idx = SearchIndex::build(&standard_repository().snapshot());
    // Domain vocabulary routes to the right entries.
    let cases: &[(&[&str], &str)] = &[
        (&["notorious"], "uml2rdbms"),
        (&["graveyard"], "composers-edit"),
        (&["resourceful", "dates"], "composers-boomerang"),
        (&["spreadsheet"], "spreadsheet-values"),
        (&["phone", "combinators"], "address-book"),
    ];
    for (terms, expected) in cases {
        let hits = idx.query(terms);
        assert!(
            hits.iter().any(|(id, _)| id.as_str() == *expected),
            "query {terms:?} should surface {expected}, got {hits:?}"
        );
    }
}

#[test]
fn type_filters_partition_sensibly() {
    let snap = standard_repository().snapshot();
    let precise = entries_of_type(&snap, ExampleType::Precise);
    let sketch = entries_of_type(&snap, ExampleType::Sketch);
    let industrial = entries_of_type(&snap, ExampleType::Industrial);
    let benchmark = entries_of_type(&snap, ExampleType::Benchmark);
    assert!(precise.len() >= 8);
    assert_eq!(sketch.len(), 1);
    assert_eq!(industrial.len(), 1);
    assert!(
        benchmark.len() >= 3,
        "uml2rdbms, families, composers-at-scale"
    );
    // PRECISE and SKETCH never co-occur (validated at contribution).
    for id in &sketch {
        assert!(!precise.contains(id));
    }
}

#[test]
fn property_filters_find_the_undoability_story() {
    let snap = standard_repository().snapshot();
    let not_undoable = entries_with_claim(&snap, Claim::fails(Property::Undoable));
    let undoable = entries_with_claim(&snap, Claim::holds(Property::Undoable));
    assert!(
        not_undoable.len() >= 5,
        "most of the collection loses information"
    );
    assert_eq!(undoable.len(), 1, "only the edit-based variant is undoable");
    assert_eq!(undoable[0].as_str(), "composers-edit");
    // Every entry claiming anything about undoability also claims Correct.
    for id in not_undoable.iter().chain(&undoable) {
        let claims = &snap.records[id].latest().properties;
        assert!(claims.contains(&Claim::holds(Property::Correct)), "{id}");
    }
    let _ = entries_claiming(&snap, Property::Undoable);
}

#[test]
fn published_site_navigates_the_collection() {
    let bx = WikiBx::new();
    let snap = standard_repository().snapshot();
    let site = bx.publish(&snap, &WikiSite::new());

    // Home links every entry page with its version.
    let home = site.current("examples:home").expect("home published");
    for id in snap.records.keys() {
        assert!(
            home.contains(&format!("[[[{}]]]", id.page_name())),
            "home must link {id}"
        );
    }
    assert!(
        home.contains("(version 1.0)"),
        "the reviewed DATES entry shows 1.0"
    );

    // The glossary defines every property any entry claims.
    let glossary = site.current("glossary").expect("glossary published");
    for record in snap.records.values() {
        for claim in &record.latest().properties {
            assert!(
                glossary.contains(&format!("+++ {}", claim.property)),
                "glossary must define {}",
                claim.property
            );
        }
    }

    // Publication is consistent with the structured form.
    use bx::theory::Bx;
    assert!(bx.consistent(&snap, &site));
}

#[test]
fn reviewed_only_manuscript_is_a_strict_subset() {
    let snap = standard_repository().snapshot();
    let all = bx::core::manuscript::export_manuscript(
        &snap,
        bx::core::manuscript::ManuscriptOptions::default(),
    );
    let reviewed = bx::core::manuscript::export_manuscript(
        &snap,
        bx::core::manuscript::ManuscriptOptions {
            reviewed_only: true,
        },
    );
    assert!(reviewed.len() < all.len());
    assert!(reviewed.contains("++ DATES"));
    assert!(
        !reviewed.contains("++ COMPOSERS\n"),
        "provisional entries excluded"
    );
}
