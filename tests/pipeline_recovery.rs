//! Fault injection over the background durability pipeline: the writer
//! thread is killed mid-stream (a `CrashingBackend` fuse burns out inside
//! a batch), the final append is torn as if the process died mid-`write`,
//! and recovery — `EventLogBackend` reopen plus a `Replica` tailing the
//! directory — must converge with the primary.

use std::sync::Arc;
use std::time::Duration;

use bx::core::event::replay;
use bx::core::index::SearchIndex;
use bx::core::pipeline::{BackgroundWriter, PipelineConfig};
use bx::core::replica::Replica;
use bx::core::repo::RepositorySnapshot;
use bx::core::storage::{EventLogBackend, StorageBackend};
use bx::core::wiki_bx::WikiBx;
use bx::core::RepoError;
use bx::theory::Bx;
use bx_testkit::faults::{torn_append, CrashingBackend};
use bx_testkit::ops::{apply_ops, scripted_repository, unique_temp_dir, RepoOp};

/// A deterministic script big enough to outlive the fuse.
fn script() -> Vec<RepoOp> {
    let mut ops = Vec::new();
    for (i, title) in ["COMPOSERS", "UML2RDBMS", "DATES"].iter().enumerate() {
        ops.push(RepoOp::Contribute {
            title: title.to_string(),
            discussion: format!("Entry {i}."),
        });
        ops.push(RepoOp::Comment {
            title: title.to_string(),
            text: format!("Comment {i}."),
        });
        ops.push(RepoOp::Revise {
            title: title.to_string(),
            overview: format!("Overview {i}."),
        });
        ops.push(RepoOp::RequestReview {
            title: title.to_string(),
        });
        ops.push(RepoOp::Approve {
            title: title.to_string(),
        });
    }
    ops
}

#[test]
fn killed_writer_and_torn_append_recover_to_the_primary() {
    let dir = unique_temp_dir("pipeline-crash");
    let repo = scripted_repository();

    // The full history the primary keeps via its journal sink; the
    // pre-subscription prefix is backfilled into the writer.
    let mut all_events = repo.drain_events();
    let fuse = 7;
    let backend = CrashingBackend::new(EventLogBackend::open(&dir).unwrap(), fuse);
    let writer = Arc::new(BackgroundWriter::with_config(
        backend,
        PipelineConfig {
            channel_capacity: 4, // keep batches small so the crash lands mid-stream
            write_batch: 4,
            ..PipelineConfig::default()
        },
    ));
    writer.enqueue(&all_events);
    repo.subscribe(writer.clone());

    apply_ops(&repo, &script());
    all_events.extend(repo.drain_events());
    assert!(
        all_events.len() > fuse,
        "the script must outlive the fuse ({} events)",
        all_events.len()
    );

    // The crash surfaces at flush (and stays sticky through shutdown).
    let err = writer.flush().unwrap_err();
    assert!(matches!(err, RepoError::Persist(ref m) if m.contains("injected crash")));
    let stats = writer.stats();
    assert!(
        stats.dropped > 0,
        "post-crash events were discarded, not lost silently"
    );
    assert!(writer.shutdown().is_err());
    drop(writer);

    // The final append is torn, as a mid-write kill would leave it.
    torn_append(&dir.join("events-0.jsonl")).unwrap();

    // Recovery, first process: reopen repairs the torn tail and restores
    // exactly the durable prefix the fuse allowed through.
    let mut recovered = EventLogBackend::open(&dir).unwrap();
    let durable = recovered.pending_events().unwrap();
    assert_eq!(durable, fuse, "the crashing batch recorded its prefix");
    assert_eq!(
        recovered.restore().unwrap(),
        replay(RepositorySnapshot::empty(""), &all_events[..durable])
    );

    // The primary still holds the full history: re-record the lost
    // suffix and the backend converges with the live state.
    recovered.record(&all_events[durable..]).unwrap();
    assert_eq!(recovered.restore().unwrap(), repo.snapshot());

    // A replica tailing the healed directory converges on all three
    // materializations.
    let replica = Replica::open(&dir).unwrap();
    let snap = repo.snapshot();
    assert_eq!(replica.snapshot(), &snap);
    assert_eq!(replica.index(), &SearchIndex::build(&snap));
    assert!(WikiBx::new().consistent(&snap, replica.site()));

    std::fs::remove_dir_all(&dir).ok();
}

/// The group-commit crash contract: a kill *inside* an open window —
/// after its appends, at its fsync point — must never lose a
/// `flush()`-acknowledged event, and whatever the window does lose is a
/// clean suffix (recovery always yields an exact event *prefix*, never a
/// torn interleaving). The suffix cut is swept over every byte offset
/// the un-fsynced region could have reached disk at.
#[test]
fn mid_window_kill_keeps_acknowledged_events_and_loses_a_clean_suffix() {
    let dir = unique_temp_dir("group-commit-crash");
    let repo = scripted_repository();
    let mut all_events = repo.drain_events();

    // Window timer far beyond the test: only flush/shutdown close
    // windows, so the window boundaries are deterministic. The fsync
    // fuse burns at the *second* window's commit point.
    let backend = CrashingBackend::fail_at_flush(EventLogBackend::open(&dir).unwrap(), 1);
    let writer = Arc::new(BackgroundWriter::with_config(
        backend,
        PipelineConfig::group_commit(Duration::from_secs(600)),
    ));
    writer.enqueue(&all_events);
    repo.subscribe(writer.clone());

    let ops = script();
    let (first_half, second_half) = ops.split_at(ops.len() / 2);

    // Window 1: half the script, closed by an acknowledged flush.
    apply_ops(&repo, first_half);
    all_events.extend(repo.drain_events());
    writer.flush().unwrap();
    let acknowledged = all_events.len();
    let acked_bytes = std::fs::metadata(dir.join("events-0.jsonl")).unwrap().len() as usize;

    // Window 2: the rest of the script; its fsync point crashes.
    apply_ops(&repo, second_half);
    all_events.extend(repo.drain_events());
    let err = writer.flush().unwrap_err();
    assert!(matches!(err, RepoError::Persist(ref m) if m.contains("fsync point")));
    let stats = writer.stats();
    assert_eq!(
        stats.durable, acknowledged as u64,
        "only window 1 was ever acknowledged"
    );
    assert_eq!(stats.dropped, (all_events.len() - acknowledged) as u64);
    assert!(writer.shutdown().is_err());
    drop(writer);

    let full = std::fs::read(dir.join("events-0.jsonl")).unwrap();
    assert!(
        full.len() > acked_bytes,
        "window 2 really appended before dying"
    );

    // Window 2's bytes were written but never fsynced: a power cut can
    // leave any prefix of them (plus a torn partial line). Window 1's
    // bytes were fsynced and must survive every cut. Sweep the cut
    // across the whole unacknowledged region.
    let case = unique_temp_dir("group-commit-crash-cut");
    let mut cuts: Vec<usize> = (acked_bytes..full.len()).step_by(7).collect();
    cuts.push(full.len()); // the everything-reached-disk case
    for cut in cuts {
        std::fs::create_dir_all(&case).unwrap();
        std::fs::write(case.join("events-0.jsonl"), &full[..cut]).unwrap();
        let recovered = EventLogBackend::open(&case).unwrap();
        let survived = recovered.pending_events().unwrap();
        assert!(
            survived >= acknowledged,
            "cut {cut}: an acknowledged event vanished ({survived} < {acknowledged})"
        );
        assert_eq!(
            recovered.restore().unwrap(),
            replay(RepositorySnapshot::empty(""), &all_events[..survived]),
            "cut {cut}: recovery must be a clean event prefix"
        );
        std::fs::remove_dir_all(&case).ok();
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn replica_converges_while_the_writer_crashes_and_is_replaced() {
    let dir = unique_temp_dir("pipeline-replace");
    let repo = scripted_repository();
    let mut all_events = repo.drain_events();

    // First writer: crashes mid-script.
    let fuse = 5;
    let writer = Arc::new(BackgroundWriter::with_config(
        CrashingBackend::new(EventLogBackend::open(&dir).unwrap(), fuse),
        PipelineConfig {
            channel_capacity: 2,
            write_batch: 2,
            ..PipelineConfig::default()
        },
    ));
    writer.enqueue(&all_events);
    repo.subscribe(writer.clone());
    let ops = script();
    let (first_half, second_half) = ops.split_at(ops.len() / 2);
    apply_ops(&repo, first_half);
    all_events.extend(repo.drain_events());
    assert!(writer.flush().is_err(), "fuse burnt during the first half");
    // The repository still holds this sink (sinks cannot be removed), so
    // join the dead writer thread explicitly rather than via Drop.
    assert!(writer.shutdown().is_err());
    drop(writer);
    torn_append(&dir.join("events-0.jsonl")).unwrap();

    // A replica opened against the crashed directory sees the durable
    // prefix — a consistent (if stale) state, never a torn one.
    let mut replica = Replica::open(&dir).unwrap();
    assert_eq!(
        replica.snapshot(),
        &replay(RepositorySnapshot::empty(""), &all_events[..fuse])
    );

    // Replacement writer: reopen (repairing the tail), re-enqueue the
    // lost suffix from the primary's journal, keep going.
    let durable = EventLogBackend::open(&dir)
        .unwrap()
        .pending_events()
        .unwrap();
    assert_eq!(durable, fuse);
    let writer = Arc::new(BackgroundWriter::spawn(
        EventLogBackend::open(&dir).unwrap(),
    ));
    writer.enqueue(&all_events[durable..]);
    repo.subscribe(writer.clone());
    apply_ops(&repo, second_half);
    writer.flush().unwrap();
    writer.shutdown().unwrap();

    // Note: the dead first writer is still subscribed (sinks cannot be
    // removed); its accepts drop events into its sticky-error counter and
    // must not disturb the live pipeline.

    replica.catch_up().unwrap();
    let snap = repo.snapshot();
    assert_eq!(replica.snapshot(), &snap);
    assert_eq!(replica.index(), &SearchIndex::build(&snap));
    assert!(WikiBx::new().consistent(&snap, replica.site()));

    std::fs::remove_dir_all(&dir).ok();
}
