//! E6/§5.4: persistence of the full standard repository — JSON snapshot,
//! file round trip, and agreement between the three representations
//! (structured, JSON, wiki).

use bx::core::wiki_bx::WikiBx;
use bx::core::{persist, Repository, WikiSite};
use bx::examples::standard_repository;
use bx::theory::Bx;

#[test]
fn full_repository_json_roundtrip() {
    let snap = standard_repository().snapshot();
    let json = persist::to_json(&snap).expect("serialises");
    let back = persist::from_json(&json).expect("deserialises");
    assert_eq!(back, snap);
}

#[test]
fn file_roundtrip_preserves_everything() {
    // Per-process path: parallel test runs must not collide.
    let dir = std::env::temp_dir().join(format!(
        "bx-workspace-persistence-test-{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("repo.json");

    let repo = standard_repository();
    persist::save_file(&repo, &path).expect("saves");
    let reloaded = persist::load_file(&path).expect("loads");
    assert_eq!(reloaded.snapshot(), repo.snapshot());

    // The reloaded repository is live: workflows keep working.
    let id = bx::core::EntryId::from_title("COMPOSERS");
    reloaded
        .comment("James Cheney", &id, "2014-05-01", "post-reload comment")
        .expect("accounts survived the round trip");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn three_representations_agree() {
    // structured --fwd--> wiki --bwd--> structured --json--> structured.
    let bx = WikiBx::new();
    let snap = standard_repository().snapshot();
    let site = bx.fwd(&snap, &WikiSite::new());
    let from_wiki = bx.bwd(&snap, &site);
    let from_json =
        persist::from_json(&persist::to_json(&from_wiki).expect("serialises")).expect("parses");
    assert_eq!(from_json, snap);
    let repo2 = Repository::from_snapshot(from_json);
    assert_eq!(repo2.len(), 13);
}

#[test]
fn snapshots_are_stable_across_identical_builds() {
    // Determinism: two independently built standard repositories have
    // identical snapshots and identical JSON (BTreeMap ordering, no
    // timestamps) — a prerequisite for meaningful diffing of archives.
    let a = persist::to_json(&standard_repository().snapshot()).unwrap();
    let b = persist::to_json(&standard_repository().snapshot()).unwrap();
    assert_eq!(a, b);
}
