//! E7: the §5.4 repository↔wiki bidirectional transformation, law-checked
//! over the real collection and over adversarial sites.

use bx::core::wiki::{render_entry, WikiSite};
use bx::core::wiki_bx::WikiBx;
use bx::core::EntryId;
use bx::examples::standard_repository;
use bx::theory::{check_all_laws, Bx, Claim, Law, Property, Samples};

#[test]
fn wiki_bx_claims_over_the_real_collection() {
    let bx = WikiBx::new();
    let full = standard_repository().snapshot();
    let mut small = full.clone();
    let removed: Vec<EntryId> = small.records.keys().skip(5).cloned().collect();
    for id in removed {
        small.records.remove(&id);
    }
    let empty = {
        let mut s = full.clone();
        s.records.clear();
        s
    };

    let site_full = bx.fwd(&full, &WikiSite::new());
    let site_small = bx.fwd(&small, &WikiSite::new());

    let samples = Samples::new(
        vec![
            (full.clone(), site_full.clone()),
            (small.clone(), site_small.clone()),
            (empty.clone(), WikiSite::new()),
            (full.clone(), site_small.clone()), // repository ahead of wiki
            (small.clone(), site_full.clone()), // wiki ahead of repository
            (empty, site_full.clone()),
        ],
        vec![small],
        vec![site_small, WikiSite::new()],
    );
    let matrix = check_all_laws(&bx, &samples);
    let verdicts = matrix.verify_claims(&[
        Claim::holds(Property::Correct),
        Claim::holds(Property::Hippocratic),
    ]);
    for v in &verdicts {
        assert!(v.confirmed(), "{v}\n{matrix}");
    }
}

#[test]
fn fwd_then_bwd_is_lossless_for_canonical_sites() {
    let bx = WikiBx::new();
    let snap = standard_repository().snapshot();
    let site = bx.fwd(&snap, &WikiSite::new());
    assert_eq!(bx.bwd(&snap, &site), snap);
}

#[test]
fn wiki_edits_flow_back_as_new_versions() {
    let bx = WikiBx::new();
    let snap = standard_repository().snapshot();
    let mut site = bx.fwd(&snap, &WikiSite::new());

    let id = EntryId::from_title("DATES");
    let mut edited = snap.records[&id].latest().clone();
    edited.overview = "Edited directly on the wiki.".to_string();
    edited.version = edited.version.next_revision();
    site.set_page(&id.page_name(), render_entry(&edited));

    let snap2 = bx.bwd(&snap, &site);
    let record = &snap2.records[&id];
    assert_eq!(record.latest().overview, "Edited directly on the wiki.");
    assert_eq!(
        record.history.len(),
        snap.records[&id].history.len() + 1,
        "the wiki edit appended a version; history retained"
    );
    // Untouched entries kept their records (status included) verbatim.
    let other = EntryId::from_title("COMPOSERS");
    assert_eq!(snap2.records[&other], snap.records[&other]);
}

#[test]
fn vandalism_is_quarantined_not_destructive() {
    let bx = WikiBx::new();
    let snap = standard_repository().snapshot();
    let mut site = bx.fwd(&snap, &WikiSite::new());
    site.set_page(
        "examples:composers",
        "ALL YOUR BX ARE BELONG TO US".to_string(),
    );
    site.set_page("examples:garbage-page", "+++ not even a title".to_string());

    let (snap2, errors) = bx.try_bwd(&snap, &site);
    assert_eq!(errors.len(), 2, "both bad pages reported");
    assert_eq!(
        snap2.records[&EntryId::from_title("COMPOSERS")],
        snap.records[&EntryId::from_title("COMPOSERS")],
        "the vandalised entry's record survives"
    );
    assert!(
        !snap2
            .records
            .contains_key(&EntryId("garbage-page".to_string())),
        "a new page that never parsed creates nothing"
    );
}

#[test]
fn bijectivity_fails_as_expected() {
    // The wiki stores no workflow status, so the bx is *not* bijective —
    // documenting the boundary of what §5.4's sync can preserve.
    let bx = WikiBx::new();
    let snap = standard_repository().snapshot();
    let site = bx.fwd(&snap, &WikiSite::new());
    let mut under_review = snap.clone();
    let id = EntryId::from_title("COMPOSERS");
    under_review
        .records
        .get_mut(&id)
        .expect("entry exists")
        .status = bx::core::EntryStatus::UnderReview;

    // fwd renders identically for both statuses: information the site
    // cannot represent.
    assert_eq!(bx.fwd(&under_review, &WikiSite::new()), site);
    let matrix = check_all_laws(
        &bx,
        &Samples::new(vec![(snap, site.clone())], vec![under_review], vec![site]),
    );
    assert!(matrix.law_holds(Law::CorrectFwd));
}
