//! Federation convergence, property-tested: a 3-primary federation over
//! random interleaved mutation scripts — with auto-compaction on one
//! source, a killed writer on another, and a torn final append on a
//! third — converges to exactly the per-source durable fold
//! ([`federate_snapshots`]) in all three materializations: merged
//! snapshot, search index, and rendered wiki pages. The daemon variant
//! checks the background polling thread serves the same state and stops
//! cleanly (no orphan thread).

use std::path::PathBuf;
use std::time::Duration;

use bx::core::index::SearchIndex;
use bx::core::replica::{federate_snapshots, DaemonConfig, Federation, ReplicaDaemon, SourceId};
use bx::core::wiki_bx::WikiBx;
use bx::core::ManuscriptOptions;
use bx::theory::Bx;
use bx_testkit::federation::{
    arb_federation_script, drive_federation, FederationScript, SourcePlan,
};
use bx_testkit::ops::{arb_ops, unique_temp_dir, RepoOp};
use proptest::prelude::*;

fn source_ids() -> [SourceId; 3] {
    [SourceId::new("a"), SourceId::new("b"), SourceId::new("c")]
}

fn dirs(tag: &str) -> Vec<PathBuf> {
    ["a", "b", "c"]
        .iter()
        .map(|s| unique_temp_dir(&format!("{tag}-{s}")))
        .collect()
}

fn open_federation(dirs: &[PathBuf]) -> Federation {
    let pairs = source_ids().into_iter().zip(dirs.iter().cloned()).collect();
    Federation::open("fed", pairs).expect("federation opens")
}

/// The merged state the federation must hold, given the per-source
/// durable folds.
fn spec(expected: &[bx::core::repo::RepositorySnapshot]) -> bx::core::repo::RepositorySnapshot {
    let pairs: Vec<_> = source_ids()
        .into_iter()
        .zip(expected.iter().cloned())
        .collect();
    federate_snapshots("fed", &pairs)
}

fn assert_converged(federation: &Federation, expected: &[bx::core::repo::RepositorySnapshot]) {
    let merged = spec(expected);
    assert_eq!(federation.snapshot(), &merged, "merged snapshot");
    assert_eq!(
        federation.index(),
        &SearchIndex::build(&merged),
        "merged index"
    );
    assert!(
        WikiBx::new().consistent(&merged, federation.site()),
        "merged wiki pages render the per-source folds"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The headline acceptance property. Two driving rounds over the same
    /// three directories: the federation opens cold after round one
    /// (exercising the initial fold), then tails round two incrementally
    /// (exercising per-source re-base across compaction generations, the
    /// killed writer's durable-prefix gap, and torn-tail tolerance). A
    /// cold-opened federation must agree with the tailing one.
    #[test]
    fn federation_converges_over_interleaved_faulty_sources(
        // Fixed 3-tuples, not length-3 vecs: shrinking works on sampled
        // values, so a vec-of-scripts could truncate below three sources
        // and report a case the strategy contract never allows; tuple
        // components shrink individually with the arity intact.
        round_one in (arb_ops(12), arb_ops(12), arb_ops(12)),
        round_two in (arb_ops(12), arb_ops(12), arb_ops(12)),
        checkpoint_every in 1usize..6,
        kill_after in 0usize..12,
        schedule in prop::collection::vec(0usize..16, 1..32),
    ) {
        let dirs = dirs("fed-conv");
        let round_one = [round_one.0, round_one.1, round_one.2];
        let round_two = [round_two.0, round_two.1, round_two.2];
        let mut fault_free: Vec<SourcePlan> = round_one
            .iter()
            .map(|ops| SourcePlan {
                ops: ops.clone(),
                compaction: None,
                kill_after_events: None,
                torn_tail: false,
                binary: false,
            })
            .collect();
        // Source b writes the binary segmented format from round one on:
        // the federation must converge over a mixed-format source set.
        fault_free[1].binary = true;
        let expected_mid = drive_federation(
            &dirs,
            &FederationScript { sources: fault_free, schedule: schedule.clone() },
        );
        let mut federation = open_federation(&dirs);
        assert_converged(&federation, &expected_mid);

        // Round two: compaction on source a, a killed writer on source b,
        // a torn final append on source c — the acceptance fault mix.
        let mut plans: Vec<SourcePlan> = round_two
            .iter()
            .map(|ops| SourcePlan {
                ops: ops.clone(),
                compaction: None,
                kill_after_events: None,
                torn_tail: false,
                binary: false,
            })
            .collect();
        plans[0].compaction = Some(checkpoint_every);
        plans[1].kill_after_events = Some(kill_after);
        plans[1].binary = true; // the binary source takes the kill fault
        plans[2].torn_tail = true;
        let expected = drive_federation(
            &dirs,
            &FederationScript { sources: plans, schedule },
        );

        federation.catch_up().expect("all three directories are present");
        assert_converged(&federation, &expected);
        // Fully caught up: nothing durable is left unapplied. (Source c
        // legitimately reports its torn half-line as lag until a writer
        // heals it.)
        for ((source, lag), plan_torn) in
            federation.lag().into_iter().zip([false, false, true])
        {
            prop_assert!(
                lag == 0 || plan_torn,
                "source {source} lags {lag} bytes"
            );
        }

        // A federation opened cold over the same directories agrees with
        // the incrementally maintained one.
        let cold = open_federation(&dirs);
        prop_assert_eq!(cold.snapshot(), federation.snapshot());
        prop_assert_eq!(cold.index(), federation.index());
        assert_converged(&cold, &expected);

        for dir in &dirs {
            std::fs::remove_dir_all(dir).ok();
        }
    }

    /// Fault combinations the guaranteed-mix property above cannot reach
    /// — e.g. a killed writer on a *compacting* source (the restart path
    /// reopens an `AutoCompactingEventLog` mid-script), several faults
    /// at once, or none — sampled from the harness's own
    /// `arb_federation_script` strategy. Cold-open convergence to the
    /// per-source durable fold must hold for all of them.
    #[test]
    fn federation_converges_under_random_fault_plans(
        script in arb_federation_script(3, 10),
    ) {
        let dirs = dirs("fed-rand");
        let expected = drive_federation(&dirs, &script);
        let federation = open_federation(&dirs);
        assert_converged(&federation, &expected);
        for dir in &dirs {
            std::fs::remove_dir_all(dir).ok();
        }
    }
}

/// The daemon serves a converging federation from its background thread,
/// surfaces serving reads under the poll lock, and stops cleanly — the
/// polling thread is joined, twice-stopping is a no-op, and the
/// federation comes back out for direct use.
#[test]
fn daemon_serves_and_stops_clean() {
    let dirs = dirs("fed-daemon");
    let contribute = |title: &str| RepoOp::Contribute {
        title: title.into(),
        discussion: "Served by the daemon.".into(),
    };
    let plans = vec![
        SourcePlan {
            ops: vec![contribute("COMPOSERS"), contribute("DATES")],
            compaction: Some(2),
            kill_after_events: None,
            torn_tail: false,
            binary: true, // the daemon polls a binary source alongside JSONL ones
        },
        SourcePlan {
            // Same title as source a: the namespaces keep them apart.
            ops: vec![contribute("COMPOSERS")],
            compaction: None,
            kill_after_events: None,
            torn_tail: false,
            binary: false,
        },
        SourcePlan {
            ops: vec![contribute("FAMILIES")],
            compaction: None,
            kill_after_events: None,
            torn_tail: false,
            binary: false,
        },
    ];
    let script = FederationScript {
        sources: plans,
        schedule: vec![0, 1, 2],
    };

    let federation = open_federation(&dirs);
    let mut daemon = ReplicaDaemon::spawn(
        federation,
        DaemonConfig {
            poll_interval: Duration::from_millis(5),
        },
    );
    assert!(daemon.is_running());

    // Writes land while the daemon is live; a forced pass (racing the
    // scheduled ones harmlessly) makes them visible deterministically.
    let expected = drive_federation(&dirs, &script);
    daemon.force_catch_up().expect("sources present");
    daemon.with_federation(|federation| assert_converged(federation, &expected));

    // Serving APIs under the poll lock: federated query (both COMPOSERS
    // entries, namespaced apart), citations, manuscript export.
    let hits = daemon.query(&["composers"]);
    assert_eq!(hits.len(), 2);
    assert!(daemon
        .citations()
        .iter()
        .any(|c| c.contains("examples:b/composers")));
    let manuscript = daemon.export_manuscript(ManuscriptOptions::default());
    assert!(manuscript.contains("@misc{bx-a-composers-0-1,"));
    assert!(manuscript.contains("@misc{bx-b-composers-0-1,"));
    assert!(daemon.last_error().is_none());
    assert!(daemon.stats().polls >= 1);

    // Clean stop: the thread is joined, a second stop is a no-op, and
    // the federation comes back out still holding the converged state.
    let stats = daemon.stop();
    assert!(!daemon.is_running(), "no orphan polling thread");
    assert_eq!(daemon.stop(), stats, "stop is idempotent");
    let federation = daemon.into_federation();
    assert_converged(&federation, &expected);

    for dir in &dirs {
        std::fs::remove_dir_all(dir).ok();
    }
}

/// Regression guard for the harness itself: interleaving must not starve
/// any source (every op of every plan executes exactly once), whatever
/// the schedule.
#[test]
fn driver_runs_every_op_exactly_once() {
    let dirs = dirs("fed-complete");
    let contribute = |title: &str| RepoOp::Contribute {
        title: title.into(),
        discussion: "Counted.".into(),
    };
    let script = FederationScript {
        sources: vec![
            SourcePlan {
                ops: vec![contribute("COMPOSERS"), contribute("DATES")],
                compaction: None,
                kill_after_events: None,
                torn_tail: false,
                binary: false,
            },
            SourcePlan {
                ops: vec![contribute("FAMILIES")],
                compaction: None,
                kill_after_events: None,
                torn_tail: false,
                binary: true,
            },
            SourcePlan {
                ops: Vec::new(),
                compaction: None,
                kill_after_events: None,
                torn_tail: false,
                binary: false,
            },
        ],
        // A schedule that keeps pointing at one source: the modulo over
        // *live* sources must still drain the others.
        schedule: vec![0],
    };
    let expected = drive_federation(&dirs, &script);
    assert_eq!(expected[0].records.len(), 2);
    assert_eq!(expected[1].records.len(), 1);
    assert!(expected[2].records.is_empty());
    for dir in &dirs {
        std::fs::remove_dir_all(dir).ok();
    }
}
