//! Lint equivalence, property-tested: for any random mutation script,
//! the incremental diagnostics — the synchronous [`Linter`] fed the
//! event stream, and the threaded [`LawChecker`] subscribed to the bus —
//! equal a cold [`full_check`] over the resulting snapshot. The same
//! invariant holds through a replica's life (torn log tails, checkpoint
//! re-bases) and across a federation where one source ships a
//! law-violating entry. Plus the scale acceptance: at ~10k entries an
//! incremental re-check per event is ≥ 50× faster than the cold check
//! (run under `--release` with the other timing-sensitive suites).

use std::sync::Arc;

use bx::core::event::{EntryDelta, RepoEvent};
use bx::core::replica::{Federation, Replica, SourceId};
use bx::core::storage::{EventLogBackend, StorageBackend};
use bx::core::{EntryId, ExampleEntry, ExampleType, Principal, Repository};
use bx::lint::{full_check, CheckCatalog, LawChecker, LintLaw, Linter, Severity};
use bx_testkit::ops::{apply_op, arb_ops, scripted_repository, unique_temp_dir, valid_entry};
use proptest::prelude::*;

fn empty_catalog() -> Arc<CheckCatalog> {
    Arc::new(CheckCatalog::new())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The synchronous incremental linter agrees with the cold full
    /// check at every intermediate point of the script, not just at the
    /// end.
    #[test]
    fn linter_apply_equals_full_check(ops in arb_ops(24)) {
        let repo = scripted_repository();
        repo.drain_events(); // founding cast is already in the snapshot
        let mut linter = Linter::new(repo.snapshot(), empty_catalog());
        for op in &ops {
            apply_op(&repo, op);
            for event in repo.drain_events() {
                linter.apply(&event);
            }
            prop_assert_eq!(
                linter.diagnostics(),
                &full_check(&repo.snapshot(), &CheckCatalog::new())
            );
        }
    }

    /// The live engine, subscribed to the bus with backfill, converges
    /// to the cold check after every op once its workers go idle.
    #[test]
    fn law_checker_on_the_bus_equals_full_check(ops in arb_ops(24)) {
        let repo = scripted_repository();
        let checker = Arc::new(LawChecker::new(empty_catalog()));
        // Backfill delivers the founding history the checker missed.
        repo.subscribe_with_backfill(checker.clone());
        for op in &ops {
            apply_op(&repo, op);
            checker.wait_idle();
            prop_assert_eq!(
                checker.diagnostics(),
                full_check(&repo.snapshot(), &CheckCatalog::new())
            );
        }
    }

    /// A checker riding a replica stays equivalent through torn tails
    /// (ignored until the writer repairs them) and checkpoint crossings
    /// (a re-base, delivered to the sink as `rebased`).
    #[test]
    fn replica_lint_survives_torn_tails_and_rebases(ops in arb_ops(16)) {
        let dir = unique_temp_dir("lint-replica");
        let repo = scripted_repository();
        let mut backend = EventLogBackend::open(&dir).unwrap();
        backend.record(&repo.drain_events()).unwrap();

        let mut replica = Replica::open(&dir).unwrap();
        let checker = Arc::new(LawChecker::new(empty_catalog()));
        replica.subscribe(checker.clone());

        let mid = ops.len() / 2;
        for op in &ops[..mid] {
            apply_op(&repo, op);
            backend.record(&repo.drain_events()).unwrap();
            replica.catch_up().unwrap();
        }

        // A torn append lands (a crashed writer): the replica must not
        // consume it, and the diagnostics must still match the intact
        // prefix the replica actually holds.
        let log = dir.join("events-0.jsonl");
        let mut text = std::fs::read_to_string(&log).unwrap();
        text.push_str("{\"Commented\":{\"id\":\"co");
        std::fs::write(&log, text).unwrap();
        replica.catch_up().unwrap();
        checker.wait_idle();
        prop_assert_eq!(
            checker.diagnostics(),
            full_check(replica.snapshot(), &CheckCatalog::new())
        );

        // The writer reopens (repairing the tail), finishes the script,
        // and checkpoints — forcing the replica to re-base.
        let mut backend = EventLogBackend::open(&dir).unwrap();
        for op in &ops[mid..] {
            apply_op(&repo, op);
            backend.record(&repo.drain_events()).unwrap();
        }
        backend.checkpoint(&repo.snapshot()).unwrap();
        let progress = replica.catch_up().unwrap();
        prop_assert!(progress.rebased, "the checkpoint forces a re-base");
        checker.wait_idle();
        prop_assert_eq!(replica.snapshot(), &repo.snapshot());
        prop_assert_eq!(
            checker.diagnostics(),
            full_check(replica.snapshot(), &CheckCatalog::new())
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// An entry that fails template validation, as a foreign (unvalidated)
/// event log would carry it — `contribute` on a healthy primary refuses
/// it, so it must be injected at the storage layer.
fn violating_entry(title: &str) -> ExampleEntry {
    ExampleEntry::builder(title)
        .of_type(ExampleType::Precise)
        // no overview — validate() flags it
        .models("M.")
        .consistency("C.")
        .restoration("F.", "B.")
        .discussion("D.")
        .author("mallory")
        .build_unchecked()
}

/// A federation with one healthy source and one source whose log ships
/// law-violating entries: the merged diagnostics pin the violation to
/// the namespaced id, stay clean for the healthy source, and equal the
/// cold check over the merged snapshot — both for a violation present
/// before subscription (backfilled via `rebased`) and for one arriving
/// afterwards (pushed via `accept`).
#[test]
fn federation_lint_flags_the_violating_source() {
    let dir_a = unique_temp_dir("lint-fed-a");
    let dir_b = unique_temp_dir("lint-fed-b");

    // Source a: a healthy primary using the validated workflow.
    let a = Repository::found("alpha", vec![Principal::curator("curator")]);
    a.register(Principal::member("alice")).unwrap();
    a.contribute("alice", valid_entry("COMPOSERS", "Clean."))
        .unwrap();
    let mut backend_a = EventLogBackend::open(&dir_a).unwrap();
    backend_a.record(&a.drain_events()).unwrap();

    // Source b: a log that never went through `contribute` validation.
    let mut backend_b = EventLogBackend::open(&dir_b).unwrap();
    backend_b
        .record(&[RepoEvent::Contributed(EntryDelta {
            id: EntryId::from_title("BROKEN"),
            entry: violating_entry("BROKEN"),
        })])
        .unwrap();

    let mut federation = Federation::open(
        "fed",
        vec![
            (SourceId::new("a"), dir_a.clone()),
            (SourceId::new("b"), dir_b.clone()),
        ],
    )
    .unwrap();
    let checker = Arc::new(LawChecker::new(empty_catalog()));
    federation.subscribe(checker.clone());
    checker.wait_idle();

    let broken = EntryId("b/broken".to_string());
    let diagnostics = checker.diagnostics();
    assert!(
        diagnostics
            .diagnostics_of(&broken)
            .iter()
            .any(|d| d.law == LintLaw::TemplateWellFormed && d.severity == Severity::Error),
        "the backfilled violation is pinned to the namespaced id:\n{}",
        diagnostics.report()
    );
    assert!(
        diagnostics
            .diagnostics_of(&EntryId("a/composers".to_string()))
            .is_empty(),
        "the healthy source stays clean"
    );
    assert_eq!(
        diagnostics,
        full_check(federation.snapshot(), &CheckCatalog::new())
    );

    // A second violation *arrives* from source b after subscription.
    backend_b
        .record(&[RepoEvent::Contributed(EntryDelta {
            id: EntryId::from_title("ALSO BROKEN"),
            entry: violating_entry("ALSO BROKEN"),
        })])
        .unwrap();
    federation.catch_up().unwrap();
    checker.wait_idle();
    let diagnostics = checker.diagnostics();
    assert!(!diagnostics
        .diagnostics_of(&EntryId("b/also-broken".to_string()))
        .is_empty());
    assert_eq!(diagnostics.error_count(), 2);
    assert_eq!(
        diagnostics,
        full_check(federation.snapshot(), &CheckCatalog::new())
    );

    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

/// The scale acceptance (release builds only — it rides in CI with the
/// other timing-sensitive suites): at ~10k entries, folding one event
/// incrementally is ≥ 50× faster than a cold full check, while landing
/// on the identical diagnostics.
#[test]
fn lint_at_10k_entries_incremental_is_50x_faster_than_full() {
    if cfg!(debug_assertions) {
        return; // meaningless without optimizations; CI runs --release
    }
    const SCALE: usize = 10_000;
    const STANDARD: usize = 13; // entries standard_repository() starts with
    let repo = bx_bench::scaled_repository(SCALE - STANDARD);
    repo.drain_events();
    let snapshot = repo.snapshot();
    assert_eq!(snapshot.records.len(), SCALE);
    let catalog = Arc::new(bx::lint::standard_catalog());

    let started = std::time::Instant::now();
    let full = full_check(&snapshot, &catalog);
    let full_time = started.elapsed();
    assert!(full.is_clean(), "the scaled corpus lints clean");

    let mut linter = Linter::new(snapshot.clone(), catalog.clone());
    for i in 0..32usize {
        let id = EntryId::from_title(&format!("SYNTH-{:05}", (i * 131) % (SCALE - STANDARD)));
        let mut entry = repo.latest(&id).expect("synthetic entry exists");
        entry.discussion = format!("lint scale revision {i}");
        repo.revise("bench-bot", &id, entry)
            .expect("author revises");
    }
    let events = repo.drain_events();
    let started = std::time::Instant::now();
    for event in &events {
        linter.apply(event);
    }
    let per_event = started.elapsed() / events.len() as u32;

    assert_eq!(
        linter.diagnostics(),
        &full_check(&repo.snapshot(), &catalog),
        "incremental ≡ full at scale"
    );
    assert!(
        full_time >= per_event * 50,
        "expected ≥ 50× speedup; full check {full_time:?} vs {per_event:?} per event"
    );
}
