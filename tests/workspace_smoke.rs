//! Workspace smoke test: the facade re-exports resolve, the standard
//! repository is populated, and the quickstart path from the crate docs
//! works end to end. This is the first test to fail if the workspace
//! wiring (crate names, re-exports, path dependencies) regresses.

use bx::core::wiki::render_entry;
use bx::core::EntryId;
use bx::examples::standard_repository;

#[test]
fn facade_reexports_resolve() {
    // One symbol through every facade module proves the re-export wiring.
    let _ = bx::core::EntryId::from_title("SMOKE");
    let _ = bx::theory::Law::ALL;
    let _ = bx::lens::tree::Tree::leaf("label", "value");
    let _ = bx::relational::ValueType::Str;
    let _ = bx::mde::MetaModel::new("smoke");
    let _ = bx::examples::all_entries();
}

#[test]
fn standard_repository_is_populated() {
    let repo = standard_repository();
    assert!(!repo.is_empty(), "standard repository must have entries");
    assert!(
        repo.len() >= 6,
        "expected the curated collection, got {} entries",
        repo.len()
    );
    for id in repo.ids() {
        let entry = repo.latest(&id).expect("listed id resolves");
        assert!(!entry.title.is_empty(), "{id:?} has a title");
    }
}

#[test]
fn quickstart_path_works() {
    let repo = standard_repository();
    let composers = repo
        .latest(&EntryId::from_title("COMPOSERS"))
        .expect("COMPOSERS entry exists");
    assert_eq!(composers.title, "COMPOSERS");
    let page = render_entry(&composers);
    assert!(page.contains("COMPOSERS"), "rendered page names the entry");
}
