//! E1: the §3 template — every field of every entry in the standard
//! collection survives the wiki markup round trip and the JSON round
//! trip, including property-based exploration of generated entries.

use bx::core::wiki::{parse_entry, render_entry};
use bx::core::{ExampleEntry, ExampleType};
use bx::examples::all_entries;
use bx::theory::{Claim, Property};
use proptest::prelude::*;

#[test]
fn every_standard_entry_roundtrips_through_wiki_markup() {
    for entry in all_entries() {
        let text = render_entry(&entry);
        let parsed =
            parse_entry(&entry.slug(), &text).unwrap_or_else(|e| panic!("{}: {e}", entry.title));
        assert_eq!(
            parsed, entry,
            "wiki round trip must be lossless for {}",
            entry.title
        );
    }
}

#[test]
fn every_standard_entry_roundtrips_through_json() {
    for entry in all_entries() {
        let json = serde_json::to_string(&entry).expect("entries serialise");
        let back: ExampleEntry = serde_json::from_str(&json).expect("entries deserialise");
        assert_eq!(
            back, entry,
            "JSON round trip must be lossless for {}",
            entry.title
        );
    }
}

#[test]
fn every_standard_entry_satisfies_the_template() {
    for entry in all_entries() {
        let problems = entry.validate();
        assert!(problems.is_empty(), "{}: {problems:?}", entry.title);
    }
}

#[test]
fn template_field_order_matches_the_paper() {
    // §3 lists: Title, Version, Type, Overview, Models, Consistency,
    // Consistency Restoration, Properties?, Variants?, Discussion,
    // References?, Authors, Reviewers?, Comments, Artefacts?.
    let entry = bx::examples::composers::composers_entry();
    let text = render_entry(&entry);
    let order = [
        "++ COMPOSERS",
        "||~ Version",
        "||~ Type",
        "+++ Overview",
        "+++ Models",
        "+++ Consistency\n",
        "+++ Consistency Restoration",
        "+++ Properties",
        "+++ Variants",
        "+++ Discussion",
        "+++ References",
        "+++ Authors",
    ];
    let mut pos = 0;
    for marker in order {
        let found = text[pos..]
            .find(marker)
            .unwrap_or_else(|| panic!("`{marker}` missing or out of order"));
        pos += found + marker.len();
    }
}

fn arb_claim() -> impl Strategy<Value = Claim> {
    (
        prop::sample::select(Property::ALL.to_vec()),
        prop::bool::ANY,
    )
        .prop_map(|(p, holds)| {
            if holds {
                Claim::holds(p)
            } else {
                Claim::fails(p)
            }
        })
}

fn arb_text() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9 ,.()-]{1,60}".prop_map(|s| {
        let t = s.trim().to_string();
        if t.is_empty() {
            "text".to_string()
        } else {
            t
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_entries_roundtrip_through_wiki(
        title in "[A-Z][A-Z0-9-]{1,14}",
        overview in arb_text(),
        models in arb_text(),
        consistency in arb_text(),
        fwd in arb_text(),
        bwd in arb_text(),
        discussion in arb_text(),
        author in "[A-Za-z][a-z]{1,10}",
        claims in prop::collection::vec(arb_claim(), 0..4),
        industrial in prop::bool::ANY,
    ) {
        let mut builder = ExampleEntry::builder(&title)
            .of_type(ExampleType::Precise)
            .overview(&overview)
            .models(&models)
            .consistency(&consistency)
            .restoration(&fwd, &bwd)
            .discussion(&discussion)
            .author(&author);
        if industrial {
            builder = builder.of_type(ExampleType::Industrial);
        }
        for c in claims {
            builder = builder.property(c);
        }
        let entry = builder.build_unchecked();
        prop_assume!(entry.validate().is_empty());
        let text = render_entry(&entry);
        let parsed = parse_entry("p", &text).expect("canonical text parses");
        prop_assert_eq!(parsed, entry);
    }
}
