//! E2 end to end: the §4 COMPOSERS entry flows through every part of the
//! system — repository, wiki, search, citation, manuscript, law check —
//! in one scenario.

use bx::core::index::SearchIndex;
use bx::core::wiki_bx::WikiBx;
use bx::core::{cite, EntryId, WikiSite};
use bx::examples::composers::{composer_set, composers_bx, pair_list};
use bx::examples::standard_repository;
use bx::theory::{check_all_laws, Bx, Samples};

#[test]
fn the_whole_story() {
    // 1. An author finds the entry by search.
    let repo = standard_repository();
    let index = SearchIndex::build(&repo.snapshot());
    let hits = index.query(&["nationality", "composer"]);
    assert!(!hits.is_empty());
    let id = hits[0].0.clone();
    assert_eq!(id, EntryId::from_title("COMPOSERS"));

    // 2. They cite it in their paper, pinned to the version they read.
    let entry = repo.latest(&id).unwrap();
    let citation = cite::cite(&repo, &id, Some(entry.version)).unwrap();
    assert!(citation.contains("COMPOSERS, version 0.1"));
    assert!(citation.contains("examples:composers"));

    // 3. They run the executable artefact on their own data.
    let b = composers_bx();
    let m = composer_set(&[
        ("Hildegard von Bingen", "1098-1179", "German"),
        ("Erik Satie", "1866-1925", "French"),
    ]);
    let n = pair_list(&[("Erik Satie", "French")]);
    let repaired = b.fwd(&m, &n);
    assert!(b.consistent(&m, &repaired));
    assert_eq!(repaired.len(), 2);
    assert_eq!(
        repaired[0],
        ("Erik Satie".to_string(), "French".to_string()),
        "kept in place"
    );
    assert_eq!(
        repaired[1].0, "Hildegard von Bingen",
        "appended alphabetically"
    );

    // 4. As reviewers, they machine-check the claimed properties.
    let samples = Samples::new(
        vec![(m.clone(), repaired), (m, n)],
        vec![composer_set(&[])],
        vec![pair_list(&[]), pair_list(&[("Erik Satie", "French")])],
    );
    let matrix = check_all_laws(&b, &samples);
    for verdict in matrix.verify_claims(&entry.properties) {
        if let bx::theory::laws::ClaimVerdict::Refuted { claim, evidence } = verdict {
            panic!("published claim {claim} refuted: {evidence}")
        }
    }

    // 5. The repository publishes to the wiki; the entry's page carries
    //    exactly the reviewed content.
    let bx = WikiBx::new();
    let snap = repo.snapshot();
    let site = bx.fwd(&snap, &WikiSite::new());
    let page = site.current(&id.page_name()).expect("page published");
    assert!(page.starts_with("++ COMPOSERS\n"));
    assert!(page.contains("* Not undoable"));
    assert!(page.contains("????-????"));

    // 6. The archival manuscript names the §4 authors.
    let manuscript = bx::core::manuscript::export_manuscript(
        &snap,
        bx::core::manuscript::ManuscriptOptions::default(),
    );
    for author in ["Perdita Stevens", "James McKinna", "James Cheney"] {
        assert!(
            manuscript.contains(author),
            "manuscript must credit {author}"
        );
    }
}

#[test]
fn the_paper_discussion_scenario_as_a_session() {
    // The §4 Discussion narrated as repository usage: a user deletes an
    // entry pair on the list side, syncs, regrets it, syncs back.
    let b = composers_bx();
    let m0 = composer_set(&[
        ("Jean Sibelius", "1865-1957", "Finnish"),
        ("Erik Satie", "1866-1925", "French"),
    ]);
    let n0 = b.fwd(&m0, &pair_list(&[]));
    assert!(b.consistent(&m0, &n0));

    // Delete Sibelius from n, enforce on m.
    let n1: Vec<_> = n0
        .iter()
        .filter(|(name, _)| name != "Jean Sibelius")
        .cloned()
        .collect();
    let m1 = b.bwd(&m0, &n1);
    assert_eq!(m1.len(), 1);

    // Regret: restore n, re-enforce on m — dates are gone.
    let m2 = b.bwd(&m1, &n0);
    assert_ne!(m2, m0);
    let sibelius = m2
        .iter()
        .find(|c| c.name == "Jean Sibelius")
        .expect("recreated");
    assert_eq!(sibelius.dates, bx::examples::composers::UNKNOWN_DATES);
    // Satie, untouched throughout, still has his dates.
    let satie = m2.iter().find(|c| c.name == "Erik Satie").expect("kept");
    assert_eq!(satie.dates, "1866-1925");
}
