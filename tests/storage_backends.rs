//! All three `StorageBackend` implementations round-trip the standard
//! repository — via checkpoint, via pure delta recording, and mixed —
//! and the auto-compaction policy keeps the event log O(1) generations
//! deep without changing the restored state.

use bx::core::storage::{
    AutoCompactingEventLog, CompactionPolicy, DurabilityMode, EventLogBackend, JsonFileBackend,
    MemoryBackend, StorageBackend,
};
use bx::core::{EntryId, Repository};
use bx::examples::standard_repository;
use bx_testkit::ops::unique_temp_dir;

#[test]
fn all_backends_roundtrip_the_standard_repository() {
    let repo = standard_repository();
    let events = repo.drain_events();
    let snapshot = repo.snapshot();
    assert!(
        events.len() > snapshot.records.len(),
        "the standard collection is built through the event-recording API"
    );

    let json_dir = unique_temp_dir("backends-json");
    let log_dir = unique_temp_dir("backends-log");
    let mut backends: Vec<Box<dyn StorageBackend>> = vec![
        Box::new(MemoryBackend::new()),
        Box::new(JsonFileBackend::new(json_dir.join("repo.json"))),
        Box::new(EventLogBackend::open(&log_dir).unwrap()),
    ];

    for backend in &mut backends {
        // Delta path: the standard collection's full construction history.
        backend.record(&events).unwrap();
        assert_eq!(
            backend.restore().unwrap(),
            snapshot,
            "{} restores the recorded deltas",
            backend.kind()
        );
        // Checkpoint path: compaction changes nothing observable.
        backend.checkpoint(&snapshot).unwrap();
        assert_eq!(
            backend.restore().unwrap(),
            snapshot,
            "{} restores its checkpoint",
            backend.kind()
        );
        // The restored state is a live repository again.
        let revived = Repository::from_snapshot(backend.restore().unwrap());
        assert_eq!(revived.len(), 13);
        revived
            .comment(
                "James Cheney",
                &EntryId::from_title("COMPOSERS"),
                "2014-05-01",
                "post-restore",
            )
            .unwrap();
    }

    std::fs::remove_dir_all(&json_dir).ok();
    std::fs::remove_dir_all(&log_dir).ok();
}

/// The compaction acceptance bar: M mutations, auto-checkpoint every
/// N < M events → O(1) generations on disk, restore replays ≤ N events,
/// and the restored state equals an uncompacted baseline fed the same
/// stream.
#[test]
fn auto_compaction_matches_the_uncompacted_baseline() {
    const M: usize = 120;
    const N: usize = 16;
    let auto_dir = unique_temp_dir("compact-auto");
    let base_dir = unique_temp_dir("compact-baseline");
    let mut compacting = AutoCompactingEventLog::open(
        &auto_dir,
        CompactionPolicy {
            checkpoint_every: N,
        },
    )
    .unwrap();
    let mut baseline = EventLogBackend::open(&base_dir).unwrap();

    let repo = standard_repository();
    let seed = repo.drain_events();
    compacting.record(&seed).unwrap();
    baseline.record(&seed).unwrap();

    let dates = EntryId::from_title("DATES");
    for i in 0..M {
        repo.comment("James Cheney", &dates, "2014-05-01", &format!("m{i}"))
            .unwrap();
        let events = repo.drain_events();
        compacting.record(&events).unwrap();
        baseline.record(&events).unwrap();
    }

    // O(1) generations: at most the current one (possibly none right
    // after a checkpoint), never the full history of superseded logs.
    assert!(compacting.inner().generation_files().unwrap().len() <= 1);
    // Restore replays at most N events.
    assert!(compacting.inner().pending_events().unwrap() <= N);
    assert!(compacting.events_since_checkpoint() <= N);
    // The baseline kept everything in one generation…
    assert_eq!(
        baseline.pending_events().unwrap(),
        seed.len() + M,
        "uncompacted baseline replays the full history"
    );
    // …and both restore the identical state, which is the live state.
    assert_eq!(compacting.restore().unwrap(), baseline.restore().unwrap());
    assert_eq!(compacting.restore().unwrap(), repo.snapshot());

    std::fs::remove_dir_all(&auto_dir).ok();
    std::fs::remove_dir_all(&base_dir).ok();
}

/// The two-phase durability API holds behind `Box<dyn StorageBackend>`
/// — the trait-object configuration the federation harness drives — for
/// every backend: `set_durability` + staged `record`s + one
/// `flush_durable` round-trips exactly like the fused default, and the
/// no-staging backends treat the new calls as no-ops.
#[test]
fn two_phase_durability_roundtrips_through_trait_objects() {
    let repo = standard_repository();
    let events = repo.drain_events();
    let snapshot = repo.snapshot();

    let json_dir = unique_temp_dir("two-phase-json");
    let log_dir = unique_temp_dir("two-phase-log");
    let auto_dir = unique_temp_dir("two-phase-auto");
    std::fs::create_dir_all(&json_dir).unwrap();
    let mut backends: Vec<Box<dyn StorageBackend>> = vec![
        Box::new(MemoryBackend::new()),
        Box::new(JsonFileBackend::new(json_dir.join("repo.json"))),
        Box::new(EventLogBackend::open(&log_dir).unwrap()),
        Box::new(
            AutoCompactingEventLog::open(
                &auto_dir,
                CompactionPolicy {
                    checkpoint_every: 16,
                },
            )
            .unwrap(),
        ),
    ];
    for backend in &mut backends {
        backend.set_durability(DurabilityMode::GroupCommit);
        let (a, b) = events.split_at(events.len() / 2);
        backend.record(a).unwrap();
        backend.record(b).unwrap();
        backend.flush_durable().unwrap();
        assert_eq!(
            backend.restore().unwrap(),
            snapshot,
            "{} diverged under two-phase durability",
            backend.kind()
        );
        // Nothing staged: the fsync point is idempotent.
        backend.flush_durable().unwrap();
    }
    drop(backends);
    // The file-backed states survive a fresh process.
    assert_eq!(
        EventLogBackend::open(&log_dir).unwrap().restore().unwrap(),
        snapshot
    );
    assert_eq!(
        EventLogBackend::open(&auto_dir).unwrap().restore().unwrap(),
        snapshot
    );
    std::fs::remove_dir_all(&json_dir).ok();
    std::fs::remove_dir_all(&log_dir).ok();
    std::fs::remove_dir_all(&auto_dir).ok();
}

#[test]
fn event_log_survives_process_style_reopen_between_batches() {
    let dir = unique_temp_dir("backends-reopen");
    let repo = standard_repository();

    // First "process": record the construction history and drop the backend.
    {
        let mut backend = EventLogBackend::open(&dir).unwrap();
        backend.record(&repo.drain_events()).unwrap();
    }
    // Second "process": recover, keep curating, record the new deltas.
    {
        let mut backend = EventLogBackend::open(&dir).unwrap();
        let recovered = Repository::from_snapshot(backend.restore().unwrap());
        assert_eq!(recovered.snapshot(), repo.snapshot());
        recovered
            .comment(
                "James Cheney",
                &EntryId::from_title("DATES"),
                "2014-05-02",
                "second process",
            )
            .unwrap();
        backend.record(&recovered.drain_events()).unwrap();
    }
    // Third "process": both generations of deltas are there.
    let backend = EventLogBackend::open(&dir).unwrap();
    let final_state = backend.restore().unwrap();
    let dates = &final_state.records[&EntryId::from_title("DATES")];
    assert!(dates
        .latest()
        .comments
        .iter()
        .any(|c| c.text == "second process"));
    std::fs::remove_dir_all(&dir).ok();
}
