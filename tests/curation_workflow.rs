//! E5: the three-level curation workflow of §5.1 over the real example
//! collection — permissions, versioning, traceability.

use bx::core::{EntryId, EntryStatus, Principal, RepoError, Role, Version};
use bx::examples::composers::composers_entry;
use bx::examples::standard_repository;

#[test]
fn anonymous_users_hit_the_registration_barrier() {
    let repo = standard_repository();
    let id = EntryId::from_title("COMPOSERS");
    assert!(matches!(
        repo.comment("drive-by", &id, "2014-01-01", "hi"),
        Err(RepoError::UnknownAccount(_))
    ));
    assert!(matches!(
        repo.contribute("drive-by", composers_entry()),
        Err(RepoError::UnknownAccount(_))
    ));
}

#[test]
fn members_comment_reviewers_approve_curators_govern() {
    let repo = standard_repository();
    let id = EntryId::from_title("FAMILIES2PERSONS");

    // A member can comment but not approve.
    repo.register(Principal::member("student"))
        .expect("fresh account");
    repo.comment("student", &id, "2014-03-28", "love this example")
        .expect("members comment");
    repo.request_review("Jeremy Gibbons", &id)
        .expect("members request review");
    assert!(matches!(
        repo.approve("student", &id),
        Err(RepoError::PermissionDenied { .. })
    ));

    // The entry's own author cannot approve it, even as a reviewer.
    assert!(matches!(
        repo.approve("Jeremy Gibbons", &id),
        Err(RepoError::PermissionDenied { .. })
    ));

    // A curator promotes the student; the student still cannot approve
    // until granted Reviewer.
    assert!(matches!(
        repo.grant_role("student", "student", Role::Reviewer),
        Err(RepoError::PermissionDenied { .. })
    ));
    repo.grant_role("Perdita Stevens", "student", Role::Reviewer)
        .expect("curators grant");
    let v = repo
        .approve("student", &id)
        .expect("independent reviewer approves");
    assert_eq!(v, Version::new(1, 0));
    assert_eq!(repo.status(&id).unwrap(), EntryStatus::Approved);

    // Traceability: the reviewer is named on the approved version.
    let approved = repo.latest(&id).unwrap();
    assert_eq!(approved.reviewers, vec!["student".to_string()]);
}

#[test]
fn old_references_keep_working_across_revisions() {
    let repo = standard_repository();
    let id = EntryId::from_title("COMPOSERS");

    let mut revised = composers_entry();
    revised.discussion.push_str(" Now with an extra remark.");
    let v2 = repo
        .revise("Perdita Stevens", &id, revised)
        .expect("author revises");
    assert_eq!(v2, Version::new(0, 2));

    // The version cited in a 2014 paper still resolves, verbatim.
    let old = repo
        .at_version(&id, Version::new(0, 1))
        .expect("old versions retained");
    assert_eq!(old.discussion, composers_entry().discussion);
    let citation = bx::core::cite::cite(&repo, &id, Some(Version::new(0, 1))).unwrap();
    assert!(citation.contains("version 0.1"));
}

#[test]
fn comments_guide_later_versions() {
    let repo = standard_repository();
    let id = EntryId::from_title("DATES");
    repo.comment("Jeremy Gibbons", &id, "2014-04-02", "what about ISO dates?")
        .unwrap();
    let mut revised = repo.latest(&id).unwrap();
    revised
        .discussion
        .push_str(" ISO variant under discussion.");
    repo.revise("James McKinna", &id, revised)
        .expect("author revises post-approval");
    let latest = repo.latest(&id).unwrap();
    assert_eq!(latest.version, Version::new(1, 1));
    assert_eq!(
        latest.comments.len(),
        1,
        "comment carried to the new version"
    );
    assert_eq!(
        latest.reviewers,
        vec!["Jeremy Gibbons".to_string()],
        "reviewer-of-record carried for traceability"
    );
    assert_eq!(
        repo.status(&id).unwrap(),
        EntryStatus::Provisional,
        "revisions re-open review"
    );
}

#[test]
fn rejected_reviews_return_to_provisional() {
    let repo = standard_repository();
    let id = EntryId::from_title("PERSONS-VIEW");
    repo.request_review("James Cheney", &id).unwrap();
    repo.request_changes("Jeremy Gibbons", &id)
        .expect("reviewers send back");
    assert_eq!(repo.status(&id).unwrap(), EntryStatus::Provisional);
    // And the cycle can repeat.
    repo.request_review("James Cheney", &id).unwrap();
    let v = repo.approve("Jeremy Gibbons", &id).unwrap();
    assert!(v.is_reviewed());
}
