//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment has no registry access, so the workspace vendors
//! the tiny slice of the parking_lot API it actually uses: `RwLock` and
//! `Mutex` whose lock methods return guards directly (no `LockResult`).
//! Poisoned locks are recovered transparently, matching parking_lot's
//! no-poisoning semantics closely enough for this workspace.

use std::sync::TryLockError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with parking_lot's panic-free locking API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// A mutex with parking_lot's panic-free locking API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
