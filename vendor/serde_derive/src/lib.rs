//! Offline stand-in for `serde_derive`, written against the bare
//! `proc_macro` API (the environment has no syn/quote). It supports the
//! shapes this workspace actually derives:
//!
//! * structs with named fields          → JSON object, declaration order
//! * one-field tuple structs (newtypes) → the inner value, transparent
//! * enums of unit variants             → the variant name as a string
//! * enums mixing unit/newtype variants → `"Unit"` or `{"Newtype": inner}`
//!
//! Generics, struct variants, and wider tuples are rejected with a
//! compile-time panic naming the offending item, so drift is loud.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl parses")
}

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    /// `struct S { a: A, b: B }` — field names in declaration order.
    NamedStruct(Vec<String>),
    /// `struct S(T);`
    Newtype,
    /// `enum E { Unit, Newtype(T) }` — (variant name, has payload).
    Enum(Vec<(String, bool)>),
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match ident_at(&tokens, i) {
        Some(k @ ("struct" | "enum")) => k.to_string(),
        _ => panic!("serde_derive: expected `struct` or `enum`"),
    };
    i += 1;

    let name = ident_at(&tokens, i)
        .unwrap_or_else(|| panic!("serde_derive: expected a name after `{kind}`"))
        .to_string();
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic type `{name}` is not supported by the offline stand-in");
    }

    let shape = match &tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            if kind == "struct" {
                Shape::NamedStruct(parse_named_fields(&body, &name))
            } else {
                Shape::Enum(parse_variants(&body, &name))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let arity = count_top_level_fields(&g.stream().into_iter().collect::<Vec<_>>());
            if kind != "struct" || arity != 1 {
                panic!("serde_derive: `{name}`: only 1-field tuple structs are supported (got {arity} fields)");
            }
            Shape::Newtype
        }
        other => panic!("serde_derive: `{name}`: unexpected token {other:?} after name"),
    };

    Item { name, shape }
}

fn ident_at(tokens: &[TokenTree], i: usize) -> Option<&str> {
    // Ident has no accessor for its text; round-trip through Display.
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => Some(Box::leak(id.to_string().into_boxed_str())),
        _ => None,
    }
}

/// Advance past `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parse `name: Type, ...` out of a brace body, tracking `<...>` depth so
/// commas inside generic arguments don't split fields.
fn parse_named_fields(body: &[TokenTree], owner: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        skip_attrs_and_vis(body, &mut i);
        if i >= body.len() {
            break;
        }
        let field = ident_at(body, i)
            .unwrap_or_else(|| {
                panic!(
                    "serde_derive: `{owner}`: expected field name, got {:?}",
                    body[i]
                )
            })
            .to_string();
        i += 1;
        match body.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: `{owner}.{field}`: expected `:`, got {other:?}"),
        }
        let mut angle_depth = 0i32;
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(field);
    }
    fields
}

/// Parse `Unit, Newtype(T), ...` out of an enum's brace body.
fn parse_variants(body: &[TokenTree], owner: &str) -> Vec<(String, bool)> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        skip_attrs_and_vis(body, &mut i);
        if i >= body.len() {
            break;
        }
        let variant = ident_at(body, i)
            .unwrap_or_else(|| {
                panic!(
                    "serde_derive: `{owner}`: expected variant name, got {:?}",
                    body[i]
                )
            })
            .to_string();
        i += 1;
        let mut has_payload = false;
        match body.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_fields(&g.stream().into_iter().collect::<Vec<_>>());
                if arity != 1 {
                    panic!("serde_derive: `{owner}::{variant}`: only newtype variants are supported (got {arity} fields)");
                }
                has_payload = true;
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                panic!("serde_derive: `{owner}::{variant}`: struct variants are not supported");
            }
            _ => {}
        }
        if matches!(body.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push((variant, has_payload));
    }
    variants
}

/// Count comma-separated fields at angle-bracket depth 0 (1 field has no
/// top-level comma; a trailing comma does not add a field).
fn count_top_level_fields(body: &[TokenTree]) -> usize {
    if body.is_empty() {
        return 0;
    }
    let mut angle_depth = 0i32;
    let mut fields = 1;
    for (idx, t) in body.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p)
                if p.as_char() == ',' && angle_depth == 0 && idx + 1 < body.len() =>
            {
                fields += 1;
            }
            _ => {}
        }
    }
    fields
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "__obj.push((\"{f}\".to_string(), ::serde::Serialize::serialize_value(&self.{f})));\n"
                ));
            }
            format!(
                "let mut __obj: ::std::vec::Vec<(::std::string::String, ::serde::value::Value)> = ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::value::Value::Object(__obj)"
            )
        }
        Shape::Newtype => "::serde::Serialize::serialize_value(&self.0)".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (v, has_payload) in variants {
                if *has_payload {
                    arms.push_str(&format!(
                        "{name}::{v}(__inner) => ::serde::value::Value::Object(::std::vec![(\"{v}\".to_string(), ::serde::Serialize::serialize_value(__inner))]),\n"
                    ));
                } else {
                    arms.push_str(&format!(
                        "{name}::{v} => ::serde::value::Value::Str(\"{v}\".to_string()),\n"
                    ));
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> ::serde::value::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!(
                    "{f}: ::serde::Deserialize::deserialize_value(::serde::value::field(__obj, \"{f}\"))\
                     .map_err(|e| ::serde::value::DeError::custom(::std::format!(\"{name}.{f}: {{e}}\")))?,\n"
                ));
            }
            format!(
                "let __obj = __v.as_object().ok_or_else(|| ::serde::value::DeError::mismatch(\"object for {name}\", __v))?;\n\
                 ::core::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Shape::Newtype => format!(
            "::core::result::Result::Ok({name}(::serde::Deserialize::deserialize_value(__v)?))"
        ),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for (v, has_payload) in variants {
                if *has_payload {
                    payload_arms.push_str(&format!(
                        "\"{v}\" => ::core::result::Result::Ok({name}::{v}(::serde::Deserialize::deserialize_value(__inner)?)),\n"
                    ));
                } else {
                    unit_arms.push_str(&format!(
                        "\"{v}\" => ::core::result::Result::Ok({name}::{v}),\n"
                    ));
                }
            }
            let payload_match = if payload_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "::serde::value::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                         let (__tag, __inner) = &__entries[0];\n\
                         match __tag.as_str() {{\n{payload_arms}\
                             __other => ::core::result::Result::Err(::serde::value::DeError::custom(::std::format!(\"unknown {name} variant {{__other:?}}\"))),\n\
                         }}\n\
                     }}\n"
                )
            };
            format!(
                "match __v {{\n\
                     ::serde::value::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                         __other => ::core::result::Result::Err(::serde::value::DeError::custom(::std::format!(\"unknown {name} variant {{__other:?}}\"))),\n\
                     }},\n\
                     {payload_match}\
                     __other => ::core::result::Result::Err(::serde::value::DeError::mismatch(\"{name} variant\", __other)),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_value(__v: &::serde::value::Value) -> ::core::result::Result<Self, ::serde::value::DeError> {{\n{body}\n}}\n\
         }}"
    )
}
