//! Offline stand-in for `serde_json`: prints and parses real JSON text
//! over the vendored serde's [`Value`] tree. `to_string` / `to_string_pretty`
//! / `from_str` match the signatures the workspace uses.

use std::fmt;

use serde::{DeError, Deserialize, Serialize, Value};

/// A JSON serialization or parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

pub fn to_string<T: ?Sized + Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: ?Sized + Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::deserialize_value(&value)?)
}

// ---------------------------------------------------------------- printing

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                out.push_str(&format!("{n:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Exactly four ASCII hex digits (from_str_radix alone would also accept
/// a leading sign, letting `\u+004` through).
fn parse_hex4(hex: &[u8]) -> Result<u32, Error> {
    if hex.len() != 4 || !hex.iter().all(u8::is_ascii_hexdigit) {
        return Err(Error::new("invalid \\u escape"));
    }
    let hex = std::str::from_utf8(hex).map_err(|_| Error::new("invalid \\u escape"))?;
    u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}, got {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}, got {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}, got {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(Error::new("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let mut code = parse_hex4(hex)?;
                            // Surrogate pair.
                            if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    let lo_hex = self
                                        .bytes
                                        .get(self.pos + 2..self.pos + 6)
                                        .ok_or_else(|| Error::new("truncated surrogate"))?;
                                    let lo = parse_hex4(lo_hex)?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(Error::new(
                                            "invalid low surrogate in \\u pair",
                                        ));
                                    }
                                    self.pos += 6;
                                    code = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                                } else {
                                    return Err(Error::new("lone surrogate"));
                                }
                            }
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => return Err(Error::new(format!("bad escape {:?}", other as char))),
                    }
                }
                _ => {
                    // Consume one UTF-8 character.
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error::new(e.to_string()))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|e| Error::new(e.to_string()))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| Error::new(e.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(parse_value("null").unwrap(), Value::Null);
        assert_eq!(parse_value(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse_value("42").unwrap(), Value::U64(42));
        assert_eq!(parse_value("-7").unwrap(), Value::I64(-7));
        assert_eq!(parse_value("1.5").unwrap(), Value::F64(1.5));
        assert_eq!(parse_value("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
    }

    #[test]
    fn round_trip_compound() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("Sibelius \"Jean\"".into())),
            (
                "years".into(),
                Value::Array(vec![Value::U64(1865), Value::U64(1957)]),
            ),
            ("active".into(), Value::Bool(false)),
            ("note".into(), Value::Null),
        ]);
        let compact = to_string(&v).unwrap();
        assert_eq!(parse_value(&compact).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse_value(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse_value("\"\\u00e9\"").unwrap(), Value::Str("é".into()));
        assert_eq!(
            parse_value("\"\\ud83d\\ude00\"").unwrap(),
            Value::Str("😀".into())
        );
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("1 2").is_err());
    }

    #[test]
    fn integer_keyed_maps_round_trip() {
        use std::collections::BTreeMap;
        let map: BTreeMap<u32, String> =
            [(1, "one".to_string()), (42, "answer".to_string())].into();
        let json = to_string(&map).unwrap();
        let back: BTreeMap<u32, String> = from_str(&json).unwrap();
        assert_eq!(back, map);

        let signed: BTreeMap<i64, bool> = [(-3, true), (7, false)].into();
        let json = to_string(&signed).unwrap();
        let back: BTreeMap<i64, bool> = from_str(&json).unwrap();
        assert_eq!(back, signed);
    }

    #[test]
    fn malformed_surrogates_error_instead_of_panicking() {
        // High surrogate followed by a non-surrogate escape.
        assert!(parse_value("\"\\ud800\\u0041\"").is_err());
        // High surrogate followed by another high surrogate.
        assert!(parse_value("\"\\ud800\\ud800\"").is_err());
        // High surrogate with no continuation at all.
        assert!(parse_value("\"\\ud800\"").is_err());
    }

    #[test]
    fn signed_hex_in_unicode_escape_is_rejected() {
        assert!(parse_value("\"\\u+004\"").is_err());
        assert!(parse_value("\"\\u-fff\"").is_err());
    }
}
