//! Deterministic RNG and run configuration for the stand-in proptest.

/// Per-test configuration; only `cases` is meaningful here.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A small xorshift64* generator, seeded deterministically (FNV-1a of the
/// test name) so failures reproduce run to run.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform draw from `[lo, hi]` (inclusive). `lo > hi` panics.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty sample range {lo}..={hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_u64() % (span + 1)
    }

    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams_repeat() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn bounded_draws_stay_in_range() {
        let mut rng = TestRng::deterministic("range");
        for _ in 0..1000 {
            let v = rng.u64_in(5, 9);
            assert!((5..=9).contains(&v));
        }
    }
}
