//! `proptest!` and the `prop_*` assertion macros.
//!
//! `proptest!` expands each `fn name(pat in strategy, ...) { body }` into a
//! plain test fn that samples `config.cases` inputs from a deterministic
//! RNG and runs the body per case. `prop_assert*` map to the std asserts
//! (a failure panics with the sampled inputs unshrunk); `prop_assume!`
//! discards the current case.

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut __case: u32 = 0;
            while __case < __config.cases {
                __case += 1;
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Discard the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn bindings_and_assume(n in 0u32..100, flag in crate::bool::ANY) {
            prop_assume!(n != 13);
            prop_assert!(n < 100);
            prop_assert_ne!(n, 13);
            let _ = flag;
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1u8), Just(2u8), (5u8..7).prop_map(|n| n)]) {
            prop_assert!(v == 1 || v == 2 || v == 5 || v == 6);
        }
    }

    #[test]
    fn generated_fns_run() {
        bindings_and_assume();
        oneof_and_just();
    }
}
