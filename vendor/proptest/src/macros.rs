//! `proptest!` and the `prop_*` assertion macros.
//!
//! `proptest!` expands each `fn name(pat in strategy, ...) { body }` into a
//! plain test fn that samples `config.cases` inputs from a deterministic
//! RNG and runs the body per case, wrapped in the [`crate::shrink`] case
//! runner: when the sampled input tuple implements
//! [`crate::shrink::Shrink`] (integers, strings, vectors, tuples
//! thereof), a failing case is greedily shrunk and reported at its local
//! minimum; other input types fail with the raw sample, as before.
//! `prop_assert*` map to the std asserts; `prop_assume!` discards the
//! current case (the body runs inside a closure, so the discard is a
//! `return`).

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            // Auto-ref specialization: `run_case` resolves to the
            // shrinking runner iff the sampled tuple implements Shrink
            // (+ Debug), and to the pass-through runner otherwise (one
            // of the two imports is necessarily unused per test).
            #[allow(unused_imports)]
            use $crate::shrink::{RunPlain as _, RunShrink as _};
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut __case: u32 = 0;
            while __case < __config.cases {
                __case += 1;
                let __inputs = ($($crate::strategy::Strategy::sample(&($strat), &mut __rng),)+);
                (&$crate::shrink::Case::new(__inputs)).run_case(&|($($pat,)+)| { $body });
            }
        }
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Discard the current case when its precondition does not hold. The
/// property body runs inside the case runner's closure, so the discard
/// returns from that closure (counting as a pass for the case — and for
/// any shrink candidate that violates the assumption).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn bindings_and_assume(n in 0u32..100, flag in crate::bool::ANY) {
            prop_assume!(n != 13);
            prop_assert!(n < 100);
            prop_assert_ne!(n, 13);
            let _ = flag;
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1u8), Just(2u8), (5u8..7).prop_map(|n| n)]) {
            prop_assert!(v == 1 || v == 2 || v == 5 || v == 6);
        }
    }

    #[test]
    fn generated_fns_run() {
        bindings_and_assume();
        oneof_and_just();
    }

    // No #[test] meta: a plain generated fn we can invoke (and catch)
    // by hand. Every sample from 500..2000 violates `n < 10`, so the
    // first case fails and must shrink to the exact boundary.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(1))]
        fn deliberately_failing_property(n in 500u32..2000) {
            prop_assert!(n < 10, "sampled {}", n);
        }
    }

    /// End-to-end through the macro: a seeded failing property reports a
    /// strictly smaller case than the raw sample (the ROADMAP shrinking
    /// item, at the `proptest!` surface).
    #[test]
    fn failing_properties_report_a_shrunk_case() {
        let payload = std::panic::catch_unwind(deliberately_failing_property)
            .expect_err("the property must fail");
        let message = payload
            .downcast_ref::<String>()
            .expect("the shrink runner panics with a formatted report");
        assert!(
            message.contains("minimal failing case"),
            "report: {message}"
        );
        assert!(
            message.contains("(10,)"),
            "any raw sample in 500..2000 shrinks to the boundary 10: {message}"
        );
    }
}
