//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! miniature property-testing harness with proptest's spelling: the
//! [`strategy::Strategy`] trait (`prop_map`, `prop_recursive`, `boxed`),
//! `Just`, `prop_oneof!`, regex-ish `&str` strategies (`"[a-z]{2,8}"`),
//! numeric ranges, tuples, `sample::select`, `collection::{vec, btree_set,
//! btree_map}`, `bool::ANY`, and the `proptest!`/`prop_assert!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//! * cases are sampled from a deterministic per-test RNG (seeded by test
//!   name), so runs are reproducible but not configurable via env vars;
//! * shrinking is **minimal** (see [`shrink`]): when the sampled input
//!   tuple implements [`shrink::Shrink`] (integers halve toward zero,
//!   strings/vectors truncate, tuples shrink componentwise), a failing
//!   case is greedily descended to a local minimum and reported; other
//!   input types panic with the raw sample;
//! * `prop_assume!` discards the case without tracking rejection quotas.

pub mod collection;
mod macros;
pub mod sample;
pub mod shrink;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// `prop::bool::ANY`, a strategy for both booleans.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Numeric strategies; ranges themselves implement `Strategy`, this module
/// exists so `prop::num::u32::ANY`-style paths resolve.
pub mod num {
    macro_rules! any_mod {
        ($($m:ident : $t:ty),*) => {$(
            pub mod $m {
                use crate::strategy::Strategy;
                use crate::test_runner::TestRng;

                #[derive(Clone, Copy, Debug)]
                pub struct Any;

                pub const ANY: Any = Any;

                impl Strategy for Any {
                    type Value = $t;
                    fn sample(&self, rng: &mut TestRng) -> $t {
                        rng.next_u64() as $t
                    }
                }
            }
        )*};
    }
    any_mod!(u8: u8, u16: u16, u32: u32, u64: u64, usize: usize, i8: i8, i16: i16, i32: i32, i64: i64, isize: isize);
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` module alias the real prelude exposes.
    pub mod prop {
        pub use crate::{bool, collection, num, sample, strategy, string};
    }
}
