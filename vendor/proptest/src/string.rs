//! Sampling strings from the tiny regex dialect the workspace's `&str`
//! strategies use: literal characters, `[...]` classes (ranges, literals,
//! leading `^` negation, trailing `-` literal), and the quantifiers
//! `{n}`, `{m,n}`, `?`, `*`, `+` (the unbounded ones capped at 8 repeats).

use crate::test_runner::TestRng;

enum Atom {
    Literal(char),
    /// Sorted, deduplicated alternatives.
    Class(Vec<char>),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let count = rng.usize_in(piece.min, piece.max);
        for _ in 0..count {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(choices) => {
                    out.push(choices[rng.usize_in(0, choices.len() - 1)]);
                }
            }
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"))
                    + i;
                let atom = parse_class(&chars[i + 1..close], pattern);
                i = close + 1;
                atom
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                i += 1;
                match c {
                    'd' => Atom::Class(('0'..='9').collect()),
                    'w' => Atom::Class(
                        ('a'..='z')
                            .chain('A'..='Z')
                            .chain('0'..='9')
                            .chain(['_'])
                            .collect(),
                    ),
                    's' => Atom::Class(vec![' ', '\t']),
                    other => Atom::Literal(other),
                }
            }
            '.' => {
                i += 1;
                Atom::Class((' '..='~').collect())
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Every arm above advanced `i` past the atom; next comes an
        // optional quantifier.
        let (min, max) = parse_quantifier(&chars, &mut i, pattern);
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
    match chars.get(*i) {
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        Some('*') => {
            *i += 1;
            (0, 8)
        }
        Some('+') => {
            *i += 1;
            (1, 8)
        }
        Some('{') => {
            let close = chars[*i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"))
                + *i;
            let body: String = chars[*i + 1..close].iter().collect();
            *i = close + 1;
            let parse_n = |s: &str| {
                s.trim()
                    .parse::<usize>()
                    .unwrap_or_else(|_| panic!("bad repeat count {s:?} in pattern {pattern:?}"))
            };
            match body.split_once(',') {
                None => {
                    let n = parse_n(&body);
                    (n, n)
                }
                Some((lo, hi)) => (parse_n(lo), parse_n(hi)),
            }
        }
        _ => (1, 1),
    }
}

fn parse_class(body: &[char], pattern: &str) -> Atom {
    let (negated, body) = match body.first() {
        Some('^') => (true, &body[1..]),
        _ => (false, body),
    };
    let mut set = std::collections::BTreeSet::new();
    let mut i = 0;
    while i < body.len() {
        let c = body[i];
        if c == '\\' {
            let next = *body
                .get(i + 1)
                .unwrap_or_else(|| panic!("dangling escape in class in {pattern:?}"));
            match next {
                'd' => set.extend('0'..='9'),
                'w' => {
                    set.extend('a'..='z');
                    set.extend('A'..='Z');
                    set.extend('0'..='9');
                    set.insert('_');
                }
                other => {
                    set.insert(other);
                }
            }
            i += 2;
        } else if i + 2 < body.len() && body[i + 1] == '-' {
            let hi = body[i + 2];
            assert!(c <= hi, "inverted class range {c}-{hi} in {pattern:?}");
            set.extend(c..=hi);
            i += 3;
        } else {
            // Includes '-' in trailing (or leading-before-nothing) position.
            set.insert(c);
            i += 1;
        }
    }
    let choices: Vec<char> = if negated {
        (' '..='~').filter(|c| !set.contains(c)).collect()
    } else {
        set.into_iter().collect()
    };
    assert!(
        !choices.is_empty(),
        "empty character class in pattern {pattern:?}"
    );
    Atom::Class(choices)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples(pattern: &str, n: usize) -> Vec<String> {
        let mut rng = TestRng::deterministic(pattern);
        (0..n).map(|_| sample_pattern(pattern, &mut rng)).collect()
    }

    #[test]
    fn class_with_counted_repeat() {
        for s in samples("[a-z]{2,8}", 200) {
            assert!((2..=8).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        for s in samples("[0-9+-]{0,8}", 200) {
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_digit() || c == '+' || c == '-'),
                "{s:?}"
            );
        }
    }

    #[test]
    fn mixed_class_covers_spaces_and_punctuation() {
        let all: String = samples("[a-zA-Z0-9 ,.()-]{1,60}", 300).concat();
        assert!(all.contains(' '));
        assert!(all
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || " ,.()-".contains(c)));
    }

    #[test]
    fn literals_and_quantifiers() {
        for s in samples("ab?c*d+", 100) {
            assert!(s.starts_with('a'), "{s:?}");
            assert!(s.contains('d'), "{s:?}");
        }
        assert_eq!(samples("xyz", 1), vec!["xyz".to_string()]);
    }

    #[test]
    fn dot_matches_printable_and_terminates() {
        for s in samples("a.c{2}", 100) {
            assert_eq!(s.chars().count(), 4, "{s:?}");
            assert!(s.starts_with('a'), "{s:?}");
            let dot = s.chars().nth(1).unwrap();
            assert!((' '..='~').contains(&dot), "{s:?}");
            assert!(s.ends_with("cc"), "{s:?}");
        }
    }

    #[test]
    fn negated_class() {
        for s in samples("[^a-z]{1,5}", 100) {
            assert!(s.chars().all(|c| !c.is_ascii_lowercase()), "{s:?}");
        }
    }
}
