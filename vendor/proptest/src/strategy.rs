//! The `Strategy` trait and core combinators for the stand-in proptest.
//!
//! A strategy is just a pure sampler: `sample(&self, rng) -> Value`. No
//! shrinking state is threaded through, which keeps every combinator a
//! few lines and is enough for the law-checking style of test this
//! workspace runs.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies: `depth` levels of `f` stacked over the leaf,
    /// with shallower levels more likely. `_desired_size` and
    /// `_expected_branch` are accepted for signature compatibility.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let mut current = self.boxed();
        for _ in 0..depth {
            // Weight the leaf higher so sampled sizes stay small.
            current = Union::weighted(vec![(2, current.clone()), (1, f(current).boxed())]).boxed();
        }
        current
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.sample(rng)))
    }
}

/// A clonable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Clone, F: Clone> Clone for Map<S, F> {
    fn clone(&self) -> Self {
        Map {
            inner: self.inner.clone(),
            f: self.f.clone(),
        }
    }
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?}: no accepted value in 1000 draws",
            self.reason
        );
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Choice between strategies of one value type (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total_weight: self.total_weight,
        }
    }
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        Union::weighted(arms.into_iter().map(|s| (1, s)).collect())
    }

    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! needs positive total weight");
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.u64_in(0, self.total_weight - 1);
        for (weight, arm) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return arm.sample(rng);
            }
            pick -= weight;
        }
        unreachable!("weights covered the draw range")
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy {self:?}");
                let lo = self.start as i128;
                let hi = self.end as i128 - 1;
                (lo + (rng.u64_in(0, (hi - lo) as u64) as i128)) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy {self:?}");
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                (lo + (rng.u64_in(0, (hi - lo) as u64) as i128)) as $t
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `&str` literals are regex-ish string strategies, as in real proptest.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        crate::string::sample_pattern(self, rng)
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_maps() {
        let mut rng = TestRng::deterministic("ranges");
        let s = (10u32..20).prop_map(|n| n * 2);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((20..40).contains(&v) && v % 2 == 0);
        }
    }

    #[test]
    fn unions_hit_every_arm() {
        let mut rng = TestRng::deterministic("union");
        let s = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(s.sample(&mut rng));
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn recursion_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf,
            Node(Box<Tree>),
        }
        let mut rng = TestRng::deterministic("rec");
        let s = Just(Tree::Leaf).prop_recursive(3, 16, 2, |inner| {
            inner.prop_map(|t| Tree::Node(Box::new(t)))
        });
        for _ in 0..50 {
            let mut depth = 0;
            let mut t = s.sample(&mut rng);
            while let Tree::Node(next) = t {
                t = *next;
                depth += 1;
            }
            assert!(depth <= 3);
        }
    }
}
