//! `prop::sample::select` — uniform choice from a fixed list.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Clone, Debug)]
pub struct Select<T: Clone> {
    items: Vec<T>,
}

pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "sample::select needs at least one item");
    Select { items }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.items[rng.usize_in(0, self.items.len() - 1)].clone()
    }
}
