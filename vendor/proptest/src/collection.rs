//! Collection strategies: `vec`, `btree_set`, `btree_map`.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive size window for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range {r:?}");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range {r:?}");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.usize_in(self.size.min, self.size.max);
        (0..len).map(|_| self.elem.sample(rng)).collect()
    }
}

pub struct BTreeSetStrategy<S> {
    elem: S,
    size: SizeRange,
}

pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        elem,
        size: size.into(),
    }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = rng.usize_in(self.size.min, self.size.max);
        let mut out = BTreeSet::new();
        // Duplicates shrink the set; retry a bounded number of times, as
        // real proptest does, and accept a smaller set if values run out.
        let mut attempts = 0;
        while out.len() < target && attempts < target * 10 + 16 {
            out.insert(self.elem.sample(rng));
            attempts += 1;
        }
        out
    }
}

pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn sample(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let target = rng.usize_in(self.size.min, self.size.max);
        let mut out = BTreeMap::new();
        let mut attempts = 0;
        while out.len() < target && attempts < target * 10 + 16 {
            out.insert(self.key.sample(rng), self.value.sample(rng));
            attempts += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_bounds() {
        let mut rng = TestRng::deterministic("vec");
        let s = vec(0u32..10, 2..5);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..=4).contains(&v.len()));
        }
    }

    #[test]
    fn set_respects_upper_bound() {
        let mut rng = TestRng::deterministic("set");
        let s = btree_set(0u32..100, 0..=6usize);
        for _ in 0..100 {
            assert!(s.sample(&mut rng).len() <= 6);
        }
    }

    #[test]
    fn map_pairs_keys_and_values() {
        let mut rng = TestRng::deterministic("map");
        let s = btree_map("[a-z]{1,4}", 0u32..5, 1..4);
        for _ in 0..50 {
            let m = s.sample(&mut rng);
            assert!(!m.is_empty() && m.len() <= 3);
            assert!(m.values().all(|&v| v < 5));
        }
    }
}
