//! Minimal shrinking for the stand-in proptest.
//!
//! Real proptest threads shrink state through every strategy; this
//! stand-in keeps strategies pure samplers and instead shrinks the
//! *sampled values* after a failure, via the [`Shrink`] trait: integers
//! halve toward zero, strings and vectors truncate (empty, first half,
//! all-but-last), tuples shrink one component at a time. The descent is
//! greedy — the first candidate that still fails becomes the new current
//! case — and bounded by [`MAX_SHRINK_RUNS`] re-executions, so a failing
//! property reports a (locally) minimal case instead of the raw sample.
//!
//! Types without a [`Shrink`] impl still work: the `proptest!` macro
//! dispatches through auto-ref specialization ([`RunShrink`] on
//! `Case<V>` beats [`RunPlain`] on `&Case<V>` exactly when
//! `V: Shrink + Debug`), and non-shrinkable inputs simply fail with the
//! original panic, as before. Vectors shrink by truncation only (their
//! elements are not individually shrunk) — deliberate minimalism.
//!
//! Caveat: candidates are derived from *values*, not from the strategy
//! that sampled them, so a shrunk case may lie outside the strategy's
//! range (`500u32..2000` can shrink to `10`). For pure properties that
//! only makes the report smaller; properties whose harness enforces a
//! cross-input invariant (e.g. "these two collections have equal
//! length") should bind such inputs as fixed-arity tuples rather than
//! collections, or the shrinker may adopt a harness panic as the
//! "failure" and report an out-of-contract case.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Upper bound on property re-executions spent shrinking one failure.
pub const MAX_SHRINK_RUNS: usize = 512;

/// A value that knows strictly "smaller" variants of itself. Candidates
/// are tried in order, so put the most aggressive first (the greedy
/// descent then converges in few runs). An empty vector means fully
/// shrunk.
pub trait Shrink: Sized + Clone {
    /// Strictly smaller candidate values, most aggressive first.
    fn shrink_candidates(&self) -> Vec<Self>;
}

macro_rules! shrink_unsigned {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink_candidates(&self) -> Vec<Self> {
                let mut out = Vec::new();
                if *self != 0 {
                    out.push(0);
                    let half = *self / 2;
                    if half != 0 {
                        out.push(half);
                    }
                    if *self - 1 != half {
                        out.push(*self - 1);
                    }
                }
                out
            }
        }
    )*};
}

shrink_unsigned!(u8, u16, u32, u64, u128, usize);

macro_rules! shrink_signed {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink_candidates(&self) -> Vec<Self> {
                let mut out = Vec::new();
                if *self != 0 {
                    out.push(0);
                    // `/ 2` and the ±1 step both move toward zero, so
                    // the descent terminates for negatives too.
                    let half = *self / 2;
                    if half != 0 {
                        out.push(half);
                    }
                    let step = *self - self.signum();
                    if step != half && step != 0 {
                        out.push(step);
                    }
                }
                out
            }
        }
    )*};
}

shrink_signed!(i8, i16, i32, i64, i128, isize);

impl Shrink for bool {
    fn shrink_candidates(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Shrink for String {
    fn shrink_candidates(&self) -> Vec<Self> {
        if self.is_empty() {
            return Vec::new();
        }
        let chars: Vec<char> = self.chars().collect();
        let mut out = vec![String::new()];
        if chars.len() >= 2 {
            out.push(chars[..chars.len() / 2].iter().collect());
            out.push(chars[..chars.len() - 1].iter().collect());
        }
        out
    }
}

/// Vectors shrink by truncation toward the failing minimum; elements are
/// not shrunk individually (minimalism — `T` need only be `Clone`).
impl<T: Clone> Shrink for Vec<T> {
    fn shrink_candidates(&self) -> Vec<Self> {
        if self.is_empty() {
            return Vec::new();
        }
        let mut out = vec![Vec::new()];
        if self.len() >= 2 {
            out.push(self[..self.len() / 2].to_vec());
            out.push(self[..self.len() - 1].to_vec());
        }
        out
    }
}

impl<T: Shrink> Shrink for Option<T> {
    fn shrink_candidates(&self) -> Vec<Self> {
        match self {
            None => Vec::new(),
            Some(v) => std::iter::once(None)
                .chain(v.shrink_candidates().into_iter().map(Some))
                .collect(),
        }
    }
}

macro_rules! shrink_tuples {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Shrink),+> Shrink for ($($name,)+) {
            fn shrink_candidates(&self) -> Vec<Self> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink_candidates() {
                        let mut next = self.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}

shrink_tuples! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// One sampled case on its way into the property body. The `proptest!`
/// macro wraps every sampled input tuple in a `Case` and calls
/// `run_case` with both [`RunShrink`] and [`RunPlain`] in scope; method
/// resolution picks the shrinking runner exactly when the tuple
/// implements [`Shrink`] (+ `Debug`, to report the minimum), and the
/// pass-through runner otherwise.
pub struct Case<V>(RefCell<Option<V>>);

impl<V> Case<V> {
    /// Wrap one sampled input.
    pub fn new(value: V) -> Case<V> {
        Case(RefCell::new(Some(value)))
    }

    fn take(&self) -> V {
        self.0
            .borrow_mut()
            .take()
            .expect("a case runs exactly once")
    }
}

/// Run `run(value)` catching a panic; `Some(message)` on failure.
fn panics<V>(run: &dyn Fn(V), value: V) -> Option<String> {
    match catch_unwind(AssertUnwindSafe(|| run(value))) {
        Ok(()) => None,
        Err(payload) => Some(
            payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic payload>".to_string()),
        ),
    }
}

/// The process's real panic hook, parked while ≥ 1 shrink loops run.
/// Reference-counted: only the transition 0→1 swaps the silent hook in
/// and only 1→0 swaps the original back, so concurrently shrinking
/// tests can never restore a stale hook and leave the process silenced
/// forever (the naive take/set/restore pair races exactly that way).
type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send + 'static>;
static QUIET_WINDOWS: std::sync::Mutex<(usize, Option<PanicHook>)> =
    std::sync::Mutex::new((0, None));

/// Suppress the default "thread panicked" chatter while the shrink loop
/// deliberately provokes panics. Global (process-wide) — a concurrently
/// failing test in another thread keeps its failure, but may lose its
/// message if it lands inside another test's (brief) shrink window; an
/// accepted stand-in trade-off.
fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    /// Closes the window on drop, so an unwind escaping `f` itself (a
    /// panicking `Clone` or `Shrink` impl — only the property body's
    /// panics are caught) cannot leave the process hook silenced.
    struct Window;
    impl Drop for Window {
        fn drop(&mut self) {
            let mut windows = QUIET_WINDOWS.lock().unwrap_or_else(|e| e.into_inner());
            windows.0 -= 1;
            if windows.0 == 0 {
                if let Some(previous) = windows.1.take() {
                    std::panic::set_hook(previous);
                }
            }
        }
    }
    {
        let mut windows = QUIET_WINDOWS.lock().unwrap_or_else(|e| e.into_inner());
        if windows.0 == 0 {
            windows.1 = Some(std::panic::take_hook());
            std::panic::set_hook(Box::new(|_| {}));
        }
        windows.0 += 1;
    }
    let _window = Window;
    f()
}

/// The shrinking case runner, selected when the input tuple implements
/// [`Shrink`] and `Debug`.
pub trait RunShrink<V> {
    /// Run the property; on failure, shrink greedily and panic with the
    /// minimal failing case.
    fn run_case(&self, run: &dyn Fn(V));
}

impl<V: Shrink + std::fmt::Debug> RunShrink<V> for Case<V> {
    fn run_case(&self, run: &dyn Fn(V)) {
        let value = self.take();
        // The original failure prints through the normal panic hook, so
        // the raw assertion message is not lost.
        let Some(first_panic) = panics(run, value.clone()) else {
            return;
        };
        let (minimal, last_panic, runs) = with_quiet_panics(|| {
            let mut minimal = value;
            let mut last_panic = first_panic;
            let mut runs = 0usize;
            'descend: loop {
                for candidate in minimal.shrink_candidates() {
                    if runs >= MAX_SHRINK_RUNS {
                        break 'descend;
                    }
                    runs += 1;
                    if let Some(message) = panics(run, candidate.clone()) {
                        minimal = candidate;
                        last_panic = message;
                        continue 'descend;
                    }
                }
                break; // every candidate passed: locally minimal
            }
            (minimal, last_panic, runs)
        });
        panic!(
            "proptest: property failed; minimal failing case after {runs} shrink run(s): \
             {minimal:?}\n  case panic: {last_panic}"
        );
    }
}

/// The pass-through case runner for inputs with no [`Shrink`] impl: the
/// body runs once and its panic propagates unshrunk (the pre-shrinking
/// behavior).
pub trait RunPlain<V> {
    /// Run the property once, without shrinking.
    fn run_case(&self, run: &dyn Fn(V));
}

impl<V> RunPlain<V> for &Case<V> {
    fn run_case(&self, run: &dyn Fn(V)) {
        run(self.take());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_of<V: 'static>(case: Case<V>, run: impl Fn(V) + 'static) -> String
    where
        Case<V>: RunShrink<V>,
    {
        let run: Box<dyn Fn(V)> = Box::new(run);
        let payload = catch_unwind(AssertUnwindSafe(|| case.run_case(&run)))
            .expect_err("the seeded property must fail");
        payload
            .downcast_ref::<String>()
            .cloned()
            .expect("shrink runner panics with a formatted report")
    }

    #[test]
    fn integer_candidates_move_toward_zero() {
        assert_eq!(1000u32.shrink_candidates(), vec![0, 500, 999]);
        assert_eq!(1u32.shrink_candidates(), vec![0]);
        assert!(0u32.shrink_candidates().is_empty());
        assert_eq!((-8i32).shrink_candidates(), vec![0, -4, -7]);
    }

    #[test]
    fn string_and_vec_truncate() {
        assert_eq!(
            "abcd".to_string().shrink_candidates(),
            vec!["".to_string(), "ab".to_string(), "abc".to_string()]
        );
        assert_eq!(
            vec![1, 2, 3].shrink_candidates(),
            vec![vec![], vec![1], vec![1, 2]]
        );
        assert!(Vec::<u8>::new().shrink_candidates().is_empty());
    }

    /// The ROADMAP regression: a seeded failing property must report a
    /// strictly smaller case than the raw sample — here the raw sample is
    /// 1000 and the true boundary is 10, which greedy halving + stepping
    /// finds exactly.
    #[test]
    fn seeded_failure_reports_a_smaller_case_than_the_raw_sample() {
        let report = report_of(Case::new((1000u32,)), |(n,)| {
            assert!(n < 10, "sampled {n}");
        });
        assert!(report.contains("minimal failing case"), "report: {report}");
        assert!(
            report.contains("(10,)"),
            "1000 shrinks to the exact boundary 10: {report}"
        );
        assert!(
            report.contains("sampled 10"),
            "the minimal case's own panic message is kept: {report}"
        );
    }

    #[test]
    fn vectors_shrink_to_the_failing_length() {
        let report = report_of(Case::new((vec![7u8; 6],)), |(v,): (Vec<u8>,)| {
            assert!(v.len() < 2, "length {}", v.len());
        });
        assert!(
            report.contains("[7, 7]"),
            "6 elements shrink to 2: {report}"
        );
    }

    #[test]
    fn tuples_shrink_componentwise() {
        // Only the first component matters; the second must shrink to 0.
        let report = report_of(Case::new((40u32, 9000u64)), |(a, _b)| {
            assert!(a < 7, "a was {a}");
        });
        assert!(report.contains("(7, 0)"), "report: {report}");
    }

    #[test]
    fn passing_cases_run_without_shrinking() {
        let case = Case::new((3u32,));
        case.run_case(&|(n,)| assert!(n < 10));
    }

    #[test]
    fn plain_runner_propagates_the_original_panic() {
        // A value type with no Shrink impl takes the pass-through path
        // via auto-ref; the original message survives untouched.
        #[derive(Debug)]
        struct Opaque;
        let case = Case::new((Opaque,));
        let payload = catch_unwind(AssertUnwindSafe(|| {
            (&case).run_case(&|(_o,): (Opaque,)| panic!("raw message"));
        }))
        .expect_err("fails");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"raw message"));
    }
}
