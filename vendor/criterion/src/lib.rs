//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of criterion's API its benches use: `Criterion`,
//! `bench_function`, `benchmark_group` (+ `bench_with_input`, `throughput`,
//! `sample_size`, `finish`), `BenchmarkId`, `Throughput`, `black_box`,
//! `Bencher::iter` / `iter_with_large_drop`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! ## Measurement model (the supported slice)
//!
//! Each benchmark runs `max(3, sample_size / 10)` untimed warm-up
//! iterations (caches, allocator, branch predictors settle), then times
//! `sample_size` iterations *individually*, sorts the samples, trims the
//! top and bottom 20% (outliers: scheduler preemptions, page faults,
//! one-off allocations), and reports the **median of the remaining middle
//! 60%**. This is stable enough to compare two runs of the same bench —
//! the bar the `concurrent` group needs — but it is still not real
//! criterion: no bootstrapped confidence intervals, no regression
//! detection, no per-iteration batching. Per-sample timing costs one
//! `Instant::now` pair per iteration, so readings under ~100 ns are
//! dominated by timer overhead and should be treated as upper bounds.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP_ITERS_MIN: u64 = 3;
const DEFAULT_SAMPLES: u64 = 30;
/// Numerator over 10 of samples discarded at *each* end before taking
/// the median (2/10 = 20% per side, keeping the middle 60%).
const TRIM_PER_SIDE_TENTHS: usize = 2;

/// Entry point handed to each bench target.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLES,
        }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(name, None);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }
}

/// A named benchmark group with shared settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(
            &format!("{}/{}", self.name, id.render()),
            self.throughput.as_ref(),
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        bencher.report(
            &format!("{}/{}", self.name, id.render()),
            self.throughput.as_ref(),
        );
        self
    }

    pub fn finish(self) {}
}

/// Runs the closure under test and records a trimmed-median
/// per-iteration time (see the module docs for the measurement model).
pub struct Bencher {
    samples: u64,
    median: Option<Duration>,
}

impl Bencher {
    fn new(samples: u64) -> Self {
        Bencher {
            samples,
            median: None,
        }
    }

    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let warmup = WARMUP_ITERS_MIN.max(self.samples / 10);
        for _ in 0..warmup {
            black_box(f());
        }
        let count = self.samples.max(1) as usize;
        let mut times: Vec<Duration> = Vec::with_capacity(count);
        for _ in 0..count {
            let start = Instant::now();
            black_box(f());
            times.push(start.elapsed());
        }
        self.median = Some(trimmed_median(times));
    }

    /// Like [`Bencher::iter`], but the routine's return value is dropped
    /// *outside* the timed window (real criterion's `iter_with_large_drop`).
    /// `iter` drops each result at the end of its timed statement, so a
    /// routine returning a large structure pays its deallocation inside
    /// every sample — a constant that says nothing about the routine and
    /// drowns out real differences between variants that build the same
    /// result. Only one result is kept alive at a time: each sample
    /// deallocates the previous one before its timer starts.
    pub fn iter_with_large_drop<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let warmup = WARMUP_ITERS_MIN.max(self.samples / 10);
        for _ in 0..warmup {
            black_box(f());
        }
        let count = self.samples.max(1) as usize;
        let mut times: Vec<Duration> = Vec::with_capacity(count);
        let mut held: Option<R> = None;
        for _ in 0..count {
            drop(held.take());
            let start = Instant::now();
            held = Some(black_box(f()));
            times.push(start.elapsed());
        }
        drop(held);
        self.median = Some(trimmed_median(times));
    }

    fn report(&self, name: &str, throughput: Option<&Throughput>) {
        let Some(median) = self.median else {
            println!("{name:<50} (no measurement)");
            return;
        };
        let mut line = format!("{name:<50} {:>12}", format_duration(median));
        if let Some(tp) = throughput {
            let elems = match tp {
                Throughput::Elements(n) | Throughput::Bytes(n) => *n,
            };
            if median.as_nanos() > 0 && elems > 0 {
                let per_sec = elems as f64 / median.as_secs_f64();
                let unit = match tp {
                    Throughput::Elements(_) => "elem/s",
                    Throughput::Bytes(_) => "B/s",
                };
                let _ = write!(line, "  {per_sec:>14.0} {unit}");
            }
        }
        println!("{line}");
    }
}

/// Sort, trim 20% per side, take the median of the middle 60%. For tiny
/// sample counts the trim rounds to zero and this degenerates to a plain
/// median.
fn trimmed_median(mut times: Vec<Duration>) -> Duration {
    times.sort_unstable();
    let trim = times.len() * TRIM_PER_SIDE_TENTHS / 10;
    let kept = &times[trim..times.len() - trim];
    kept[kept.len() / 2]
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::new(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: Some(name.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function: Some(name),
            parameter: None,
        }
    }
}

/// Work-size annotation used for throughput lines.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(5);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, target);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn trimmed_median_shrugs_off_outliers() {
        // One iteration in ten stalls hard; the 20%-per-side trim must
        // discard the stalls so the reported figure tracks the fast path.
        let mut bencher = Bencher::new(20);
        let mut i = 0u32;
        bencher.iter(|| {
            i += 1;
            if i.is_multiple_of(10) {
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        let median = bencher.median.expect("iter measures");
        assert!(
            median < Duration::from_millis(1),
            "stalls leaked into the median: {median:?}"
        );
    }

    #[test]
    fn tiny_sample_counts_degenerate_to_plain_median() {
        for n in 1..=4 {
            let mut bencher = Bencher::new(n);
            bencher.iter(|| black_box(17u64 * 23));
            assert!(bencher.median.is_some(), "sample_size {n} still measures");
        }
    }
}
