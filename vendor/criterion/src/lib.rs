//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of criterion's API its benches use: `Criterion`,
//! `bench_function`, `benchmark_group` (+ `bench_with_input`, `throughput`,
//! `sample_size`, `finish`), `BenchmarkId`, `Throughput`, `black_box`, and
//! the `criterion_group!` / `criterion_main!` macros. Measurement is a
//! simple mean over a fixed number of timed iterations after a short
//! warm-up — enough to compare orders of magnitude locally, not a
//! statistical benchmark.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 3;
const DEFAULT_SAMPLES: u64 = 30;

/// Entry point handed to each bench target.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLES,
        }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(name, None);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }
}

/// A named benchmark group with shared settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(
            &format!("{}/{}", self.name, id.render()),
            self.throughput.as_ref(),
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        bencher.report(
            &format!("{}/{}", self.name, id.render()),
            self.throughput.as_ref(),
        );
        self
    }

    pub fn finish(self) {}
}

/// Runs the closure under test and records a mean per-iteration time.
pub struct Bencher {
    samples: u64,
    mean: Option<Duration>,
}

impl Bencher {
    fn new(samples: u64) -> Self {
        Bencher {
            samples,
            mean: None,
        }
    }

    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.mean = Some(start.elapsed() / self.samples.max(1) as u32);
    }

    fn report(&self, name: &str, throughput: Option<&Throughput>) {
        let Some(mean) = self.mean else {
            println!("{name:<50} (no measurement)");
            return;
        };
        let mut line = format!("{name:<50} {:>12}", format_duration(mean));
        if let Some(tp) = throughput {
            let elems = match tp {
                Throughput::Elements(n) | Throughput::Bytes(n) => *n,
            };
            if mean.as_nanos() > 0 && elems > 0 {
                let per_sec = elems as f64 / mean.as_secs_f64();
                let unit = match tp {
                    Throughput::Elements(_) => "elem/s",
                    Throughput::Bytes(_) => "B/s",
                };
                let _ = write!(line, "  {per_sec:>14.0} {unit}");
            }
        }
        println!("{line}");
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::new(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: Some(name.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function: Some(name),
            parameter: None,
        }
    }
}

/// Work-size annotation used for throughput lines.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(5);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, target);

    #[test]
    fn harness_runs() {
        benches();
    }
}
