//! The owned value tree the stand-in serde serializes through, plus the
//! deserialization error type shared with the derive output.

use std::fmt;

/// A JSON-shaped value tree. Object entries preserve insertion order so
/// serialized output is deterministic and mirrors field declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short description of the value's shape, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Look up a field in an object's entry list; absent fields read as
/// `Null`, which lets `Option` fields tolerate missing keys the way
/// serde's `missing_field` fallback does.
pub fn field<'a>(entries: &'a [(String, Value)], name: &str) -> &'a Value {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&Value::Null)
}

/// Deserialization failure: a message describing the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    pub fn custom(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    pub fn mismatch(expected: &str, got: &Value) -> Self {
        DeError {
            message: format!("expected {expected}, got {}", got.kind()),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}
