//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! miniature serde: serialization goes through an owned [`value::Value`]
//! tree rather than serde's visitor machinery. The public surface the
//! workspace relies on is preserved: `serde::{Serialize, Deserialize}`
//! import both the traits and the derive macros, and the companion
//! `serde_json` stand-in round-trips any `Value` through real JSON text.
//!
//! Supported derives (see `serde_derive`): structs with named fields,
//! one-field tuple structs (newtypes), enums whose variants are unit or
//! newtype. That covers every derived type in this workspace.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{DeError, Value};

/// Types that can render themselves as a [`Value`] tree.
pub trait Serialize {
    fn serialize_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn deserialize_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: ?Sized + Serialize> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: ?Sized + Serialize> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        T::deserialize_value(v).map(Box::new)
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::mismatch("bool", other)),
        }
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                #[allow(unused_comparisons)]
                if *self < 0 {
                    Value::I64(*self as i64)
                } else {
                    Value::U64(*self as u64)
                }
            }
        }

        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let out = match v {
                    Value::U64(n) => <$t>::try_from(*n).ok(),
                    Value::I64(n) => <$t>::try_from(*n).ok(),
                    _ => None,
                };
                out.ok_or_else(|| DeError::mismatch(stringify!($t), v))
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(n) => Ok(*n),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(DeError::mismatch("f64", other)),
        }
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        f64::deserialize_value(v).map(|n| n as f32)
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::mismatch("char", other)),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::mismatch("string", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.serialize_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(DeError::mismatch("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(DeError::mismatch("array", other)),
        }
    }
}

/// Map keys serialize through [`Value::Str`]; anything whose `Value` form
/// is not a string (or a sole-stringlike newtype) cannot key a JSON map.
fn key_to_string<K: Serialize>(key: &K) -> Result<String, DeError> {
    match key.serialize_value() {
        Value::Str(s) => Ok(s),
        Value::U64(n) => Ok(n.to_string()),
        Value::I64(n) => Ok(n.to_string()),
        other => Err(DeError::mismatch("string-like map key", &other)),
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    let key =
                        key_to_string(k).unwrap_or_else(|e| panic!("unsupported map key: {e}"));
                    (key, v.serialize_value())
                })
                .collect(),
        )
    }
}

/// Rebuild a map key from its object-key string. String-shaped keys
/// deserialize directly; integer keys (which [`key_to_string`] stringified
/// on the way out) are retried through their numeric `Value` forms so
/// integer-keyed maps round-trip.
fn key_from_string<K: Deserialize>(k: &str) -> Result<K, DeError> {
    match K::deserialize_value(&Value::Str(k.to_string())) {
        Ok(key) => Ok(key),
        Err(as_str_err) => {
            if let Ok(n) = k.parse::<u64>() {
                if let Ok(key) = K::deserialize_value(&Value::U64(n)) {
                    return Ok(key);
                }
            }
            if let Ok(n) = k.parse::<i64>() {
                if let Ok(key) = K::deserialize_value(&Value::I64(n)) {
                    return Ok(key);
                }
            }
            Err(as_str_err)
        }
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::deserialize_value(v)?)))
                .collect(),
            other => Err(DeError::mismatch("object", other)),
        }
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
