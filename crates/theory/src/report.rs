//! Structured results of law checking: laws, outcomes, counterexamples.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A machine-checkable law of a state-based bx.
///
/// Each law is directional; properties in the repository vocabulary
/// ([`crate::Property`]) typically bundle a forward and a backward law.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Law {
    /// `∀ m, n. consistent(m, fwd(m, n))`
    CorrectFwd,
    /// `∀ m, n. consistent(bwd(m, n), n)`
    CorrectBwd,
    /// `∀ m, n. consistent(m, n) ⇒ fwd(m, n) = n`
    HippocraticFwd,
    /// `∀ m, n. consistent(m, n) ⇒ bwd(m, n) = m`
    HippocraticBwd,
    /// `∀ consistent (m, n), ∀ m'. fwd(m, fwd(m', n)) = n`
    ///
    /// Propagating a change of `m` to `m'` and then reverting it restores
    /// the original `n`.
    UndoableFwd,
    /// `∀ consistent (m, n), ∀ n'. bwd(bwd(m, n'), n)`-side analogue:
    /// `bwd` after an excursion through `n'` and back restores `m`.
    UndoableBwd,
    /// `∀ m₁, m₂, n. fwd(m₂, fwd(m₁, n)) = fwd(m₂, n)` — the state-based
    /// reading of PutPut.
    HistoryIgnorantFwd,
    /// `∀ n₁, n₂, m. bwd(bwd(m, n₁), n₂)`-side analogue of PutPut.
    HistoryIgnorantBwd,
    /// `∀ m, n. bwd(m, fwd(m, n)) = m` — forward restoration loses nothing
    /// about `m`.
    BijectiveFwd,
    /// `∀ m, n. fwd(bwd(m, n), n) = n` — backward restoration loses nothing
    /// about `n`.
    BijectiveBwd,
}

impl Law {
    /// All laws in display order.
    pub const ALL: [Law; 10] = [
        Law::CorrectFwd,
        Law::CorrectBwd,
        Law::HippocraticFwd,
        Law::HippocraticBwd,
        Law::UndoableFwd,
        Law::UndoableBwd,
        Law::HistoryIgnorantFwd,
        Law::HistoryIgnorantBwd,
        Law::BijectiveFwd,
        Law::BijectiveBwd,
    ];

    /// The formal statement of the law, for reports and documentation.
    pub fn statement(self) -> &'static str {
        match self {
            Law::CorrectFwd => "for all m, n: consistent(m, fwd(m, n))",
            Law::CorrectBwd => "for all m, n: consistent(bwd(m, n), n)",
            Law::HippocraticFwd => "for all m, n: consistent(m, n) implies fwd(m, n) = n",
            Law::HippocraticBwd => "for all m, n: consistent(m, n) implies bwd(m, n) = m",
            Law::UndoableFwd => "for all consistent (m, n) and any m': fwd(m, fwd(m', n)) = n",
            Law::UndoableBwd => "for all consistent (m, n) and any n': bwd(bwd(m, n'), n) = m",
            Law::HistoryIgnorantFwd => "for all m1, m2, n: fwd(m2, fwd(m1, n)) = fwd(m2, n)",
            Law::HistoryIgnorantBwd => "for all n1, n2, m: bwd(bwd(m, n1), n2) = bwd(m, n2)",
            Law::BijectiveFwd => "for all m, n: bwd(m, fwd(m, n)) = m",
            Law::BijectiveBwd => "for all m, n: fwd(bwd(m, n), n) = n",
        }
    }
}

impl fmt::Display for Law {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Law::CorrectFwd => "CorrectFwd",
            Law::CorrectBwd => "CorrectBwd",
            Law::HippocraticFwd => "HippocraticFwd",
            Law::HippocraticBwd => "HippocraticBwd",
            Law::UndoableFwd => "UndoableFwd",
            Law::UndoableBwd => "UndoableBwd",
            Law::HistoryIgnorantFwd => "HistoryIgnorantFwd",
            Law::HistoryIgnorantBwd => "HistoryIgnorantBwd",
            Law::BijectiveFwd => "BijectiveFwd",
            Law::BijectiveBwd => "BijectiveBwd",
        };
        write!(f, "{s}")
    }
}

/// A human-readable witness that a law failed on specific models.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counterexample {
    /// Which sampled case produced the violation (index into the sample
    /// enumeration, for reproducibility).
    pub case_index: usize,
    /// Rendered description of the offending models and what went wrong.
    pub description: String,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "case #{}: {}", self.case_index, self.description)
    }
}

/// The outcome of checking one law against a sample set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Outcome {
    /// Every sampled case satisfied the law.
    Holds,
    /// At least one sampled case violated the law.
    Violated(Counterexample),
    /// No sampled case exercised the law's precondition (e.g. no consistent
    /// pairs for a hippocraticness check); the check says nothing.
    Vacuous,
}

impl Outcome {
    /// True when the outcome is [`Outcome::Holds`].
    pub fn holds(&self) -> bool {
        matches!(self, Outcome::Holds)
    }
}

/// The report produced by checking one [`Law`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LawReport {
    /// The bx that was checked.
    pub bx_name: String,
    /// Which law was checked.
    pub law: Law,
    /// How many cases actually exercised the law (satisfied any
    /// precondition).
    pub cases_exercised: usize,
    /// Total sampled cases considered.
    pub cases_total: usize,
    /// The verdict.
    pub outcome: Outcome,
}

impl LawReport {
    /// True when the law held on every exercised case (and at least one
    /// case was exercised).
    pub fn holds(&self) -> bool {
        self.outcome.holds() && self.cases_exercised > 0
    }

    /// True when the law was violated.
    pub fn violated(&self) -> bool {
        matches!(self.outcome, Outcome::Violated(_))
    }
}

impl fmt::Display for LawReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} ({}/{} cases): ",
            self.bx_name, self.law, self.cases_exercised, self.cases_total
        )?;
        match &self.outcome {
            Outcome::Holds => write!(f, "holds"),
            Outcome::Violated(cx) => write!(f, "VIOLATED — {cx}"),
            Outcome::Vacuous => write!(f, "vacuous (no case exercised the precondition)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_law_has_a_statement() {
        for law in Law::ALL {
            assert!(!law.statement().is_empty());
            assert!(!law.to_string().is_empty());
        }
    }

    #[test]
    fn law_display_is_unique() {
        let mut names: Vec<String> = Law::ALL.iter().map(|l| l.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), Law::ALL.len());
    }

    #[test]
    fn report_holds_requires_exercised_cases() {
        let vacuous_hold = LawReport {
            bx_name: "b".into(),
            law: Law::CorrectFwd,
            cases_exercised: 0,
            cases_total: 10,
            outcome: Outcome::Holds,
        };
        assert!(!vacuous_hold.holds());

        let real_hold = LawReport {
            cases_exercised: 10,
            ..vacuous_hold.clone()
        };
        assert!(real_hold.holds());
    }

    #[test]
    fn report_display_shows_counterexample() {
        let r = LawReport {
            bx_name: "composers".into(),
            law: Law::UndoableBwd,
            cases_exercised: 3,
            cases_total: 5,
            outcome: Outcome::Violated(Counterexample {
                case_index: 2,
                description: "dates were lost".into(),
            }),
        };
        let s = r.to_string();
        assert!(s.contains("VIOLATED"));
        assert!(s.contains("dates were lost"));
        assert!(s.contains("UndoableBwd"));
    }

    #[test]
    fn outcome_holds_predicate() {
        assert!(Outcome::Holds.holds());
        assert!(!Outcome::Vacuous.holds());
        assert!(!Outcome::Violated(Counterexample {
            case_index: 0,
            description: String::new()
        })
        .holds());
    }
}
