//! Error type for the theory layer.

use std::fmt;

/// Errors arising while manipulating bx descriptions or checking laws.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TheoryError {
    /// A law was asked about a property that is declared-only and cannot be
    /// checked mechanically (e.g. *simply matching*).
    Uncheckable(String),
    /// A law check was invoked with an empty sample set, which would
    /// vacuously hold and mislead.
    EmptySamples { law: String },
    /// A property name could not be parsed.
    UnknownProperty(String),
}

impl fmt::Display for TheoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TheoryError::Uncheckable(what) => {
                write!(
                    f,
                    "property `{what}` is declared-only and cannot be machine-checked"
                )
            }
            TheoryError::EmptySamples { law } => {
                write!(f, "law `{law}` was checked against an empty sample set")
            }
            TheoryError::UnknownProperty(name) => write!(f, "unknown property name `{name}`"),
        }
    }
}

impl std::error::Error for TheoryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uncheckable() {
        let e = TheoryError::Uncheckable("simply matching".into());
        assert!(e.to_string().contains("simply matching"));
    }

    #[test]
    fn display_empty_samples() {
        let e = TheoryError::EmptySamples {
            law: "CorrectFwd".into(),
        };
        assert!(e.to_string().contains("CorrectFwd"));
    }

    #[test]
    fn display_unknown_property() {
        let e = TheoryError::UnknownProperty("frobnicating".into());
        assert!(e.to_string().contains("frobnicating"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(TheoryError::UnknownProperty("x".into()));
        assert!(!e.to_string().is_empty());
    }
}
