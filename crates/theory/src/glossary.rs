//! The glossary of bx property terms.
//!
//! The paper's template says property values "will link to a separate
//! glossary of terms such as 'hippocraticness'". This module *is* that
//! glossary: one entry per [`Property`], with a definition, the formal laws
//! that witness it, and pointers into the literature.

use crate::property::Property;
use crate::report::Law;

/// A glossary entry: the community definition of one property term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlossaryEntry {
    /// The property being defined.
    pub property: Property,
    /// Informal, natural-language definition (the primary text, per the
    /// paper's "broad church" precision-in-English policy).
    pub definition: &'static str,
    /// The laws that witness the property mechanically, if any.
    pub laws: &'static [Law],
    /// Where the term comes from in the literature.
    pub provenance: &'static str,
}

/// Look up the glossary entry for a property.
pub fn glossary_entry(property: Property) -> GlossaryEntry {
    let (definition, provenance) = match property {
        Property::Correct => (
            "A bx is correct when consistency restoration really does restore \
             consistency: after running fwd (resp. bwd), the resulting pair of \
             models is in the consistency relation.",
            "Stevens, 'Bidirectional model transformations in QVT' (SoSyM 2010).",
        ),
        Property::Hippocratic => (
            "A bx is hippocratic ('first, do no harm') when restoration changes \
             nothing if the models are already consistent: fwd(m, n) = n and \
             bwd(m, n) = m whenever (m, n) is consistent.",
            "Stevens, 'A Landscape of Bidirectional Model Transformations' (GTTSE 2008).",
        ),
        Property::Undoable => (
            "A bx is undoable when a change that is propagated and then reverted \
             leaves no trace: from a consistent (m, n), an excursion through any \
             m' (resp. n') followed by restoring the original authoritative model \
             returns the other model to exactly its original state. The COMPOSERS \
             example is the classic witness that undoability is too strong.",
            "Stevens (GTTSE 2008); discussed for COMPOSERS in Cheney et al. (BX 2014), section 4.",
        ),
        Property::HistoryIgnorant => (
            "A bx is history ignorant when the outcome of restoration depends only \
             on the final authoritative model, not on intermediate states passed \
             through on the way: fwd(m2, fwd(m1, n)) = fwd(m2, n). This is the \
             state-based reading of the lens PutPut law.",
            "Foster et al., 'Combinators for bidirectional tree transformations' (TOPLAS 2007).",
        ),
        Property::SimplyMatching => (
            "A bx is simply matching when restoration proceeds by matching up \
             corresponding elements of the two models (by key, e.g. (name, \
             nationality) pairs in COMPOSERS) and then repairing per-element, with \
             no further global dependence on model structure. Declared-only: \
             witnessed by example-specific tests rather than a generic law.",
            "Terminology from the Least Change project; used in Cheney et al. (BX 2014), section 4.",
        ),
        Property::Bijective => (
            "A bx is bijective when the two model classes are in one-to-one \
             correspondence on consistent states, so restoration in either \
             direction loses nothing: bwd(m, fwd(m, n)) = m and fwd(bwd(m, n), n) = n.",
            "Folklore; the degenerate case where a bx is a pair of inverse functions.",
        ),
        Property::NonDestructive => (
            "A bx is non-destructive when restoration never deletes information \
             from the model being repaired, only adds to it. Declared-only.",
            "Informal safety property used by some repository entries.",
        ),
    };
    GlossaryEntry {
        property,
        definition,
        laws: property.laws(),
        provenance,
    }
}

/// The complete glossary, in [`Property::ALL`] order.
pub fn glossary() -> Vec<GlossaryEntry> {
    Property::ALL.iter().map(|&p| glossary_entry(p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glossary_covers_every_property() {
        let g = glossary();
        assert_eq!(g.len(), Property::ALL.len());
        for (entry, &p) in g.iter().zip(Property::ALL.iter()) {
            assert_eq!(entry.property, p);
            assert!(!entry.definition.is_empty());
            assert!(!entry.provenance.is_empty());
        }
    }

    #[test]
    fn glossary_laws_match_property_laws() {
        for entry in glossary() {
            assert_eq!(entry.laws, entry.property.laws());
        }
    }

    #[test]
    fn undoable_entry_mentions_composers() {
        let e = glossary_entry(Property::Undoable);
        assert!(e.definition.contains("COMPOSERS"));
    }

    #[test]
    fn declared_only_entries_say_so() {
        for p in [Property::SimplyMatching, Property::NonDestructive] {
            let e = glossary_entry(p);
            assert!(e.definition.contains("Declared-only"));
            assert!(e.laws.is_empty());
        }
    }
}
