//! The core [`Bx`] trait: consistency plus restoration in both directions.

use std::fmt;

/// Which side of a bx is authoritative during a restoration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// The `M` (left/source) side is authoritative; `fwd` modifies `N`.
    Forward,
    /// The `N` (right/target) side is authoritative; `bwd` modifies `M`.
    Backward,
}

impl Direction {
    /// The opposite direction.
    pub fn opposite(self) -> Direction {
        match self {
            Direction::Forward => Direction::Backward,
            Direction::Backward => Direction::Forward,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::Forward => write!(f, "forward"),
            Direction::Backward => write!(f, "backward"),
        }
    }
}

/// A state-based bidirectional transformation between model classes `M` and
/// `N`, in the style of Stevens' landscape papers.
///
/// An implementation supplies:
///
/// * [`Bx::consistent`] — the consistency relation `R ⊆ M × N`;
/// * [`Bx::fwd`] — forward restoration `M × N → N`: given authoritative `m`
///   and stale `n`, produce a modified `n'` consistent with `m`;
/// * [`Bx::bwd`] — backward restoration `M × N → M`, symmetrically.
///
/// Restoration functions are *total*: they always return a model, and the
/// laws in [`crate::laws`] check whether the returned model is actually
/// consistent (correctness), unchanged when nothing needed changing
/// (hippocraticness), and so on.
///
/// Implementations that need extra input beyond the two states (e.g. edit
/// information) should adapt through an edit-lens wrapper rather than
/// implement this trait directly; the repository template records which
/// framework an example assumes.
pub trait Bx<M, N> {
    /// A short stable name for diagnostics and reports.
    fn name(&self) -> &str;

    /// The consistency relation: does `(m, n) ∈ R`?
    fn consistent(&self, m: &M, n: &N) -> bool;

    /// Forward restoration: `m` is authoritative, produce a repaired `N`.
    fn fwd(&self, m: &M, n: &N) -> N;

    /// Backward restoration: `n` is authoritative, produce a repaired `M`.
    fn bwd(&self, m: &M, n: &N) -> M;

    /// Restore in the given [`Direction`], returning the repaired pair.
    fn restore(&self, dir: Direction, m: &M, n: &N) -> (M, N)
    where
        M: Clone,
        N: Clone,
    {
        match dir {
            Direction::Forward => (m.clone(), self.fwd(m, n)),
            Direction::Backward => (self.bwd(m, n), n.clone()),
        }
    }
}

/// A bx assembled from three closures. The workhorse constructor used by
/// most examples in the repository.
pub struct BxFromFns<M, N, C, F, B>
where
    C: Fn(&M, &N) -> bool,
    F: Fn(&M, &N) -> N,
    B: Fn(&M, &N) -> M,
{
    name: String,
    consistent: C,
    fwd: F,
    bwd: B,
    _marker: std::marker::PhantomData<fn(&M, &N)>,
}

impl<M, N, C, F, B> BxFromFns<M, N, C, F, B>
where
    C: Fn(&M, &N) -> bool,
    F: Fn(&M, &N) -> N,
    B: Fn(&M, &N) -> M,
{
    /// Build a bx from a name, a consistency predicate, and the two
    /// restoration functions.
    pub fn new(name: impl Into<String>, consistent: C, fwd: F, bwd: B) -> Self {
        BxFromFns {
            name: name.into(),
            consistent,
            fwd,
            bwd,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<M, N, C, F, B> Bx<M, N> for BxFromFns<M, N, C, F, B>
where
    C: Fn(&M, &N) -> bool,
    F: Fn(&M, &N) -> N,
    B: Fn(&M, &N) -> M,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn consistent(&self, m: &M, n: &N) -> bool {
        (self.consistent)(m, n)
    }

    fn fwd(&self, m: &M, n: &N) -> N {
        (self.fwd)(m, n)
    }

    fn bwd(&self, m: &M, n: &N) -> M {
        (self.bwd)(m, n)
    }
}

/// The same bx viewed from the other side: swaps the roles of `M` and `N`.
///
/// `SwapBx(b).fwd == b.bwd` (modulo argument order). Useful when an example
/// is naturally described with the opposite orientation from the one a
/// client needs.
pub struct SwapBx<B> {
    inner: B,
    name: String,
}

impl<B> SwapBx<B> {
    /// Wrap `inner`, swapping its orientation.
    pub fn new<M, N>(inner: B) -> Self
    where
        B: Bx<M, N>,
    {
        let name = format!("swap({})", inner.name());
        SwapBx { inner, name }
    }

    /// The wrapped bx.
    pub fn inner(&self) -> &B {
        &self.inner
    }
}

impl<M, N, B> Bx<N, M> for SwapBx<B>
where
    B: Bx<M, N>,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn consistent(&self, n: &N, m: &M) -> bool {
        self.inner.consistent(m, n)
    }

    fn fwd(&self, n: &N, m: &M) -> M {
        self.inner.bwd(m, n)
    }

    fn bwd(&self, n: &N, m: &M) -> N {
        self.inner.fwd(m, n)
    }
}

/// Composition of two bx through a *canonical middle*.
///
/// State-based bx do not compose in general: restoring `M ↔ K ↔ N` needs a
/// `K` state to thread through, which neither endpoint stores. Following
/// common practice we compose via a caller-supplied canonical middle
/// constructor `mid : M → K` (used when no better `K` is available), which
/// is sound whenever the left bx is *correct* and `mid(m)` is consistent
/// with `m`. The repository's UML↔RDBMS entry discusses the pitfalls.
pub struct ComposeViaMid<BL, BR, K, MidM>
where
    MidM: Fn(&K) -> K,
{
    left: BL,
    right: BR,
    name: String,
    normalize_mid: MidM,
    _marker: std::marker::PhantomData<fn(&K)>,
}

impl<BL, BR, K, MidM> ComposeViaMid<BL, BR, K, MidM>
where
    MidM: Fn(&K) -> K,
{
    /// Compose `left : Bx<M, K>` with `right : Bx<K, N>`.
    ///
    /// `normalize_mid` canonicalises a middle state before it is threaded
    /// onward (identity is a fine default).
    pub fn new(name: impl Into<String>, left: BL, right: BR, normalize_mid: MidM) -> Self {
        ComposeViaMid {
            left,
            right,
            name: name.into(),
            normalize_mid,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<M, K, N, BL, BR, MidM> Bx<M, N> for ComposeViaMid<BL, BR, K, MidM>
where
    BL: Bx<M, K>,
    BR: Bx<K, N>,
    K: Default,
    MidM: Fn(&K) -> K,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn consistent(&self, m: &M, n: &N) -> bool {
        // (m, n) are consistent iff some canonical middle witnesses both.
        let k = (self.normalize_mid)(&self.left.fwd(m, &K::default()));
        self.left.consistent(m, &k) && self.right.consistent(&k, n)
    }

    fn fwd(&self, m: &M, n: &N) -> N {
        let k = (self.normalize_mid)(&self.left.fwd(m, &K::default()));
        self.right.fwd(&k, n)
    }

    fn bwd(&self, m: &M, n: &N) -> M {
        let k0 = (self.normalize_mid)(&self.left.fwd(m, &K::default()));
        let k = self.right.bwd(&k0, n);
        self.left.bwd(m, &k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn replica() -> impl Bx<i32, i32> {
        BxFromFns::new(
            "replica",
            |m: &i32, n: &i32| m == n,
            |m: &i32, _n: &i32| *m,
            |_m: &i32, n: &i32| *n,
        )
    }

    #[test]
    fn direction_opposite() {
        assert_eq!(Direction::Forward.opposite(), Direction::Backward);
        assert_eq!(Direction::Backward.opposite(), Direction::Forward);
        assert_eq!(Direction::Forward.to_string(), "forward");
    }

    #[test]
    fn from_fns_basic() {
        let b = replica();
        assert_eq!(b.name(), "replica");
        assert!(b.consistent(&3, &3));
        assert!(!b.consistent(&3, &4));
        assert_eq!(b.fwd(&3, &9), 3);
        assert_eq!(b.bwd(&3, &9), 9);
    }

    #[test]
    fn restore_both_directions() {
        let b = replica();
        assert_eq!(b.restore(Direction::Forward, &1, &2), (1, 1));
        assert_eq!(b.restore(Direction::Backward, &1, &2), (2, 2));
    }

    #[test]
    fn swap_reverses_roles() {
        let s = SwapBx::new(replica());
        assert_eq!(s.name(), "swap(replica)");
        assert!(s.consistent(&5, &5));
        // fwd of the swap is bwd of the original: copies the (new) left side.
        assert_eq!(s.fwd(&7, &1), 7);
        assert_eq!(s.bwd(&7, &1), 1);
    }

    #[test]
    fn double_swap_is_original() {
        let s = SwapBx::new(SwapBx::new(replica()));
        assert_eq!(s.fwd(&7, &1), 7);
        assert!(s.consistent(&2, &2));
    }

    #[test]
    fn compose_via_mid_replicas() {
        // replica ; replica == replica (with identity normalisation).
        let c = ComposeViaMid::new("replica2", replica(), replica(), |k: &i32| *k);
        assert!(c.consistent(&4, &4));
        assert!(!c.consistent(&4, &5));
        assert_eq!(c.fwd(&4, &9), 4);
        assert_eq!(c.bwd(&4, &9), 9);
        assert_eq!(c.name(), "replica2");
    }

    #[test]
    fn compose_with_doubling_iso() {
        // left: m consistent with k iff k == 2m. right: replica on i32.
        let double = BxFromFns::new(
            "double",
            |m: &i32, k: &i32| *k == 2 * *m,
            |m: &i32, _k: &i32| 2 * *m,
            |_m: &i32, k: &i32| *k / 2,
        );
        let c = ComposeViaMid::new("double;replica", double, replica(), |k: &i32| *k);
        assert!(c.consistent(&3, &6));
        assert!(!c.consistent(&3, &7));
        assert_eq!(c.fwd(&3, &0), 6);
        assert_eq!(c.bwd(&0, &8), 4);
    }
}
