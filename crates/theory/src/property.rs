//! The property vocabulary used by repository entries.
//!
//! The BX 2014 paper's template has a `Properties` field whose values
//! ("Correct", "Hippocratic", "Not undoable", "Simply matching" for
//! COMPOSERS) "will link to a separate glossary of terms". [`Property`] is
//! that vocabulary; [`Claim`] is a property with a polarity so entries can
//! assert *non*-properties ("Not undoable") just as the paper does.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

use crate::error::TheoryError;
use crate::report::Law;

/// A named property of a bx, as used in repository entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Property {
    /// Restoration always produces a consistent pair.
    Correct,
    /// Restoration changes nothing when the pair is already consistent.
    Hippocratic,
    /// A change propagated and then reverted restores the original state.
    Undoable,
    /// The result of restoration depends only on the final authoritative
    /// state, not on the sequence of intermediate states ("PutPut" in the
    /// lens world).
    HistoryIgnorant,
    /// Restoration works by matching corresponding elements by key and has
    /// no further dependence on the incidental structure of the models.
    /// Declared-only: checked by example-specific tests, not a generic law.
    SimplyMatching,
    /// The two restoration functions are inverse to each other on
    /// consistent states (a bijective correspondence).
    Bijective,
    /// Restoration never deletes information from the non-authoritative
    /// model, only adds (a safety property some entries claim).
    NonDestructive,
}

impl Property {
    /// All properties, in display order.
    pub const ALL: [Property; 7] = [
        Property::Correct,
        Property::Hippocratic,
        Property::Undoable,
        Property::HistoryIgnorant,
        Property::SimplyMatching,
        Property::Bijective,
        Property::NonDestructive,
    ];

    /// The laws that mechanically witness this property, if any.
    ///
    /// Properties with an empty law set (e.g. [`Property::SimplyMatching`],
    /// [`Property::NonDestructive`]) are *declared-only*: the repository
    /// records them but verification is example-specific.
    pub fn laws(self) -> &'static [Law] {
        match self {
            Property::Correct => &[Law::CorrectFwd, Law::CorrectBwd],
            Property::Hippocratic => &[Law::HippocraticFwd, Law::HippocraticBwd],
            Property::Undoable => &[Law::UndoableFwd, Law::UndoableBwd],
            Property::HistoryIgnorant => &[Law::HistoryIgnorantFwd, Law::HistoryIgnorantBwd],
            Property::Bijective => &[Law::BijectiveFwd, Law::BijectiveBwd],
            Property::SimplyMatching | Property::NonDestructive => &[],
        }
    }

    /// Whether the property has at least one generic machine-checkable law.
    pub fn checkable(self) -> bool {
        !self.laws().is_empty()
    }

    /// Canonical lowercase name used in wiki markup and citations.
    pub fn slug(self) -> &'static str {
        match self {
            Property::Correct => "correct",
            Property::Hippocratic => "hippocratic",
            Property::Undoable => "undoable",
            Property::HistoryIgnorant => "history-ignorant",
            Property::SimplyMatching => "simply-matching",
            Property::Bijective => "bijective",
            Property::NonDestructive => "non-destructive",
        }
    }
}

impl fmt::Display for Property {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Property::Correct => "Correct",
            Property::Hippocratic => "Hippocratic",
            Property::Undoable => "Undoable",
            Property::HistoryIgnorant => "History ignorant",
            Property::SimplyMatching => "Simply matching",
            Property::Bijective => "Bijective",
            Property::NonDestructive => "Non-destructive",
        };
        write!(f, "{s}")
    }
}

impl FromStr for Property {
    type Err = TheoryError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = s.trim().to_ascii_lowercase().replace([' ', '_'], "-");
        match norm.as_str() {
            "correct" => Ok(Property::Correct),
            "hippocratic" => Ok(Property::Hippocratic),
            "undoable" => Ok(Property::Undoable),
            "history-ignorant" => Ok(Property::HistoryIgnorant),
            "simply-matching" => Ok(Property::SimplyMatching),
            "bijective" => Ok(Property::Bijective),
            "non-destructive" => Ok(Property::NonDestructive),
            _ => Err(TheoryError::UnknownProperty(s.to_string())),
        }
    }
}

/// Whether a claim asserts that a property holds or that it fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Polarity {
    /// The property is claimed to hold.
    Holds,
    /// The property is claimed *not* to hold (e.g. "Not undoable").
    Fails,
}

/// A property claim as it appears in a repository entry's `Properties`
/// field: a property plus polarity, e.g. `Not undoable`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Claim {
    /// The property being claimed.
    pub property: Property,
    /// Whether it is claimed to hold or to fail.
    pub polarity: Polarity,
}

impl Claim {
    /// A positive claim.
    pub fn holds(property: Property) -> Claim {
        Claim {
            property,
            polarity: Polarity::Holds,
        }
    }

    /// A negative claim ("Not …").
    pub fn fails(property: Property) -> Claim {
        Claim {
            property,
            polarity: Polarity::Fails,
        }
    }
}

impl fmt::Display for Claim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.polarity {
            Polarity::Holds => write!(f, "{}", self.property),
            Polarity::Fails => {
                let s = self.property.to_string();
                let mut c = s.chars();
                let lowered = match c.next() {
                    Some(first) => first.to_lowercase().collect::<String>() + c.as_str(),
                    None => s,
                };
                write!(f, "Not {lowered}")
            }
        }
    }
}

impl FromStr for Claim {
    type Err = TheoryError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.trim();
        if let Some(rest) = t.strip_prefix("Not ").or_else(|| t.strip_prefix("not ")) {
            Ok(Claim::fails(rest.parse()?))
        } else {
            Ok(Claim::holds(t.parse()?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_properties() {
        for p in Property::ALL {
            let parsed: Property = p.to_string().parse().expect("display must parse back");
            assert_eq!(parsed, p);
            let parsed_slug: Property = p.slug().parse().expect("slug must parse back");
            assert_eq!(parsed_slug, p);
        }
    }

    #[test]
    fn unknown_property_rejected() {
        assert!(matches!(
            "frobnication".parse::<Property>(),
            Err(TheoryError::UnknownProperty(_))
        ));
    }

    #[test]
    fn claim_display_matches_paper_style() {
        assert_eq!(Claim::holds(Property::Correct).to_string(), "Correct");
        assert_eq!(Claim::fails(Property::Undoable).to_string(), "Not undoable");
        assert_eq!(
            Claim::holds(Property::SimplyMatching).to_string(),
            "Simply matching"
        );
    }

    #[test]
    fn claim_parse_both_polarities() {
        let c: Claim = "Not undoable".parse().unwrap();
        assert_eq!(c, Claim::fails(Property::Undoable));
        let c: Claim = "Hippocratic".parse().unwrap();
        assert_eq!(c, Claim::holds(Property::Hippocratic));
    }

    #[test]
    fn checkability_partition() {
        assert!(Property::Correct.checkable());
        assert!(Property::Hippocratic.checkable());
        assert!(Property::Undoable.checkable());
        assert!(Property::HistoryIgnorant.checkable());
        assert!(Property::Bijective.checkable());
        assert!(!Property::SimplyMatching.checkable());
        assert!(!Property::NonDestructive.checkable());
    }

    #[test]
    fn laws_are_paired_by_direction() {
        for p in Property::ALL {
            let laws = p.laws();
            assert!(
                laws.is_empty() || laws.len() == 2,
                "{p} should have 0 or 2 laws"
            );
        }
    }
}
