//! # bx-theory
//!
//! The state-based bidirectional-transformation (bx) formalism that underpins
//! the bx example repository, following the description of bx given by
//! Stevens in *"Bidirectional model transformations in QVT: Semantic issues
//! and open questions"* (SoSyM 9(1), 2010) — the kernel that the repository
//! template of Cheney, McKinna, Stevens and Gibbons, *"Towards a Repository
//! of Bx Examples"* (BX 2014), builds on.
//!
//! A bx relates two classes of models `M` and `N` through:
//!
//! * a **consistency relation** `R ⊆ M × N`, and
//! * **consistency restoration functions** `fwd : M × N → N` (the `M` side
//!   is authoritative) and `bwd : M × N → M` (the `N` side is
//!   authoritative).
//!
//! The crate provides:
//!
//! * the [`Bx`] trait and constructors ([`BxFromFns`], [`SwapBx`],
//!   [`ComposeViaMid`]);
//! * the paper's property vocabulary as data ([`Property`], [`Claim`],
//!   [`mod@glossary`]);
//! * machine-checkable **laws** ([`Law`], [`laws`]) producing structured
//!   [`LawReport`]s with counterexamples, so that an example's claimed
//!   properties ("Correct", "Hippocratic", "Not undoable", …) can be
//!   verified or refuted mechanically against sampled model pairs.
//!
//! ## Quickstart
//!
//! ```
//! use bx_theory::{Bx, BxFromFns, Law, laws::check_law, laws::Samples};
//!
//! // A trivial bx: two integer "models" are consistent when equal;
//! // restoration copies the authoritative side.
//! let replica = BxFromFns::new(
//!     "replica",
//!     |m: &i32, n: &i32| m == n,
//!     |m: &i32, _n: &i32| *m,
//!     |_m: &i32, n: &i32| *n,
//! );
//!
//! let samples = Samples::new(vec![(1, 1), (2, 5)], vec![7], vec![9]);
//! let report = check_law(&replica, Law::CorrectFwd, &samples);
//! assert!(report.holds());
//! ```

pub mod bx;
pub mod error;
pub mod glossary;
pub mod laws;
pub mod property;
pub mod report;

pub use bx::{Bx, BxFromFns, ComposeViaMid, Direction, SwapBx};
pub use error::TheoryError;
pub use glossary::{glossary, glossary_entry, GlossaryEntry};
pub use laws::{check_all_laws, check_law, LawMatrix, Samples};
pub use property::{Claim, Polarity, Property};
pub use report::{Counterexample, Law, LawReport, Outcome};
