//! Law checking: evaluate bx laws against sampled model pairs and produce
//! structured reports.
//!
//! The checkers are *testing*, not proof: they evaluate each law over a
//! caller-supplied [`Samples`] set (typically produced by hand-picked cases
//! plus proptest generators from `bx-testkit`). A law that `holds()` held on
//! every exercised case; a violation carries a rendered counterexample.

use std::fmt;
use std::fmt::Debug;

use crate::bx::Bx;
use crate::property::{Claim, Polarity};
use crate::report::{Counterexample, Law, LawReport, Outcome};

/// Sampled models for law checking: a set of `(M, N)` pairs plus extra
/// standalone models of each side used for the quantifiers that range over
/// "any other" model (undoability, history ignorance).
#[derive(Debug, Clone)]
pub struct Samples<M, N> {
    pairs: Vec<(M, N)>,
    extra_ms: Vec<M>,
    extra_ns: Vec<N>,
}

impl<M: Clone, N: Clone> Samples<M, N> {
    /// Build a sample set from pairs and extra one-sided models.
    pub fn new(pairs: Vec<(M, N)>, extra_ms: Vec<M>, extra_ns: Vec<N>) -> Self {
        Samples {
            pairs,
            extra_ms,
            extra_ns,
        }
    }

    /// Build from pairs only.
    pub fn from_pairs(pairs: Vec<(M, N)>) -> Self {
        Samples::new(pairs, Vec::new(), Vec::new())
    }

    /// The `(M, N)` pairs.
    pub fn pairs(&self) -> &[(M, N)] {
        &self.pairs
    }

    /// All `M`-side models: those in pairs plus the extras.
    pub fn all_ms(&self) -> Vec<M> {
        let mut out = Vec::with_capacity(self.pairs.len() + self.extra_ms.len());
        out.extend(self.pairs.iter().map(|(m, _)| m.clone()));
        out.extend(self.extra_ms.iter().cloned());
        out
    }

    /// All `N`-side models: those in pairs plus the extras.
    pub fn all_ns(&self) -> Vec<N> {
        let mut out = Vec::with_capacity(self.pairs.len() + self.extra_ns.len());
        out.extend(self.pairs.iter().map(|(_, n)| n.clone()));
        out.extend(self.extra_ns.iter().cloned());
        out
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when there are no pairs at all.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// Cap counterexample descriptions so reports stay readable; the case
/// index lets callers regenerate the full models deterministically.
const COUNTEREXAMPLE_LIMIT: usize = 480;

fn violated(
    bx_name: &str,
    law: Law,
    exercised: usize,
    total: usize,
    mut cx: Counterexample,
) -> LawReport {
    if cx.description.len() > COUNTEREXAMPLE_LIMIT {
        let mut end = COUNTEREXAMPLE_LIMIT;
        while !cx.description.is_char_boundary(end) {
            end -= 1;
        }
        cx.description.truncate(end);
        cx.description.push('…');
    }
    LawReport {
        bx_name: bx_name.to_string(),
        law,
        cases_exercised: exercised,
        cases_total: total,
        outcome: Outcome::Violated(cx),
    }
}

fn verdict(bx_name: &str, law: Law, exercised: usize, total: usize) -> LawReport {
    LawReport {
        bx_name: bx_name.to_string(),
        law,
        cases_exercised: exercised,
        cases_total: total,
        outcome: if exercised == 0 {
            Outcome::Vacuous
        } else {
            Outcome::Holds
        },
    }
}

/// Check a single [`Law`] of `bx` against `samples`.
pub fn check_law<M, N, B>(bx: &B, law: Law, samples: &Samples<M, N>) -> LawReport
where
    M: Clone + PartialEq + Debug,
    N: Clone + PartialEq + Debug,
    B: Bx<M, N> + ?Sized,
{
    let name = bx.name().to_string();
    match law {
        Law::CorrectFwd => {
            let total = samples.len();
            for (i, (m, n)) in samples.pairs().iter().enumerate() {
                let n2 = bx.fwd(m, n);
                if !bx.consistent(m, &n2) {
                    return violated(
                        &name,
                        law,
                        i + 1,
                        total,
                        Counterexample {
                            case_index: i,
                            description: format!(
                                "fwd({m:?}, {n:?}) = {n2:?} is not consistent with m"
                            ),
                        },
                    );
                }
            }
            verdict(&name, law, total, total)
        }
        Law::CorrectBwd => {
            let total = samples.len();
            for (i, (m, n)) in samples.pairs().iter().enumerate() {
                let m2 = bx.bwd(m, n);
                if !bx.consistent(&m2, n) {
                    return violated(
                        &name,
                        law,
                        i + 1,
                        total,
                        Counterexample {
                            case_index: i,
                            description: format!(
                                "bwd({m:?}, {n:?}) = {m2:?} is not consistent with n"
                            ),
                        },
                    );
                }
            }
            verdict(&name, law, total, total)
        }
        Law::HippocraticFwd => {
            let total = samples.len();
            let mut exercised = 0;
            for (i, (m, n)) in samples.pairs().iter().enumerate() {
                if !bx.consistent(m, n) {
                    continue;
                }
                exercised += 1;
                let n2 = bx.fwd(m, n);
                if n2 != *n {
                    return violated(
                        &name,
                        law,
                        exercised,
                        total,
                        Counterexample {
                            case_index: i,
                            description: format!(
                                "(m, n) already consistent but fwd changed n: {n:?} -> {n2:?}"
                            ),
                        },
                    );
                }
            }
            verdict(&name, law, exercised, total)
        }
        Law::HippocraticBwd => {
            let total = samples.len();
            let mut exercised = 0;
            for (i, (m, n)) in samples.pairs().iter().enumerate() {
                if !bx.consistent(m, n) {
                    continue;
                }
                exercised += 1;
                let m2 = bx.bwd(m, n);
                if m2 != *m {
                    return violated(
                        &name,
                        law,
                        exercised,
                        total,
                        Counterexample {
                            case_index: i,
                            description: format!(
                                "(m, n) already consistent but bwd changed m: {m:?} -> {m2:?}"
                            ),
                        },
                    );
                }
            }
            verdict(&name, law, exercised, total)
        }
        Law::UndoableFwd => {
            // For consistent (m, n) and any other m': excursion through m'
            // and back must restore n exactly.
            let ms = samples.all_ms();
            let total = samples.len() * ms.len().max(1);
            let mut exercised = 0;
            for (i, (m, n)) in samples.pairs().iter().enumerate() {
                if !bx.consistent(m, n) {
                    continue;
                }
                for m_prime in &ms {
                    exercised += 1;
                    let n_excursion = bx.fwd(m_prime, n);
                    let n_back = bx.fwd(m, &n_excursion);
                    if n_back != *n {
                        return violated(
                            &name,
                            law,
                            exercised,
                            total,
                            Counterexample {
                                case_index: i,
                                description: format!(
                                    "excursion m -> {m_prime:?} -> m did not restore n: \
                                     started {n:?}, came back {n_back:?}"
                                ),
                            },
                        );
                    }
                }
            }
            verdict(&name, law, exercised, total)
        }
        Law::UndoableBwd => {
            let ns = samples.all_ns();
            let total = samples.len() * ns.len().max(1);
            let mut exercised = 0;
            for (i, (m, n)) in samples.pairs().iter().enumerate() {
                if !bx.consistent(m, n) {
                    continue;
                }
                for n_prime in &ns {
                    exercised += 1;
                    let m_excursion = bx.bwd(m, n_prime);
                    let m_back = bx.bwd(&m_excursion, n);
                    if m_back != *m {
                        return violated(
                            &name,
                            law,
                            exercised,
                            total,
                            Counterexample {
                                case_index: i,
                                description: format!(
                                    "excursion n -> {n_prime:?} -> n did not restore m: \
                                     started {m:?}, came back {m_back:?}"
                                ),
                            },
                        );
                    }
                }
            }
            verdict(&name, law, exercised, total)
        }
        Law::HistoryIgnorantFwd => {
            let ms = samples.all_ms();
            let ns = samples.all_ns();
            let total = ns.len() * ms.len() * ms.len();
            let mut exercised = 0;
            for (i, n) in ns.iter().enumerate() {
                for m1 in &ms {
                    for m2 in &ms {
                        exercised += 1;
                        let via = bx.fwd(m2, &bx.fwd(m1, n));
                        let direct = bx.fwd(m2, n);
                        if via != direct {
                            return violated(
                                &name,
                                law,
                                exercised,
                                total,
                                Counterexample {
                                    case_index: i,
                                    description: format!(
                                        "fwd({m2:?}, fwd({m1:?}, {n:?})) = {via:?} \
                                         but fwd({m2:?}, {n:?}) = {direct:?}"
                                    ),
                                },
                            );
                        }
                    }
                }
            }
            verdict(&name, law, exercised, total)
        }
        Law::HistoryIgnorantBwd => {
            let ms = samples.all_ms();
            let ns = samples.all_ns();
            let total = ms.len() * ns.len() * ns.len();
            let mut exercised = 0;
            for (i, m) in ms.iter().enumerate() {
                for n1 in &ns {
                    for n2 in &ns {
                        exercised += 1;
                        let via = bx.bwd(&bx.bwd(m, n1), n2);
                        let direct = bx.bwd(m, n2);
                        if via != direct {
                            return violated(
                                &name,
                                law,
                                exercised,
                                total,
                                Counterexample {
                                    case_index: i,
                                    description: format!(
                                        "bwd(bwd({m:?}, {n1:?}), {n2:?}) = {via:?} \
                                         but bwd({m:?}, {n2:?}) = {direct:?}"
                                    ),
                                },
                            );
                        }
                    }
                }
            }
            verdict(&name, law, exercised, total)
        }
        Law::BijectiveFwd => {
            let total = samples.len();
            for (i, (m, n)) in samples.pairs().iter().enumerate() {
                let m_back = bx.bwd(m, &bx.fwd(m, n));
                if m_back != *m {
                    return violated(
                        &name,
                        law,
                        i + 1,
                        total,
                        Counterexample {
                            case_index: i,
                            description: format!(
                                "bwd(m, fwd(m, n)) = {m_back:?} differs from m = {m:?}"
                            ),
                        },
                    );
                }
            }
            verdict(&name, law, total, total)
        }
        Law::BijectiveBwd => {
            let total = samples.len();
            for (i, (m, n)) in samples.pairs().iter().enumerate() {
                let n_back = bx.fwd(&bx.bwd(m, n), n);
                if n_back != *n {
                    return violated(
                        &name,
                        law,
                        i + 1,
                        total,
                        Counterexample {
                            case_index: i,
                            description: format!(
                                "fwd(bwd(m, n), n) = {n_back:?} differs from n = {n:?}"
                            ),
                        },
                    );
                }
            }
            verdict(&name, law, total, total)
        }
    }
}

/// Check every law of [`Law::ALL`] and collect the reports.
pub fn check_all_laws<M, N, B>(bx: &B, samples: &Samples<M, N>) -> LawMatrix
where
    M: Clone + PartialEq + Debug,
    N: Clone + PartialEq + Debug,
    B: Bx<M, N> + ?Sized,
{
    LawMatrix {
        bx_name: bx.name().to_string(),
        reports: Law::ALL
            .iter()
            .map(|&law| check_law(bx, law, samples))
            .collect(),
    }
}

/// The verdict on a single repository property claim, obtained by comparing
/// the claim against the checked law reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClaimVerdict {
    /// Every law backing the claim agreed with the claimed polarity.
    Confirmed(Claim),
    /// At least one law contradicted the claimed polarity.
    Refuted { claim: Claim, evidence: String },
    /// The property has no generic law (declared-only) or every backing law
    /// was vacuous on these samples.
    Unverifiable(Claim),
}

impl ClaimVerdict {
    /// True when the verdict confirms the claim.
    pub fn confirmed(&self) -> bool {
        matches!(self, ClaimVerdict::Confirmed(_))
    }
}

impl fmt::Display for ClaimVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClaimVerdict::Confirmed(c) => write!(f, "{c}: confirmed"),
            ClaimVerdict::Refuted { claim, evidence } => {
                write!(f, "{claim}: REFUTED — {evidence}")
            }
            ClaimVerdict::Unverifiable(c) => {
                write!(f, "{c}: unverifiable (declared-only or vacuous)")
            }
        }
    }
}

/// All law reports for one bx — the "law matrix" that reproduces an entry's
/// Properties field mechanically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LawMatrix {
    /// Name of the checked bx.
    pub bx_name: String,
    /// One report per law in [`Law::ALL`] order.
    pub reports: Vec<LawReport>,
}

impl LawMatrix {
    /// The report for a specific law.
    pub fn report(&self, law: Law) -> Option<&LawReport> {
        self.reports.iter().find(|r| r.law == law)
    }

    /// True when the given law held on at least one exercised case.
    pub fn law_holds(&self, law: Law) -> bool {
        self.report(law).is_some_and(LawReport::holds)
    }

    /// Compare the matrix against a set of claims from a repository entry,
    /// realising the paper's reviewer role mechanically: a claimed property
    /// must have all its backing laws hold; a claimed *non*-property must
    /// have at least one backing law violated.
    pub fn verify_claims(&self, claims: &[Claim]) -> Vec<ClaimVerdict> {
        claims
            .iter()
            .map(|&claim| {
                let laws = claim.property.laws();
                if laws.is_empty() {
                    return ClaimVerdict::Unverifiable(claim);
                }
                let reports: Vec<&LawReport> =
                    laws.iter().filter_map(|&l| self.report(l)).collect();
                if reports
                    .iter()
                    .all(|r| matches!(r.outcome, Outcome::Vacuous))
                {
                    return ClaimVerdict::Unverifiable(claim);
                }
                match claim.polarity {
                    Polarity::Holds => {
                        if let Some(bad) = reports.iter().find(|r| r.violated()) {
                            ClaimVerdict::Refuted {
                                claim,
                                evidence: bad.to_string(),
                            }
                        } else {
                            ClaimVerdict::Confirmed(claim)
                        }
                    }
                    Polarity::Fails => {
                        if reports.iter().any(|r| r.violated()) {
                            ClaimVerdict::Confirmed(claim)
                        } else {
                            ClaimVerdict::Refuted {
                                claim,
                                evidence: format!(
                                    "all backing laws held on {} sampled cases",
                                    reports.iter().map(|r| r.cases_exercised).sum::<usize>()
                                ),
                            }
                        }
                    }
                }
            })
            .collect()
    }
}

impl fmt::Display for LawMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "law matrix for `{}`:", self.bx_name)?;
        for r in &self.reports {
            writeln!(f, "  {r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bx::BxFromFns;
    use crate::property::Property;

    /// The canonical well-behaved toy: consistency is equality, restoration
    /// copies the authoritative side. Correct, hippocratic, undoable,
    /// history-ignorant, bijective.
    fn replica() -> impl Bx<i32, i32> {
        BxFromFns::new(
            "replica",
            |m: &i32, n: &i32| m == n,
            |m: &i32, _n: &i32| *m,
            |_m: &i32, n: &i32| *n,
        )
    }

    /// A lossy bx: `n` mirrors only the absolute value of `m`; `bwd`
    /// reconstructs a non-negative `m`. Correct + hippocratic (on the
    /// non-negative fragment) but not undoable: sign information is lost.
    fn abs_view() -> impl Bx<i32, i32> {
        BxFromFns::new(
            "abs-view",
            |m: &i32, n: &i32| m.abs() == *n,
            |m: &i32, _n: &i32| m.abs(),
            |m: &i32, n: &i32| {
                if m.abs() == *n {
                    *m
                } else {
                    *n
                }
            },
        )
    }

    /// A broken bx whose fwd returns a value inconsistent with m.
    fn broken() -> impl Bx<i32, i32> {
        BxFromFns::new(
            "broken",
            |m: &i32, n: &i32| m == n,
            |m: &i32, _n: &i32| m + 1,
            |_m: &i32, n: &i32| *n,
        )
    }

    fn samples() -> Samples<i32, i32> {
        Samples::new(
            vec![(1, 1), (2, 2), (3, 7), (-4, 4)],
            vec![5, -6],
            vec![8, 0],
        )
    }

    #[test]
    fn replica_satisfies_everything() {
        let matrix = check_all_laws(&replica(), &samples());
        for law in Law::ALL {
            assert!(matrix.law_holds(law), "replica should satisfy {law}");
        }
    }

    #[test]
    fn broken_violates_correct_fwd_with_counterexample() {
        let r = check_law(&broken(), Law::CorrectFwd, &samples());
        assert!(r.violated());
        match r.outcome {
            Outcome::Violated(cx) => assert!(cx.description.contains("not consistent")),
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn abs_view_not_undoable_bwd() {
        // Start with consistent (m, n) = (-4, 4). Excursion: n' = 8 forces
        // m to 8 (sign lost); coming back to n = 4 yields m = 4 ≠ -4.
        let s = Samples::new(vec![(-4, 4)], vec![], vec![8]);
        let r = check_law(&abs_view(), Law::UndoableBwd, &s);
        assert!(
            r.violated(),
            "sign loss must break backward undoability: {r}"
        );
    }

    #[test]
    fn hippocratic_vacuous_when_no_consistent_pairs() {
        let s = Samples::from_pairs(vec![(1, 2), (3, 4)]);
        let r = check_law(&replica(), Law::HippocraticFwd, &s);
        assert_eq!(r.outcome, Outcome::Vacuous);
        assert!(!r.holds());
    }

    #[test]
    fn claim_verification_confirms_replica() {
        let matrix = check_all_laws(&replica(), &samples());
        let claims = [
            Claim::holds(Property::Correct),
            Claim::holds(Property::Hippocratic),
            Claim::holds(Property::Undoable),
        ];
        let verdicts = matrix.verify_claims(&claims);
        assert!(verdicts.iter().all(ClaimVerdict::confirmed), "{verdicts:?}");
    }

    #[test]
    fn claim_verification_confirms_negative_claim() {
        let s = Samples::new(vec![(-4, 4), (3, 3)], vec![5], vec![8, 3]);
        let matrix = check_all_laws(&abs_view(), &s);
        let verdicts = matrix.verify_claims(&[Claim::fails(Property::Undoable)]);
        assert!(verdicts[0].confirmed(), "{:?}", verdicts[0]);
    }

    #[test]
    fn claim_verification_refutes_false_positive_claim() {
        let s = Samples::new(vec![(-4, 4), (3, 3)], vec![5], vec![8, 3]);
        let matrix = check_all_laws(&abs_view(), &s);
        let verdicts = matrix.verify_claims(&[Claim::holds(Property::Undoable)]);
        assert!(
            matches!(verdicts[0], ClaimVerdict::Refuted { .. }),
            "{:?}",
            verdicts[0]
        );
    }

    #[test]
    fn declared_only_property_is_unverifiable() {
        let matrix = check_all_laws(&replica(), &samples());
        let verdicts = matrix.verify_claims(&[Claim::holds(Property::SimplyMatching)]);
        assert!(matches!(verdicts[0], ClaimVerdict::Unverifiable(_)));
    }

    #[test]
    fn matrix_display_lists_all_laws() {
        let matrix = check_all_laws(&replica(), &samples());
        let text = matrix.to_string();
        for law in Law::ALL {
            assert!(
                text.contains(&law.to_string()),
                "display must mention {law}"
            );
        }
    }

    #[test]
    fn samples_pools_include_pair_sides() {
        let s = samples();
        assert_eq!(s.all_ms().len(), s.len() + 2);
        assert_eq!(s.all_ns().len(), s.len() + 2);
        assert!(!s.is_empty());
    }
}
