//! # bx-lint — the repository statically analyzes itself
//!
//! The paper's central claim is that the repository is *curated*: every
//! published example carries laws that are supposed to hold. This crate
//! turns those laws from an ad-hoc test concern into a live service —
//! an incremental checking engine on the repository event bus, in the
//! parser → checkers → engine → diagnostics → CLI shape of a language
//! linter.
//!
//! ```text
//!        RepoEvent                 affected set            findings
//! bus ──────────────▶ [DepMap] ──────────────▶ worker pool ─────────▶ DiagnosticsIndex
//!                      mirror                   check_entry            (entry → Vec<Diagnostic>)
//!                      snapshot                 × CheckCatalog              │ delta sink
//!                                                                          ▼
//!                                                                    subscribers
//! ```
//!
//! * [`diagnostics`] — [`Diagnostic`], [`Severity`], [`LintLaw`] and the
//!   queryable [`DiagnosticsIndex`];
//! * [`check`] — the pure checkers: [`check_entry`] (template
//!   well-formedness, citation integrity, curation invariants, claim
//!   verification, lens round-trips) and the cold [`full_check`];
//! * [`catalog`] — [`CheckCatalog`]: executable law checks keyed by the
//!   `Code` artefact locations entries carry, with the workspace's own
//!   [`standard_catalog`];
//! * [`deps`] — [`DepMap`], the reverse-dependency map that makes
//!   re-checking O(affected), not O(repository);
//! * [`engine`] — the synchronous [`Linter`] and the threaded
//!   [`LawChecker`] event sink with its worker pool and
//!   [`engine::DeltaSink`] push hook.
//!
//! The engine's contract, pinned by `tests/lint_equivalence.rs`: after
//! any event sequence — including replica re-bases, torn log tails and
//! federated sources — the live index equals a cold [`full_check`] over
//! the final snapshot.

pub mod catalog;
pub mod check;
pub mod deps;
pub mod diagnostics;
pub mod engine;

pub use catalog::{standard_catalog, CheckCatalog};
pub use check::{check_entry, entries_checked, full_check};
pub use deps::DepMap;
pub use diagnostics::{Diagnostic, DiagnosticsIndex, LintLaw, Severity};
pub use engine::{DeltaSink, LawChecker, Linter};
