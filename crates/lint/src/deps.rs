//! The dependency map: which entries' diagnostics an event can change.
//!
//! `check_entry` reads outside its own entry in exactly two places —
//! `entry:` references (resolved against the live records) and reviewer
//! names (resolved against the live accounts). [`DepMap`] maintains the
//! reverse of both reads, so on each event the engine re-checks the
//! touched entry **plus** precisely the entries whose external reads
//! that event could have changed, and nothing else. That inversion is
//! the whole O(change) claim: without it, a `RoleGranted` event would
//! force a full sweep to find the three entries naming that reviewer.

use std::collections::{BTreeMap, BTreeSet};

use bx_core::event::RepoEvent;
use bx_core::repo::{EntryId, EntryRecord, RepositorySnapshot};

/// Reverse dependencies of the lint checks; see the module docs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DepMap {
    /// entry → the target ids its `entry:` references may resolve to
    /// (both the plain slug and, for namespaced referencers, the
    /// source-local candidate). Dangling targets are kept: the entry
    /// must be re-checked when the target first appears.
    refs_out: BTreeMap<EntryId, BTreeSet<EntryId>>,
    /// target id → entries referencing it (the inversion of `refs_out`).
    refs_in: BTreeMap<EntryId, BTreeSet<EntryId>>,
    /// entry → the reviewer names it lists.
    reviewers_out: BTreeMap<EntryId, BTreeSet<String>>,
    /// reviewer name → entries listing it.
    reviewers_in: BTreeMap<String, BTreeSet<EntryId>>,
}

/// The `entry:` reference targets of one record's latest version,
/// mirroring `check_entry`'s resolution candidates.
fn ref_targets(id: &EntryId, record: &EntryRecord) -> BTreeSet<EntryId> {
    let mut targets = BTreeSet::new();
    for reference in &record.latest().references {
        let Some(rest) = reference.citation.strip_prefix("entry:") else {
            continue;
        };
        let slug = rest.split_once('@').map(|(s, _)| s).unwrap_or(rest);
        targets.insert(EntryId(slug.to_string()));
        if let Some((source, _)) = id.as_str().split_once('/') {
            targets.insert(EntryId(format!("{source}/{slug}")));
        }
    }
    targets
}

impl DepMap {
    /// Build the map for a whole snapshot.
    pub fn build(snapshot: &RepositorySnapshot) -> DepMap {
        let mut map = DepMap::default();
        for (id, record) in &snapshot.records {
            map.update_entry(id, Some(record));
        }
        map
    }

    /// Re-derive one entry's outgoing edges (`None` removes the entry).
    pub fn update_entry(&mut self, id: &EntryId, record: Option<&EntryRecord>) {
        // Retract the old edges.
        if let Some(old_targets) = self.refs_out.remove(id) {
            for target in old_targets {
                if let Some(referencers) = self.refs_in.get_mut(&target) {
                    referencers.remove(id);
                    if referencers.is_empty() {
                        self.refs_in.remove(&target);
                    }
                }
            }
        }
        if let Some(old_reviewers) = self.reviewers_out.remove(id) {
            for reviewer in old_reviewers {
                if let Some(entries) = self.reviewers_in.get_mut(&reviewer) {
                    entries.remove(id);
                    if entries.is_empty() {
                        self.reviewers_in.remove(&reviewer);
                    }
                }
            }
        }
        // Insert the new ones.
        let Some(record) = record else { return };
        let targets = ref_targets(id, record);
        for target in &targets {
            self.refs_in
                .entry(target.clone())
                .or_default()
                .insert(id.clone());
        }
        if !targets.is_empty() {
            self.refs_out.insert(id.clone(), targets);
        }
        let reviewers: BTreeSet<String> = record.latest().reviewers.iter().cloned().collect();
        for reviewer in &reviewers {
            self.reviewers_in
                .entry(reviewer.clone())
                .or_default()
                .insert(id.clone());
        }
        if !reviewers.is_empty() {
            self.reviewers_out.insert(id.clone(), reviewers);
        }
    }

    /// Entries whose reviewer checks read `account` — matched both by
    /// the full (possibly namespaced) account name and by its base name,
    /// mirroring `check_entry`'s tolerant lookup.
    fn entries_reviewing(&self, account: &str) -> BTreeSet<EntryId> {
        let mut affected = BTreeSet::new();
        if let Some(entries) = self.reviewers_in.get(account) {
            affected.extend(entries.iter().cloned());
        }
        if let Some(base) = account.rsplit('/').next() {
            if base != account {
                if let Some(entries) = self.reviewers_in.get(base) {
                    affected.extend(entries.iter().cloned());
                }
            }
        }
        affected
    }

    /// The entries whose diagnostics `event` can change: the touched
    /// entry plus its reverse dependencies. Computed against the map's
    /// *current* edges, so the engine consults it both before and after
    /// folding the event in.
    pub fn affected(&self, event: &RepoEvent) -> BTreeSet<EntryId> {
        match event {
            RepoEvent::Founded(f) => f
                .curators
                .iter()
                .flat_map(|c| self.entries_reviewing(&c.name))
                .collect(),
            RepoEvent::Registered(r) => self.entries_reviewing(&r.principal.name),
            RepoEvent::RoleGranted(g) => self.entries_reviewing(&g.account),
            other => {
                let mut affected = BTreeSet::new();
                if let Some(id) = other.touched() {
                    affected.insert(id.clone());
                    if let Some(referencers) = self.refs_in.get(id) {
                        affected.extend(referencers.iter().cloned());
                    }
                }
                affected
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bx_core::curation::EntryStatus;
    use bx_core::event::{EntryDelta, RoleGranted};
    use bx_core::principal::Role;
    use bx_core::template::{ExampleEntry, ExampleType, Reference};

    fn entry_with(title: &str, refs: &[&str], reviewers: &[&str]) -> ExampleEntry {
        let mut entry = ExampleEntry::builder(title)
            .of_type(ExampleType::Precise)
            .overview("O.")
            .models("M.")
            .consistency("C.")
            .restoration("F.", "B.")
            .discussion("D.")
            .author("alice")
            .build_unchecked();
        entry.references = refs
            .iter()
            .map(|r| Reference {
                citation: format!("entry:{r}"),
                doi: None,
            })
            .collect();
        entry.reviewers = reviewers.iter().map(|r| r.to_string()).collect();
        entry
    }

    fn record(entry: ExampleEntry) -> EntryRecord {
        EntryRecord {
            status: EntryStatus::Provisional,
            history: vec![entry],
        }
    }

    #[test]
    fn reference_edges_invert_and_retract() {
        let mut snapshot = RepositorySnapshot::empty("bx");
        let dates = EntryId::from_title("DATES");
        snapshot.records.insert(
            dates.clone(),
            record(entry_with("DATES", &["composers"], &[])),
        );
        let deps = DepMap::build(&snapshot);

        // An event touching `composers` re-checks composers AND dates.
        let touch = RepoEvent::Contributed(EntryDelta {
            id: EntryId::from_title("COMPOSERS"),
            entry: entry_with("COMPOSERS", &[], &[]),
        });
        let affected = deps.affected(&touch);
        assert!(affected.contains(&EntryId::from_title("COMPOSERS")));
        assert!(affected.contains(&dates), "the referencer is affected");

        // Dropping the reference retracts the reverse edge.
        let mut deps = deps;
        deps.update_entry(&dates, Some(&record(entry_with("DATES", &[], &[]))));
        assert!(!deps.affected(&touch).contains(&dates));
        assert_eq!(deps, {
            let mut empty = RepositorySnapshot::empty("bx");
            empty
                .records
                .insert(dates.clone(), record(entry_with("DATES", &[], &[])));
            DepMap::build(&empty)
        });
    }

    #[test]
    fn role_events_reach_the_entries_naming_the_reviewer() {
        let mut snapshot = RepositorySnapshot::empty("bx");
        let id = EntryId::from_title("DATES");
        snapshot
            .records
            .insert(id.clone(), record(entry_with("DATES", &[], &["bob"])));
        let deps = DepMap::build(&snapshot);

        let grant = RepoEvent::RoleGranted(RoleGranted {
            account: "bob".to_string(),
            role: Role::Reviewer,
        });
        assert!(deps.affected(&grant).contains(&id));

        // The namespaced (federated) form of the same grant also lands.
        let namespaced = RepoEvent::RoleGranted(RoleGranted {
            account: "eu/bob".to_string(),
            role: Role::Reviewer,
        });
        assert!(deps.affected(&namespaced).contains(&id));

        // An unrelated account touches nothing.
        let other = RepoEvent::RoleGranted(RoleGranted {
            account: "carol".to_string(),
            role: Role::Reviewer,
        });
        assert!(deps.affected(&other).is_empty());
    }

    #[test]
    fn namespaced_referencers_track_both_candidates() {
        let mut snapshot = RepositorySnapshot::empty("fed");
        let id = EntryId("eu/dates".to_string());
        snapshot
            .records
            .insert(id.clone(), record(entry_with("DATES", &["composers"], &[])));
        let deps = DepMap::build(&snapshot);
        // The federated target id re-checks the referencer too.
        let touch = RepoEvent::Contributed(EntryDelta {
            id: EntryId("eu/composers".to_string()),
            entry: entry_with("COMPOSERS", &[], &[]),
        });
        assert!(deps.affected(&touch).contains(&id));
    }
}
