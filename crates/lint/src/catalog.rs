//! The check catalog: executable law checks keyed by the artefact
//! location strings entries carry (`Artefact { kind: Code, location }`).
//!
//! An entry's claims are words until something can run them. The catalog
//! is that something: it maps a `Code` artefact location such as
//! `bx_examples::composers::composers_bx` to a closure producing the
//! bx's [`LawMatrix`] over curated samples (so the entry's §3 *Properties*
//! claims can be verified), or to a closure producing lens round-trip
//! [`LensLawReport`]s. Entries whose artefacts are not registered are
//! simply not law-checked — their claims stay declared-only.

use std::collections::BTreeMap;
use std::sync::Arc;

use bx_lens::{check_lens_law, FnLens, LensLaw, LensLawReport};
use bx_theory::{check_all_laws, LawMatrix, Samples};

/// Produces lens round-trip reports for one registered lens artefact.
pub type LensCheckFn = Arc<dyn Fn() -> Vec<LensLawReport> + Send + Sync>;

/// Produces the full law matrix for one registered bx artefact.
pub type MatrixFn = Arc<dyn Fn() -> LawMatrix + Send + Sync>;

/// Executable checks keyed by artefact location; see the module docs.
#[derive(Clone, Default)]
pub struct CheckCatalog {
    lens_checks: BTreeMap<String, LensCheckFn>,
    matrices: BTreeMap<String, MatrixFn>,
}

impl std::fmt::Debug for CheckCatalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckCatalog")
            .field("lens_checks", &self.lens_checks.keys().collect::<Vec<_>>())
            .field("matrices", &self.matrices.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl CheckCatalog {
    /// An empty catalog (nothing is law-checked).
    pub fn new() -> CheckCatalog {
        CheckCatalog::default()
    }

    /// Register a lens round-trip check for the artefact at `location`.
    pub fn register_lens_check(
        &mut self,
        location: impl Into<String>,
        check: impl Fn() -> Vec<LensLawReport> + Send + Sync + 'static,
    ) {
        self.lens_checks.insert(location.into(), Arc::new(check));
    }

    /// Register a law-matrix producer for the artefact at `location`.
    pub fn register_matrix(
        &mut self,
        location: impl Into<String>,
        matrix: impl Fn() -> LawMatrix + Send + Sync + 'static,
    ) {
        self.matrices.insert(location.into(), Arc::new(matrix));
    }

    /// The lens check registered at `location`, if any.
    pub fn lens_check(&self, location: &str) -> Option<&LensCheckFn> {
        self.lens_checks.get(location)
    }

    /// The matrix producer registered at `location`, if any.
    pub fn matrix(&self, location: &str) -> Option<&MatrixFn> {
        self.matrices.get(location)
    }

    /// How many checks are registered in total.
    pub fn len(&self) -> usize {
        self.lens_checks.len() + self.matrices.len()
    }

    /// Is nothing registered?
    pub fn is_empty(&self) -> bool {
        self.lens_checks.is_empty() && self.matrices.is_empty()
    }
}

/// The catalog covering the workspace's own flagship artefacts — what
/// `bx lint` and the benches run with.
///
/// * `bx_examples::composers::composers_bx` — the full ten-law matrix
///   over the sample pool its paper-claims test uses. The pool is chosen
///   so the *negative* claim "Not undoable" is confirmed (it exhibits the
///   information-losing delete/restore counterexample), not merely
///   unrefuted.
/// * `bx_examples::composers_boomerang::composers_lens` — GetPut, PutGet
///   and CreateGet over its documented sample strings. PutPut is
///   deliberately **not** registered: dictionary lenses fail it by
///   construction (the entry's discussion says as much), so checking it
///   would turn a documented limitation into a standing error.
pub fn standard_catalog() -> CheckCatalog {
    use bx_examples::composers::{composer_set, composers_bx, pair_list};
    use bx_examples::composers_boomerang::{composers_lens, SAMPLE_SOURCE};

    let mut catalog = CheckCatalog::new();

    catalog.register_matrix("bx_examples::composers::composers_bx", || {
        let m1 = composer_set(&[
            ("Benjamin Britten", "1913-1976", "British"),
            ("Jean Sibelius", "1865-1957", "Finnish"),
            ("Aaron Copland", "1910-1990", "American"),
        ]);
        let n1 = pair_list(&[
            ("Benjamin Britten", "British"),
            ("Jean Sibelius", "Finnish"),
            ("Aaron Copland", "American"),
        ]);
        let m2 = composer_set(&[("Clara Schumann", "1819-1896", "German")]);
        let n2 = pair_list(&[("Clara Schumann", "German")]);
        let samples = Samples::new(
            vec![
                (m1.clone(), n1.clone()),
                (m2.clone(), n2.clone()),
                (m1.clone(), n2.clone()),
                (composer_set(&[]), pair_list(&[])),
                (m1.clone(), pair_list(&[("Jean Sibelius", "Finnish")])),
            ],
            vec![m2, composer_set(&[("Erik Satie", "1866-1925", "French")])],
            vec![n2, pair_list(&[])],
        );
        check_all_laws(&composers_bx(), &samples)
    });

    catalog.register_lens_check("bx_examples::composers_boomerang::composers_lens", || {
        // `StringLens` is partial (its get/put/create can reject
        // strings outside the lens language); over these documented
        // in-language samples it is total, so wrapping the
        // `.expect`ed calls in an `FnLens` lets the generic law
        // checker drive it.
        let name = composers_lens().name().to_string();
        let get = composers_lens();
        let put = composers_lens();
        let create = composers_lens();
        let lens = FnLens::new(
            name,
            move |s: &String| get.get(s).expect("sample source is in the lens language"),
            move |s: &String, v: &String| {
                put.put(s, v).expect("sample view is in the view language")
            },
            move |v: &String| {
                create
                    .create(v)
                    .expect("sample view is in the view language")
            },
        );
        let sources: Vec<String> = ["", SAMPLE_SOURCE, "One Name, 1-2, X\n"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let views: Vec<String> = ["", "A, X\n", "B, Y\nA, X\n"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        [LensLaw::GetPut, LensLaw::PutGet, LensLaw::CreateGet]
            .iter()
            .map(|&law| check_lens_law(&lens, law, &sources, &views))
            .collect()
    });

    catalog
}

#[cfg(test)]
mod tests {
    use super::*;
    use bx_theory::{Claim, Property};

    #[test]
    fn standard_catalog_registers_the_flagship_artefacts() {
        let catalog = standard_catalog();
        assert_eq!(catalog.len(), 2);
        assert!(catalog
            .matrix("bx_examples::composers::composers_bx")
            .is_some());
        assert!(catalog
            .lens_check("bx_examples::composers_boomerang::composers_lens")
            .is_some());
        assert!(catalog.matrix("not registered").is_none());
    }

    #[test]
    fn the_composers_matrix_confirms_the_entry_claims() {
        let catalog = standard_catalog();
        let matrix = catalog
            .matrix("bx_examples::composers::composers_bx")
            .unwrap()();
        let verdicts = matrix.verify_claims(&[
            Claim::holds(Property::Correct),
            Claim::holds(Property::Hippocratic),
            Claim::fails(Property::Undoable),
        ]);
        for verdict in &verdicts {
            assert!(verdict.confirmed(), "expected confirmation, got: {verdict}");
        }
    }

    #[test]
    fn the_boomerang_lens_checks_hold_on_their_samples() {
        let catalog = standard_catalog();
        let reports = catalog
            .lens_check("bx_examples::composers_boomerang::composers_lens")
            .unwrap()();
        assert_eq!(reports.len(), 3);
        for report in &reports {
            assert!(report.holds(), "expected a clean report, got: {report}");
        }
    }
}
