//! Diagnostics: what a law check reports and the live index that holds
//! the current report per entry.

use std::collections::BTreeMap;
use std::fmt;

use bx_core::repo::EntryId;
use bx_lens::LensLaw;

/// How bad a finding is. Exit-code semantics and [`DiagnosticsIndex::is_clean`]
/// key on [`Severity::Error`] only: warnings and notes inform, errors fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The entry does not merely inform — publishing it violates a law.
    Error,
    /// Suspicious but not law-breaking (e.g. a reviewer with no account).
    Warning,
    /// A fact worth surfacing (e.g. a declared-only claim no law backs).
    Info,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
            Severity::Info => write!(f, "info"),
        }
    }
}

/// The law families the checker enforces — the catalogue rows of the
/// README table. Every [`Diagnostic`] names the law it was derived from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintLaw {
    /// §3 template side conditions ([`bx_core::template::ExampleEntry::validate`]).
    TemplateWellFormed,
    /// `entry:` cross-references resolve to a live entry (and version).
    CitationResolves,
    /// §5.1 curatorial invariants: reviewed versions, reviewer roles,
    /// no self-review.
    CurationInvariant,
    /// A declared property claim checked against its registered law
    /// matrix ([`bx_theory::LawMatrix::verify_claims`]).
    ClaimVerified,
    /// A registered lens artefact's round-trip law
    /// ([`bx_lens::check_lens_law`]).
    LensRoundTrip(LensLaw),
}

impl fmt::Display for LintLaw {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintLaw::TemplateWellFormed => write!(f, "template-well-formed"),
            LintLaw::CitationResolves => write!(f, "citation-resolves"),
            LintLaw::CurationInvariant => write!(f, "curation-invariant"),
            LintLaw::ClaimVerified => write!(f, "claim-verified"),
            LintLaw::LensRoundTrip(law) => write!(f, "lens-round-trip({law})"),
        }
    }
}

/// One finding against one entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The law family that produced the finding.
    pub law: LintLaw,
    /// How bad it is.
    pub severity: Severity,
    /// Where in the entry it points (a template field path such as
    /// `references[2]` or `artefacts[0]` — entries have no line numbers).
    pub span: String,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.law, self.span, self.message
        )
    }
}

/// The live diagnostics of a repository: entry id → current findings,
/// queryable next to search. Entries with no findings carry no key, so
/// two indexes over equal states compare equal regardless of the event
/// order that produced them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiagnosticsIndex {
    by_entry: BTreeMap<EntryId, Vec<Diagnostic>>,
}

impl DiagnosticsIndex {
    /// Replace the findings for one entry; an empty list clears it.
    pub fn set_entry(&mut self, id: &EntryId, diagnostics: Vec<Diagnostic>) {
        if diagnostics.is_empty() {
            self.by_entry.remove(id);
        } else {
            self.by_entry.insert(id.clone(), diagnostics);
        }
    }

    /// The current findings for one entry (empty when clean).
    pub fn diagnostics_of(&self, id: &EntryId) -> &[Diagnostic] {
        self.by_entry.get(id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Entries that currently have findings, in id order.
    pub fn entries(&self) -> impl Iterator<Item = &EntryId> {
        self.by_entry.keys()
    }

    /// All findings, grouped by entry in id order.
    pub fn iter(&self) -> impl Iterator<Item = (&EntryId, &[Diagnostic])> {
        self.by_entry.iter().map(|(id, d)| (id, d.as_slice()))
    }

    /// How many entries currently have findings.
    pub fn entry_count(&self) -> usize {
        self.by_entry.len()
    }

    fn count(&self, severity: Severity) -> usize {
        self.by_entry
            .values()
            .flatten()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Current error findings.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Current warning findings.
    pub fn warning_count(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Current info findings.
    pub fn info_count(&self) -> usize {
        self.count(Severity::Info)
    }

    /// No errors (warnings and infos do not dirty a repository).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// A human-readable report: findings grouped by entry, then a
    /// severity tally — what `bx lint` prints.
    pub fn report(&self) -> String {
        let mut out = String::new();
        for (id, diagnostics) in self.iter() {
            out.push_str(&format!("{id}\n", id = id.as_str()));
            for d in diagnostics {
                out.push_str(&format!("  {d}\n"));
            }
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} info(s) across {} entr{}\n",
            self.error_count(),
            self.warning_count(),
            self.info_count(),
            self.entry_count(),
            if self.entry_count() == 1 { "y" } else { "ies" }
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(severity: Severity) -> Diagnostic {
        Diagnostic {
            law: LintLaw::TemplateWellFormed,
            severity,
            span: "template".to_string(),
            message: "m".to_string(),
        }
    }

    #[test]
    fn index_counts_and_clears() {
        let mut index = DiagnosticsIndex::default();
        assert!(index.is_clean());
        let id = EntryId::from_title("COMPOSERS");
        index.set_entry(&id, vec![diag(Severity::Error), diag(Severity::Info)]);
        assert_eq!(index.error_count(), 1);
        assert_eq!(index.info_count(), 1);
        assert!(!index.is_clean());
        assert_eq!(index.diagnostics_of(&id).len(), 2);
        // Clearing via an empty list removes the key entirely, so the
        // index equals one that never saw the entry.
        index.set_entry(&id, Vec::new());
        assert_eq!(index, DiagnosticsIndex::default());
    }

    #[test]
    fn diagnostics_render() {
        let d = Diagnostic {
            law: LintLaw::CitationResolves,
            severity: Severity::Error,
            span: "references[1]".to_string(),
            message: "no entry `ghost`".to_string(),
        };
        assert_eq!(
            d.to_string(),
            "error[citation-resolves] references[1]: no entry `ghost`"
        );
        let mut index = DiagnosticsIndex::default();
        index.set_entry(&EntryId::from_title("X"), vec![d]);
        let report = index.report();
        assert!(report.contains("x\n"));
        assert!(report.contains("1 error(s), 0 warning(s), 0 info(s) across 1 entry"));
    }
}
