//! The pure checkers: everything the engine knows how to verify about
//! one entry against one snapshot. `check_entry` is deterministic in
//! `(snapshot, id, record, catalog)` — the incremental engine and the
//! cold full check call exactly the same function, which is what makes
//! the incremental-≡-full property meaningful.

use std::sync::atomic::{AtomicU64, Ordering};

use bx_core::cite;
use bx_core::curation::EntryStatus;
use bx_core::principal::{Principal, Role};
use bx_core::repo::{EntryId, EntryRecord, RepositorySnapshot};
use bx_core::template::ArtefactKind;
use bx_core::version::Version;
use bx_core::RepoError;
use bx_theory::laws::ClaimVerdict;

use crate::catalog::CheckCatalog;
use crate::diagnostics::{Diagnostic, DiagnosticsIndex, LintLaw, Severity};

/// Entries checked process-wide, ever — the observable the scale tests
/// and the `law_matrix` bench pin O(change) verification against, the
/// same way `entries_tokenized`/`entries_rendered` pin O(change)
/// materialization.
static ENTRIES_CHECKED: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of [`check_entry`] calls.
pub fn entries_checked() -> u64 {
    ENTRIES_CHECKED.load(Ordering::Relaxed)
}

/// A cross-entry reference: `entry:<slug>` or `entry:<slug>@<maj>.<min>`
/// in a reference's citation field.
fn parse_entry_ref(citation: &str) -> Option<(&str, Result<Option<Version>, String>)> {
    let rest = citation.strip_prefix("entry:")?;
    match rest.split_once('@') {
        None => Some((rest, Ok(None))),
        Some((slug, version)) => {
            let parsed = version
                .split_once('.')
                .and_then(|(major, minor)| {
                    Some(Version::new(major.parse().ok()?, minor.parse().ok()?))
                })
                .ok_or_else(|| format!("unparseable version pin `@{version}` (want `@maj.min`)"));
            Some((slug, parsed.map(Some)))
        }
    }
}

/// Find `name`'s account, tolerating federation namespacing: an exact
/// key, or any `<source>/<name>` key (entries written on a primary list
/// reviewers by their local names; the merged snapshot stores the
/// accounts namespaced).
fn lookup_account<'a>(snapshot: &'a RepositorySnapshot, name: &str) -> Option<&'a Principal> {
    if let Some(principal) = snapshot.accounts.get(name) {
        return Some(principal);
    }
    let suffix = format!("/{name}");
    snapshot
        .accounts
        .iter()
        .find(|(key, _)| key.ends_with(&suffix))
        .map(|(_, principal)| principal)
}

/// Resolve one `entry:` reference against the snapshot, trying the
/// referencing entry's own source namespace when the plain slug misses
/// (an entry written on primary `eu` that cites `entry:composers` means
/// `eu/composers` once federated).
fn resolve_reference(
    snapshot: &RepositorySnapshot,
    referencer: &EntryId,
    slug: &str,
    version: Option<Version>,
) -> Result<String, RepoError> {
    match cite::cite_in(snapshot, &EntryId(slug.to_string()), version) {
        Err(RepoError::UnknownEntry(_)) => {
            if let Some((source, _)) = referencer.as_str().split_once('/') {
                cite::cite_in(snapshot, &EntryId(format!("{source}/{slug}")), version)
            } else {
                Err(RepoError::UnknownEntry(slug.to_string()))
            }
        }
        other => other,
    }
}

/// Every law check for one entry, in catalogue order: template
/// well-formedness, citation integrity, curation invariants, claim
/// verification, lens round-trips. Pure in its inputs.
pub fn check_entry(
    snapshot: &RepositorySnapshot,
    id: &EntryId,
    record: &EntryRecord,
    catalog: &CheckCatalog,
) -> Vec<Diagnostic> {
    ENTRIES_CHECKED.fetch_add(1, Ordering::Relaxed);
    let entry = record.latest();
    let mut diagnostics = Vec::new();
    let mut push = |law, severity, span: String, message: String| {
        diagnostics.push(Diagnostic {
            law,
            severity,
            span,
            message,
        });
    };

    // 1. Template well-formedness (§3 side conditions).
    for problem in entry.validate() {
        push(
            LintLaw::TemplateWellFormed,
            Severity::Error,
            "template".to_string(),
            problem,
        );
    }

    // 2. Citation / cross-entry reference integrity.
    for (i, reference) in entry.references.iter().enumerate() {
        let Some((slug, version)) = parse_entry_ref(&reference.citation) else {
            continue; // free-text literature citations are not checkable
        };
        let span = format!("references[{i}]");
        match version {
            Err(problem) => push(LintLaw::CitationResolves, Severity::Error, span, problem),
            Ok(version) => {
                if let Err(e) = resolve_reference(snapshot, id, slug, version) {
                    push(
                        LintLaw::CitationResolves,
                        Severity::Error,
                        span,
                        e.to_string(),
                    );
                }
            }
        }
    }

    // 3. Curation-role invariants (§5.1).
    if record.status == EntryStatus::Approved && !entry.version.is_reviewed() {
        push(
            LintLaw::CurationInvariant,
            Severity::Error,
            "version".to_string(),
            format!(
                "approved entries carry a reviewed version (≥ 1.0), found {}",
                entry.version
            ),
        );
    }
    for (i, reviewer) in entry.reviewers.iter().enumerate() {
        let span = format!("reviewers[{i}]");
        if entry.authors.contains(reviewer) {
            push(
                LintLaw::CurationInvariant,
                Severity::Error,
                span.clone(),
                format!("`{reviewer}` cannot review an entry they authored"),
            );
        }
        match lookup_account(snapshot, reviewer) {
            Some(principal) if !principal.role.at_least(Role::Reviewer) => push(
                LintLaw::CurationInvariant,
                Severity::Error,
                span,
                format!(
                    "`{reviewer}` is listed as reviewer but holds only the {:?} role",
                    principal.role
                ),
            ),
            Some(_) => {}
            None => push(
                LintLaw::CurationInvariant,
                Severity::Warning,
                span,
                format!("reviewer `{reviewer}` has no registered account"),
            ),
        }
    }

    // 4 & 5. Executable artefacts: claim verification against the
    // registered law matrix, and lens round-trip laws.
    for (i, artefact) in entry.artefacts.iter().enumerate() {
        if artefact.kind != ArtefactKind::Code {
            continue;
        }
        if let Some(matrix_of) = catalog.matrix(&artefact.location) {
            let matrix = matrix_of();
            for verdict in matrix.verify_claims(&entry.properties) {
                match verdict {
                    ClaimVerdict::Confirmed(_) => {}
                    ClaimVerdict::Refuted { claim, evidence } => push(
                        LintLaw::ClaimVerified,
                        Severity::Error,
                        "properties".to_string(),
                        format!(
                            "claim `{claim}` refuted by `{}`: {evidence}",
                            matrix.bx_name
                        ),
                    ),
                    ClaimVerdict::Unverifiable(claim) => push(
                        LintLaw::ClaimVerified,
                        Severity::Info,
                        "properties".to_string(),
                        format!(
                            "claim `{claim}` is declared-only (no law in `{}` backs it)",
                            matrix.bx_name
                        ),
                    ),
                }
            }
        }
        if let Some(lens_check) = catalog.lens_check(&artefact.location) {
            for report in lens_check() {
                if !report.holds() {
                    push(
                        LintLaw::LensRoundTrip(report.law),
                        Severity::Error,
                        format!("artefacts[{i}]"),
                        report.to_string(),
                    );
                }
            }
        }
    }

    diagnostics
}

/// The cold path: check every entry of `snapshot` from scratch. This is
/// what `bx lint` runs, and the oracle the incremental engine is pinned
/// against.
pub fn full_check(snapshot: &RepositorySnapshot, catalog: &CheckCatalog) -> DiagnosticsIndex {
    let mut index = DiagnosticsIndex::default();
    for (id, record) in &snapshot.records {
        index.set_entry(id, check_entry(snapshot, id, record, catalog));
    }
    index
}

#[cfg(test)]
mod tests {
    use super::*;
    use bx_core::repo::Repository;
    use bx_core::template::{ExampleEntry, ExampleType, Reference};

    fn entry(title: &str) -> ExampleEntry {
        ExampleEntry::builder(title)
            .of_type(ExampleType::Precise)
            .overview("O.")
            .models("M.")
            .consistency("C.")
            .restoration("F.", "B.")
            .discussion("D.")
            .author("alice")
            .build()
            .unwrap()
    }

    fn repo_with(entries: Vec<ExampleEntry>) -> RepositorySnapshot {
        let r = Repository::found("bx", vec![Principal::curator("c")]);
        r.register(Principal::member("alice")).unwrap();
        for e in entries {
            r.contribute("alice", e).unwrap();
        }
        r.snapshot()
    }

    #[test]
    fn a_valid_entry_is_clean() {
        let snapshot = repo_with(vec![entry("COMPOSERS")]);
        let id = EntryId::from_title("COMPOSERS");
        let diagnostics = check_entry(&snapshot, &id, &snapshot.records[&id], &CheckCatalog::new());
        assert!(diagnostics.is_empty(), "unexpected: {diagnostics:?}");
    }

    #[test]
    fn template_violations_surface_as_errors() {
        // `contribute` refuses invalid entries, so build one unchecked —
        // the path a foreign event log takes into a replica.
        let bad = ExampleEntry::builder("BROKEN")
            .of_type(ExampleType::Precise)
            .models("M.")
            .consistency("C.")
            .restoration("F.", "B.")
            .discussion("D.")
            .author("alice")
            .build_unchecked();
        let mut snapshot = repo_with(vec![]);
        snapshot.records.insert(
            EntryId::from_title("BROKEN"),
            EntryRecord {
                status: EntryStatus::Provisional,
                history: vec![bad],
            },
        );
        let id = EntryId::from_title("BROKEN");
        let diagnostics = check_entry(&snapshot, &id, &snapshot.records[&id], &CheckCatalog::new());
        assert!(diagnostics
            .iter()
            .any(|d| d.law == LintLaw::TemplateWellFormed && d.severity == Severity::Error));
    }

    #[test]
    fn entry_references_resolve_or_error() {
        let mut referencing = entry("DATES");
        referencing.references = vec![
            Reference {
                citation: "entry:composers".to_string(),
                doi: None,
            },
            Reference {
                citation: "entry:ghost".to_string(),
                doi: None,
            },
            Reference {
                citation: "entry:composers@9.9".to_string(),
                doi: None,
            },
            Reference {
                citation: "entry:composers@nonsense".to_string(),
                doi: None,
            },
            Reference {
                citation: "Free-text literature citation, 2014.".to_string(),
                doi: None,
            },
        ];
        let snapshot = repo_with(vec![entry("COMPOSERS"), referencing]);
        let id = EntryId::from_title("DATES");
        let diagnostics = check_entry(&snapshot, &id, &snapshot.records[&id], &CheckCatalog::new());
        let citation_errors: Vec<&Diagnostic> = diagnostics
            .iter()
            .filter(|d| d.law == LintLaw::CitationResolves)
            .collect();
        assert_eq!(citation_errors.len(), 3, "got: {diagnostics:?}");
        assert_eq!(citation_errors[0].span, "references[1]"); // ghost
        assert_eq!(citation_errors[1].span, "references[2]"); // bad pin
        assert_eq!(citation_errors[2].span, "references[3]"); // unparseable
    }

    #[test]
    fn references_resolve_within_a_federated_namespace() {
        let mut referencing = entry("DATES");
        referencing.references = vec![Reference {
            citation: "entry:composers".to_string(),
            doi: None,
        }];
        let plain = repo_with(vec![entry("COMPOSERS"), referencing]);
        // Re-key everything under a source namespace, as a federation
        // would: `entry:composers` inside `eu/dates` must find
        // `eu/composers`.
        let mut federated = RepositorySnapshot::empty("fed");
        for (id, record) in &plain.records {
            federated
                .records
                .insert(EntryId(format!("eu/{}", id.as_str())), record.clone());
        }
        let id = EntryId("eu/dates".to_string());
        let diagnostics = check_entry(
            &federated,
            &id,
            &federated.records[&id],
            &CheckCatalog::new(),
        );
        assert!(
            !diagnostics
                .iter()
                .any(|d| d.law == LintLaw::CitationResolves),
            "namespaced resolution failed: {diagnostics:?}"
        );
    }

    #[test]
    fn curation_invariants_catch_self_review_and_missing_roles() {
        let mut reviewed = entry("UML2RDBMS");
        reviewed.reviewers = vec![
            "alice".to_string(),
            "carol".to_string(),
            "mallory".to_string(),
        ];
        let mut snapshot = repo_with(vec![]);
        snapshot
            .accounts
            .insert("carol".to_string(), Principal::member("carol"));
        snapshot.records.insert(
            EntryId::from_title("UML2RDBMS"),
            EntryRecord {
                status: EntryStatus::Provisional,
                history: vec![reviewed],
            },
        );
        let id = EntryId::from_title("UML2RDBMS");
        let diagnostics = check_entry(&snapshot, &id, &snapshot.records[&id], &CheckCatalog::new());
        // alice authored the entry → self-review error (plus a warning:
        // alice is registered but validate() also requires reviewers on
        // reviewed versions only, so no template error here).
        assert!(diagnostics
            .iter()
            .any(|d| d.law == LintLaw::CurationInvariant
                && d.severity == Severity::Error
                && d.message.contains("they authored")));
        // carol holds only Member → role error.
        assert!(diagnostics
            .iter()
            .any(|d| d.law == LintLaw::CurationInvariant
                && d.severity == Severity::Error
                && d.message.contains("holds only the Member role")));
        // mallory has no account → warning.
        assert!(diagnostics
            .iter()
            .any(|d| d.law == LintLaw::CurationInvariant
                && d.severity == Severity::Warning
                && d.message.contains("no registered account")));
    }

    #[test]
    fn approved_entries_need_reviewed_versions() {
        let snapshot = repo_with(vec![entry("FAMILIES")]);
        let id = EntryId::from_title("FAMILIES");
        let mut tampered = snapshot.clone();
        tampered.records.get_mut(&id).unwrap().status = EntryStatus::Approved;
        let diagnostics = check_entry(&tampered, &id, &tampered.records[&id], &CheckCatalog::new());
        assert!(diagnostics
            .iter()
            .any(|d| d.law == LintLaw::CurationInvariant
                && d.span == "version"
                && d.severity == Severity::Error));
    }

    #[test]
    fn full_check_over_the_standard_repository_is_error_free() {
        let repo = bx_examples::standard_repository();
        let catalog = crate::catalog::standard_catalog();
        let index = full_check(&repo.snapshot(), &catalog);
        assert!(
            index.is_clean(),
            "the shipped corpus must lint clean:\n{}",
            index.report()
        );
        // The checks did run: COMPOSERS carries a declared-only claim
        // (SimplyMatching), surfaced as an info diagnostic.
        let composers = EntryId::from_title("COMPOSERS");
        assert!(index
            .diagnostics_of(&composers)
            .iter()
            .any(|d| d.law == LintLaw::ClaimVerified && d.severity == Severity::Info));
    }
}
