//! The incremental engines.
//!
//! [`Linter`] is the synchronous core: a mirrored snapshot, a [`DepMap`]
//! and a [`DiagnosticsIndex`], advanced one event at a time on the
//! caller's thread. It is the reference implementation the equivalence
//! property pins (`Linter` over a script ≡ [`full_check`] over the final
//! state) and what the benches measure.
//!
//! [`LawChecker`] wraps the same logic as a live service: an
//! [`EventSink`] whose `accept` does only O(affected-set) bookkeeping
//! under the publisher's lock — fold the event into a mirrored snapshot,
//! consult the dependency map, enqueue the affected entries — while a
//! [`bx_core::Runtime`] pool (a private one by default, or a node's
//! shared one via [`LawChecker::on_runtime`]) runs the actual checks
//! off-thread and folds results into a shared index with
//! last-write-wins version stamps. Subscribe it to a
//! [`bx_core::Repository`], a [`bx_core::Replica`] or a
//! [`bx_core::Federation`] and query diagnostics next to search.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use bx_core::event::{apply_event, EventSink, RepoEvent};
use bx_core::repo::{EntryId, RepositorySnapshot};
use bx_core::runtime::{HealthReport, Runtime, RuntimeHealth};

use crate::catalog::CheckCatalog;
use crate::check::{check_entry, full_check};
use crate::deps::DepMap;
use crate::diagnostics::{Diagnostic, DiagnosticsIndex};

/// Called with `(entry, its new findings)` every time the engine folds a
/// fresh check result in — the push protocol for diagnostics deltas,
/// mirroring `BackgroundWriter::set_health_sink`.
pub type DeltaSink = Arc<dyn Fn(&EntryId, &[Diagnostic]) + Send + Sync>;

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// The synchronous incremental linter; see the module docs.
#[derive(Debug, Clone)]
pub struct Linter {
    snapshot: RepositorySnapshot,
    deps: DepMap,
    index: DiagnosticsIndex,
    catalog: Arc<CheckCatalog>,
}

impl Linter {
    /// Build over `snapshot` with a cold full check.
    pub fn new(snapshot: RepositorySnapshot, catalog: Arc<CheckCatalog>) -> Linter {
        let deps = DepMap::build(&snapshot);
        let index = full_check(&snapshot, &catalog);
        Linter {
            snapshot,
            deps,
            index,
            catalog,
        }
    }

    /// Fold one event in and re-check exactly the affected entries.
    pub fn apply(&mut self, event: &RepoEvent) {
        // Reverse dependencies are consulted both before and after the
        // dependency edges move, so an entry that *stops* being affected
        // still gets its final re-check.
        let mut affected = self.deps.affected(event);
        apply_event(&mut self.snapshot, event);
        if let Some(id) = event.touched() {
            self.deps.update_entry(id, self.snapshot.records.get(id));
            affected.extend(self.deps.affected(event));
        }
        for id in affected {
            let diagnostics = self
                .snapshot
                .records
                .get(&id)
                .map(|record| check_entry(&self.snapshot, &id, record, &self.catalog))
                .unwrap_or_default();
            self.index.set_entry(&id, diagnostics);
        }
    }

    /// Adopt `base` wholesale (a replica re-based) and re-check
    /// everything.
    pub fn rebase(&mut self, base: &RepositorySnapshot) {
        *self = Linter::new(base.clone(), self.catalog.clone());
    }

    /// The live diagnostics.
    pub fn diagnostics(&self) -> &DiagnosticsIndex {
        &self.index
    }

    /// The mirrored snapshot the diagnostics are about.
    pub fn snapshot(&self) -> &RepositorySnapshot {
        &self.snapshot
    }
}

/// The mirrored publisher state the accept path maintains. The snapshot
/// lives in an `Arc` so workers check against an O(1) clone taken at pop
/// time instead of holding this lock for the duration of a check.
struct EngineState {
    snapshot: Arc<RepositorySnapshot>,
    deps: DepMap,
    /// Bumped once per accepted event / rebase; stamps check results so
    /// a slow worker cannot overwrite a newer entry report.
    version: u64,
}

/// The folded output side: the index plus the version stamp of the state
/// each entry's current findings were computed against.
struct Fold {
    index: DiagnosticsIndex,
    stamps: BTreeMap<EntryId, u64>,
}

struct Inner {
    state: Mutex<EngineState>,
    fold: Mutex<Fold>,
    /// Entries scheduled but not yet folded; `idle` fires at zero.
    pending: Mutex<usize>,
    idle: Condvar,
    /// Set on drop: still-queued check jobs become no-ops (they only
    /// release their pending slot), so a shared runtime is handed back
    /// promptly.
    shutdown: AtomicBool,
    /// Checks completed (panicking checks don't count).
    checks_run: AtomicU64,
    catalog: Arc<CheckCatalog>,
    delta_sink: Mutex<Option<DeltaSink>>,
    /// When the checker is a tenant of a shared [`Runtime`], every
    /// folded check publishes [`HealthReport::Lint`] under this name.
    runtime_channel: Option<(Arc<RuntimeHealth>, String)>,
}

/// Releases one pending slot when the check job ends — **including by
/// panic**. The pool catches the unwind and keeps its worker; this guard
/// keeps `wait_idle` from hanging on the slot the panicked check never
/// folded.
struct PendingGuard<'a>(&'a Inner);

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        let mut pending = lock(&self.0.pending);
        *pending -= 1;
        if *pending == 0 {
            self.0.idle.notify_all();
        }
    }
}

impl Inner {
    /// One scheduled check, run as a pool job.
    fn run_one(&self, id: EntryId) {
        let _slot = PendingGuard(self);
        if self.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Check against the freshest state (≥ the version that
        // scheduled this entry) without holding any engine lock.
        let (snapshot, version) = {
            let state = lock(&self.state);
            (state.snapshot.clone(), state.version)
        };
        let diagnostics = snapshot
            .records
            .get(&id)
            .map(|record| check_entry(&snapshot, &id, record, &self.catalog))
            .unwrap_or_default();
        let (folded, entries_with_diagnostics) = {
            let mut fold = lock(&self.fold);
            let stamp = fold.stamps.get(&id).copied().unwrap_or(0);
            if version >= stamp {
                fold.stamps.insert(id.clone(), version);
                fold.index.set_entry(&id, diagnostics.clone());
            }
            (version >= stamp, fold.index.entries().count())
        };
        self.checks_run.fetch_add(1, Ordering::Relaxed);
        if folded {
            let sink = lock(&self.delta_sink).clone();
            if let Some(sink) = sink {
                sink(&id, &diagnostics);
            }
        }
        if let Some((health, component)) = &self.runtime_channel {
            health.report(
                component,
                HealthReport::Lint {
                    checks_run: self.checks_run.load(Ordering::Relaxed),
                    entries_with_diagnostics,
                },
            );
        }
    }
}

/// The live law-checking service; see the module docs. Implements
/// [`EventSink`], so it plugs into `Repository::subscribe(_with_backfill)`,
/// `Replica::subscribe` and `Federation::subscribe` unchanged; the
/// `rebased` notification (replica checkpoint crossings, initial
/// backfill) triggers a full re-check.
pub struct LawChecker {
    inner: Arc<Inner>,
    runtime: Arc<Runtime>,
}

impl std::fmt::Debug for LawChecker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LawChecker")
            .field("workers", &self.runtime.pool_stats().threads)
            .field("pending", &*lock(&self.inner.pending))
            .finish()
    }
}

impl LawChecker {
    /// A checker over an initially empty state with two workers (on a
    /// private `bx-lint` [`Runtime`]).
    pub fn new(catalog: Arc<CheckCatalog>) -> LawChecker {
        LawChecker::with_workers(catalog, 2)
    }

    /// A checker with an explicit private worker-pool size (at least
    /// one).
    pub fn with_workers(catalog: Arc<CheckCatalog>, workers: usize) -> LawChecker {
        LawChecker::build(catalog, Runtime::named("bx-lint", workers), None)
    }

    /// A checker that runs its checks as a tenant of an existing shared
    /// [`Runtime`], publishing [`HealthReport::Lint`] on the runtime's
    /// unified health channel under `component` after every check.
    pub fn on_runtime(
        catalog: Arc<CheckCatalog>,
        runtime: &Arc<Runtime>,
        component: &str,
    ) -> LawChecker {
        LawChecker::build(catalog, Arc::clone(runtime), Some(component))
    }

    fn build(
        catalog: Arc<CheckCatalog>,
        runtime: Arc<Runtime>,
        component: Option<&str>,
    ) -> LawChecker {
        let inner = Arc::new(Inner {
            state: Mutex::new(EngineState {
                snapshot: Arc::new(RepositorySnapshot::empty("")),
                deps: DepMap::default(),
                version: 0,
            }),
            fold: Mutex::new(Fold {
                index: DiagnosticsIndex::default(),
                stamps: BTreeMap::new(),
            }),
            pending: Mutex::new(0),
            idle: Condvar::new(),
            shutdown: AtomicBool::new(false),
            checks_run: AtomicU64::new(0),
            catalog,
            delta_sink: Mutex::new(None),
            runtime_channel: component
                .map(|component| (Arc::clone(runtime.health()), component.to_string())),
        });
        LawChecker { inner, runtime }
    }

    /// Push `(entry, findings)` deltas to `sink` as checks fold in (the
    /// LSP-style notification hook). Called on worker threads, outside
    /// every engine lock; replaces any previous sink.
    pub fn set_delta_sink(&self, sink: DeltaSink) {
        *lock(&self.inner.delta_sink) = Some(sink);
    }

    fn schedule(&self, affected: BTreeSet<EntryId>) {
        if affected.is_empty() {
            return;
        }
        // Pending is raised before the pool sees the work, so a
        // `wait_idle` racing this call can never observe zero between
        // enqueue and check.
        *lock(&self.inner.pending) += affected.len();
        for id in affected {
            let inner = self.inner.clone();
            self.runtime.execute(move || inner.run_one(id));
        }
    }

    /// Checks completed since construction (pool jobs that panicked
    /// don't count — the pool catches them and the worker survives).
    pub fn checks_run(&self) -> u64 {
        self.inner.checks_run.load(Ordering::Relaxed)
    }

    /// Block until every scheduled check has folded into the index.
    pub fn wait_idle(&self) {
        let mut pending = lock(&self.inner.pending);
        while *pending > 0 {
            pending = self
                .inner
                .idle
                .wait(pending)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// A point-in-time copy of the live diagnostics. Call
    /// [`LawChecker::wait_idle`] first for a quiescent view.
    pub fn diagnostics(&self) -> DiagnosticsIndex {
        lock(&self.inner.fold).index.clone()
    }

    /// The current findings for one entry.
    pub fn diagnostics_of(&self, id: &EntryId) -> Vec<Diagnostic> {
        lock(&self.inner.fold).index.diagnostics_of(id).to_vec()
    }
}

impl EventSink for LawChecker {
    fn accept(&self, event: &RepoEvent) {
        // Publishers deliver under their commit lock: do only the
        // bookkeeping here and leave the checking to the workers.
        let affected = {
            let mut state = lock(&self.inner.state);
            let mut affected = state.deps.affected(event);
            apply_event(Arc::make_mut(&mut state.snapshot), event);
            if let Some(id) = event.touched() {
                let record = state.snapshot.records.get(id).cloned();
                state.deps.update_entry(id, record.as_ref());
                affected.extend(state.deps.affected(event));
            }
            state.version += 1;
            affected
        };
        self.schedule(affected);
    }

    fn rebased(&self, base: &RepositorySnapshot) {
        let affected = {
            let mut state = lock(&self.inner.state);
            state.snapshot = Arc::new(base.clone());
            state.deps = DepMap::build(base);
            state.version += 1;
            let mut ids: BTreeSet<EntryId> = base.records.keys().cloned().collect();
            // Entries the new base no longer has must have their stale
            // findings cleared; scheduling them makes the worker see an
            // absent record and remove them.
            ids.extend(lock(&self.inner.fold).index.entries().cloned());
            ids
        };
        self.schedule(affected);
    }
}

impl Drop for LawChecker {
    fn drop(&mut self) {
        // Still-queued checks become no-ops. A private runtime then
        // joins its workers when its Arc drops with this struct; a
        // shared one just gets its slots back.
        self.inner.shutdown.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bx_core::principal::{Principal, Role};
    use bx_core::repo::Repository;
    use bx_core::template::{ExampleEntry, ExampleType};
    use std::sync::Mutex as StdMutex;

    fn entry(title: &str) -> ExampleEntry {
        ExampleEntry::builder(title)
            .of_type(ExampleType::Precise)
            .overview("O.")
            .models("M.")
            .consistency("C.")
            .restoration("F.", "B.")
            .discussion("D.")
            .author("alice")
            .build()
            .unwrap()
    }

    fn catalog() -> Arc<CheckCatalog> {
        Arc::new(CheckCatalog::new())
    }

    #[test]
    fn linter_tracks_a_live_repository() {
        let r = Repository::found("bx", vec![Principal::curator("c")]);
        r.register(Principal::member("alice")).unwrap();
        let mut linter = Linter::new(r.snapshot(), catalog());
        assert!(linter.diagnostics().is_clean());

        let mut e = entry("COMPOSERS");
        e.references = vec![bx_core::template::Reference {
            citation: "entry:ghost".to_string(),
            doi: None,
        }];
        r.contribute("alice", e).unwrap();
        for event in r.drain_events() {
            linter.apply(&event);
        }
        assert_eq!(linter.diagnostics().error_count(), 1, "dangling reference");
        assert_eq!(
            linter.diagnostics(),
            &full_check(&r.snapshot(), &CheckCatalog::new()),
            "incremental ≡ full"
        );

        // The ghost target appearing clears the referencer's error
        // without the referencer itself being touched.
        r.contribute("alice", entry("GHOST")).unwrap();
        for event in r.drain_events() {
            linter.apply(&event);
        }
        assert!(linter.diagnostics().is_clean());
        assert_eq!(
            linter.diagnostics(),
            &full_check(&r.snapshot(), &CheckCatalog::new())
        );
    }

    #[test]
    fn law_checker_subscribes_checks_and_pushes_deltas() {
        let r = Repository::found("bx", vec![Principal::curator("c")]);
        r.register(Principal::member("alice")).unwrap();
        r.register(Principal::member("bob")).unwrap();

        let checker = Arc::new(LawChecker::new(catalog()));
        let deltas: Arc<StdMutex<Vec<EntryId>>> = Arc::default();
        let seen = deltas.clone();
        checker.set_delta_sink(Arc::new(move |id, _| {
            seen.lock().unwrap().push(id.clone());
        }));
        r.subscribe_with_backfill(checker.clone());

        // A reviewed entry whose reviewer lacks the role: inject the
        // approved state via the normal workflow.
        let id = r.contribute("alice", entry("COMPOSERS")).unwrap();
        r.request_review("alice", &id).unwrap();
        checker.wait_idle();
        // bob is only a Member; grant the role through the curator and
        // watch the diagnostics converge.
        r.grant_role("c", "bob", Role::Reviewer).unwrap();
        r.approve("bob", &id).unwrap();
        checker.wait_idle();
        assert!(
            checker.diagnostics().is_clean(),
            "workflow-produced states lint clean: {}",
            checker.diagnostics().report()
        );
        assert_eq!(
            checker.diagnostics(),
            full_check(&r.snapshot(), &CheckCatalog::new())
        );
        assert!(
            deltas.lock().unwrap().iter().any(|d| d == &id),
            "delta sink saw the entry"
        );
    }

    #[test]
    fn law_checker_rebases_and_clears_stale_entries() {
        let r = Repository::found("bx", vec![Principal::curator("c")]);
        r.register(Principal::member("alice")).unwrap();
        let mut bad = ExampleEntry::builder("BROKEN")
            .of_type(ExampleType::Precise)
            .models("M.")
            .consistency("C.")
            .restoration("F.", "B.")
            .discussion("D.")
            .author("alice")
            .build_unchecked();
        bad.overview = String::new();

        let checker = LawChecker::new(catalog());
        let mut tampered = r.snapshot();
        tampered.records.insert(
            EntryId::from_title("BROKEN"),
            bx_core::repo::EntryRecord {
                status: bx_core::curation::EntryStatus::Provisional,
                history: vec![bad],
            },
        );
        checker.rebased(&tampered);
        checker.wait_idle();
        assert_eq!(checker.diagnostics().error_count(), 1);

        // Re-basing onto a state without the broken entry clears it.
        checker.rebased(&r.snapshot());
        checker.wait_idle();
        assert!(checker.diagnostics().is_clean());
        assert_eq!(checker.diagnostics(), DiagnosticsIndex::default());
    }
}
