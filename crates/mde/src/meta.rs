//! Metamodels: classes, attributes, references, single inheritance.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::MdeError;

/// The type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// UTF-8 string.
    Str,
    /// 64-bit signed integer.
    Int,
    /// Boolean.
    Bool,
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrType::Str => write!(f, "Str"),
            AttrType::Int => write!(f, "Int"),
            AttrType::Bool => write!(f, "Bool"),
        }
    }
}

/// An attribute definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrDef {
    /// Feature name.
    pub name: String,
    /// Value type.
    pub ty: AttrType,
    /// Must every conforming object set it?
    pub required: bool,
}

/// A reference definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefDef {
    /// Feature name.
    pub name: String,
    /// Class the reference points to (subclasses allowed).
    pub target: String,
    /// Containment (ownership) reference?
    pub containment: bool,
    /// May it hold more than one target?
    pub many: bool,
}

/// A class definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassDef {
    /// Class name.
    pub name: String,
    /// Direct superclass, if any (single inheritance).
    pub superclass: Option<String>,
    /// Abstract classes cannot be instantiated.
    pub is_abstract: bool,
    /// Own (non-inherited) attributes.
    pub attributes: Vec<AttrDef>,
    /// Own (non-inherited) references.
    pub references: Vec<RefDef>,
}

/// A metamodel: a named set of class definitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaModel {
    name: String,
    classes: BTreeMap<String, ClassDef>,
}

/// Fluent builder for classes.
pub struct ClassBuilder {
    def: ClassDef,
}

impl ClassBuilder {
    /// Mark abstract.
    pub fn abstract_class(mut self) -> Self {
        self.def.is_abstract = true;
        self
    }

    /// Set the superclass.
    pub fn extends(mut self, superclass: &str) -> Self {
        self.def.superclass = Some(superclass.to_string());
        self
    }

    /// Add a required attribute.
    pub fn attr(mut self, name: &str, ty: AttrType) -> Self {
        self.def.attributes.push(AttrDef {
            name: name.to_string(),
            ty,
            required: true,
        });
        self
    }

    /// Add an optional attribute.
    pub fn optional_attr(mut self, name: &str, ty: AttrType) -> Self {
        self.def.attributes.push(AttrDef {
            name: name.to_string(),
            ty,
            required: false,
        });
        self
    }

    /// Add a single-valued reference.
    pub fn reference(mut self, name: &str, target: &str) -> Self {
        self.def.references.push(RefDef {
            name: name.to_string(),
            target: target.to_string(),
            containment: false,
            many: false,
        });
        self
    }

    /// Add a many-valued containment reference.
    pub fn contains_many(mut self, name: &str, target: &str) -> Self {
        self.def.references.push(RefDef {
            name: name.to_string(),
            target: target.to_string(),
            containment: true,
            many: true,
        });
        self
    }

    /// Add a many-valued non-containment reference.
    pub fn references_many(mut self, name: &str, target: &str) -> Self {
        self.def.references.push(RefDef {
            name: name.to_string(),
            target: target.to_string(),
            containment: false,
            many: true,
        });
        self
    }
}

impl MetaModel {
    /// An empty metamodel.
    pub fn new(name: &str) -> MetaModel {
        MetaModel {
            name: name.to_string(),
            classes: BTreeMap::new(),
        }
    }

    /// Start building a class.
    pub fn class(name: &str) -> ClassBuilder {
        ClassBuilder {
            def: ClassDef {
                name: name.to_string(),
                superclass: None,
                is_abstract: false,
                attributes: Vec::new(),
                references: Vec::new(),
            },
        }
    }

    /// Add a built class, rejecting duplicates.
    pub fn add_class(&mut self, builder: ClassBuilder) -> Result<(), MdeError> {
        let def = builder.def;
        if self.classes.contains_key(&def.name) {
            return Err(MdeError::Duplicate(def.name));
        }
        self.classes.insert(def.name.clone(), def);
        Ok(())
    }

    /// The metamodel's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Look up a class.
    pub fn class_def(&self, name: &str) -> Result<&ClassDef, MdeError> {
        self.classes
            .get(name)
            .ok_or_else(|| MdeError::UnknownClass(name.to_string()))
    }

    /// All class definitions, sorted by name.
    pub fn classes(&self) -> impl Iterator<Item = &ClassDef> {
        self.classes.values()
    }

    /// The inheritance chain from `name` up to the root (inclusive),
    /// erroring on cycles or unknown classes.
    pub fn ancestry(&self, name: &str) -> Result<Vec<&ClassDef>, MdeError> {
        let mut chain = Vec::new();
        let mut cur = Some(name.to_string());
        while let Some(c) = cur {
            if chain.iter().any(|d: &&ClassDef| d.name == c) {
                return Err(MdeError::InheritanceCycle(c));
            }
            let def = self.class_def(&c)?;
            chain.push(def);
            cur = def.superclass.clone();
        }
        Ok(chain)
    }

    /// All attributes of a class including inherited ones, supers first.
    pub fn all_attributes(&self, class: &str) -> Result<Vec<&AttrDef>, MdeError> {
        let mut chain = self.ancestry(class)?;
        chain.reverse();
        Ok(chain.iter().flat_map(|d| d.attributes.iter()).collect())
    }

    /// All references of a class including inherited ones, supers first.
    pub fn all_references(&self, class: &str) -> Result<Vec<&RefDef>, MdeError> {
        let mut chain = self.ancestry(class)?;
        chain.reverse();
        Ok(chain.iter().flat_map(|d| d.references.iter()).collect())
    }

    /// Is `sub` the same as or a (transitive) subclass of `sup`?
    pub fn is_subclass(&self, sub: &str, sup: &str) -> Result<bool, MdeError> {
        Ok(self.ancestry(sub)?.iter().any(|d| d.name == sup))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mm() -> MetaModel {
        let mut m = MetaModel::new("uml");
        m.add_class(
            MetaModel::class("NamedElement")
                .abstract_class()
                .attr("name", AttrType::Str),
        )
        .unwrap();
        m.add_class(
            MetaModel::class("Class")
                .extends("NamedElement")
                .attr("persistent", AttrType::Bool)
                .contains_many("attributes", "Attribute"),
        )
        .unwrap();
        m.add_class(
            MetaModel::class("Attribute")
                .extends("NamedElement")
                .attr("primary", AttrType::Bool)
                .reference("type", "Class"),
        )
        .unwrap();
        m
    }

    #[test]
    fn duplicate_class_rejected() {
        let mut m = mm();
        assert!(matches!(
            m.add_class(MetaModel::class("Class")),
            Err(MdeError::Duplicate(_))
        ));
    }

    #[test]
    fn ancestry_and_inheritance() {
        let m = mm();
        let chain: Vec<&str> = m
            .ancestry("Class")
            .unwrap()
            .iter()
            .map(|d| d.name.as_str())
            .collect();
        assert_eq!(chain, vec!["Class", "NamedElement"]);
        assert!(m.is_subclass("Class", "NamedElement").unwrap());
        assert!(!m.is_subclass("NamedElement", "Class").unwrap());
        assert!(m.is_subclass("Class", "Class").unwrap());
    }

    #[test]
    fn inherited_features_collected() {
        let m = mm();
        let attrs: Vec<&str> = m
            .all_attributes("Class")
            .unwrap()
            .iter()
            .map(|a| a.name.as_str())
            .collect();
        assert_eq!(attrs, vec!["name", "persistent"]);
        let refs: Vec<&str> = m
            .all_references("Attribute")
            .unwrap()
            .iter()
            .map(|r| r.name.as_str())
            .collect();
        assert_eq!(refs, vec!["type"]);
    }

    #[test]
    fn cycle_detected() {
        let mut m = MetaModel::new("cyclic");
        m.add_class(MetaModel::class("A").extends("B")).unwrap();
        m.add_class(MetaModel::class("B").extends("A")).unwrap();
        assert!(matches!(
            m.ancestry("A"),
            Err(MdeError::InheritanceCycle(_))
        ));
    }

    #[test]
    fn unknown_class_error() {
        let m = mm();
        assert!(matches!(
            m.class_def("Nope"),
            Err(MdeError::UnknownClass(_))
        ));
        assert!(m.ancestry("Nope").is_err());
    }

    #[test]
    fn classes_iterate_sorted() {
        let m = mm();
        let names: Vec<&str> = m.classes().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["Attribute", "Class", "NamedElement"]);
    }
}
