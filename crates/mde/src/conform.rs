//! Conformance checking: does an object model conform to a metamodel?

use std::fmt;

use crate::meta::MetaModel;
use crate::object::{ObjId, ObjectModel};

/// One conformance violation. The checker reports *all* issues rather than
/// stopping at the first, so reviewers (human or mechanical) see the whole
/// picture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConformanceIssue {
    /// The object's class is not defined in the metamodel.
    UnknownClass { object: ObjId, class: String },
    /// The object's class is abstract.
    AbstractClass { object: ObjId, class: String },
    /// A required attribute is unset.
    MissingAttribute { object: ObjId, attribute: String },
    /// An attribute has the wrong type.
    WrongAttributeType {
        object: ObjId,
        attribute: String,
        expected: String,
        found: String,
    },
    /// An attribute not declared on the class (or its supers) is set.
    UndeclaredAttribute { object: ObjId, attribute: String },
    /// A reference not declared on the class is set.
    UndeclaredReference { object: ObjId, reference: String },
    /// A reference target does not exist in the model.
    DanglingReference {
        object: ObjId,
        reference: String,
        target: ObjId,
    },
    /// A reference target's class is incompatible.
    WrongTargetClass {
        object: ObjId,
        reference: String,
        target: ObjId,
        expected: String,
    },
    /// A single-valued reference holds several targets.
    TooManyTargets {
        object: ObjId,
        reference: String,
        count: usize,
    },
    /// An object is contained by more than one container.
    MultipleContainers { object: ObjId },
}

impl fmt::Display for ConformanceIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConformanceIssue::UnknownClass { object, class } => {
                write!(f, "{object}: unknown class `{class}`")
            }
            ConformanceIssue::AbstractClass { object, class } => {
                write!(f, "{object}: class `{class}` is abstract")
            }
            ConformanceIssue::MissingAttribute { object, attribute } => {
                write!(f, "{object}: required attribute `{attribute}` unset")
            }
            ConformanceIssue::WrongAttributeType {
                object,
                attribute,
                expected,
                found,
            } => {
                write!(
                    f,
                    "{object}: attribute `{attribute}` is {found}, expected {expected}"
                )
            }
            ConformanceIssue::UndeclaredAttribute { object, attribute } => {
                write!(f, "{object}: attribute `{attribute}` is not declared")
            }
            ConformanceIssue::UndeclaredReference { object, reference } => {
                write!(f, "{object}: reference `{reference}` is not declared")
            }
            ConformanceIssue::DanglingReference {
                object,
                reference,
                target,
            } => {
                write!(
                    f,
                    "{object}: reference `{reference}` targets missing {target}"
                )
            }
            ConformanceIssue::WrongTargetClass {
                object,
                reference,
                target,
                expected,
            } => {
                write!(
                    f,
                    "{object}: `{reference}` target {target} is not a {expected}"
                )
            }
            ConformanceIssue::TooManyTargets {
                object,
                reference,
                count,
            } => {
                write!(
                    f,
                    "{object}: single-valued `{reference}` holds {count} targets"
                )
            }
            ConformanceIssue::MultipleContainers { object } => {
                write!(f, "{object}: contained by more than one container")
            }
        }
    }
}

/// Check conformance, returning every violation found (empty = conforms).
pub fn check_conformance(meta: &MetaModel, model: &ObjectModel) -> Vec<ConformanceIssue> {
    let mut issues = Vec::new();
    let mut containment_counts: std::collections::BTreeMap<ObjId, usize> =
        std::collections::BTreeMap::new();

    for obj in model.objects() {
        let class = match meta.class_def(&obj.class) {
            Err(_) => {
                issues.push(ConformanceIssue::UnknownClass {
                    object: obj.id,
                    class: obj.class.clone(),
                });
                continue;
            }
            Ok(c) => c,
        };
        if class.is_abstract {
            issues.push(ConformanceIssue::AbstractClass {
                object: obj.id,
                class: obj.class.clone(),
            });
        }

        let attrs = match meta.all_attributes(&obj.class) {
            Ok(a) => a,
            Err(_) => continue, // inheritance problem reported via class lookup
        };
        let refs = match meta.all_references(&obj.class) {
            Ok(r) => r,
            Err(_) => continue,
        };

        // Declared attributes: presence and type.
        for attr in &attrs {
            match obj.attr(&attr.name) {
                None if attr.required => issues.push(ConformanceIssue::MissingAttribute {
                    object: obj.id,
                    attribute: attr.name.clone(),
                }),
                Some(v) if v.type_of() != attr.ty => {
                    issues.push(ConformanceIssue::WrongAttributeType {
                        object: obj.id,
                        attribute: attr.name.clone(),
                        expected: attr.ty.to_string(),
                        found: v.type_of().to_string(),
                    })
                }
                _ => {}
            }
        }
        // Undeclared attributes.
        for name in obj.attrs.keys() {
            if !attrs.iter().any(|a| a.name == *name) {
                issues.push(ConformanceIssue::UndeclaredAttribute {
                    object: obj.id,
                    attribute: name.clone(),
                });
            }
        }

        // References.
        for (name, targets) in &obj.refs {
            let decl = refs.iter().find(|r| r.name == *name);
            let Some(decl) = decl else {
                issues.push(ConformanceIssue::UndeclaredReference {
                    object: obj.id,
                    reference: name.clone(),
                });
                continue;
            };
            if !decl.many && targets.len() > 1 {
                issues.push(ConformanceIssue::TooManyTargets {
                    object: obj.id,
                    reference: name.clone(),
                    count: targets.len(),
                });
            }
            for &t in targets {
                match model.get(t) {
                    Err(_) => issues.push(ConformanceIssue::DanglingReference {
                        object: obj.id,
                        reference: name.clone(),
                        target: t,
                    }),
                    Ok(target_obj) => {
                        let compatible = meta
                            .is_subclass(&target_obj.class, &decl.target)
                            .unwrap_or(false);
                        if !compatible {
                            issues.push(ConformanceIssue::WrongTargetClass {
                                object: obj.id,
                                reference: name.clone(),
                                target: t,
                                expected: decl.target.clone(),
                            });
                        }
                        if decl.containment {
                            *containment_counts.entry(t).or_insert(0) += 1;
                        }
                    }
                }
            }
        }
    }

    for (object, count) in containment_counts {
        if count > 1 {
            issues.push(ConformanceIssue::MultipleContainers { object });
        }
    }
    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::AttrType;
    use crate::object::ObjectModel;

    fn mm() -> MetaModel {
        let mut m = MetaModel::new("uml");
        m.add_class(
            MetaModel::class("NamedElement")
                .abstract_class()
                .attr("name", AttrType::Str),
        )
        .unwrap();
        m.add_class(
            MetaModel::class("Class")
                .extends("NamedElement")
                .attr("persistent", AttrType::Bool)
                .contains_many("attributes", "Attribute"),
        )
        .unwrap();
        m.add_class(
            MetaModel::class("Attribute")
                .extends("NamedElement")
                .optional_attr("primary", AttrType::Bool)
                .reference("type", "Class"),
        )
        .unwrap();
        m
    }

    fn good_model() -> ObjectModel {
        let mut model = ObjectModel::new("uml");
        let c = model.add("Class");
        model.set_attr(c, "name", "Person").unwrap();
        model.set_attr(c, "persistent", true).unwrap();
        let a = model.add("Attribute");
        model.set_attr(a, "name", "age").unwrap();
        model.add_ref(c, "attributes", a).unwrap();
        model.add_ref(a, "type", c).unwrap();
        model
    }

    #[test]
    fn conforming_model_has_no_issues() {
        assert!(check_conformance(&mm(), &good_model()).is_empty());
    }

    #[test]
    fn missing_required_attribute() {
        let mut model = good_model();
        let c = model.add("Class"); // no name, no persistent
        let issues = check_conformance(&mm(), &model);
        assert!(issues.iter().any(|i| matches!(
            i,
            ConformanceIssue::MissingAttribute { object, attribute }
                if *object == c && attribute == "name"
        )));
        assert!(issues.iter().any(|i| matches!(
            i,
            ConformanceIssue::MissingAttribute { attribute, .. } if attribute == "persistent"
        )));
    }

    #[test]
    fn wrong_attribute_type() {
        let mut model = good_model();
        let c = model.add("Class");
        model.set_attr(c, "name", 42i64).unwrap();
        model.set_attr(c, "persistent", true).unwrap();
        let issues = check_conformance(&mm(), &model);
        assert!(issues
            .iter()
            .any(|i| matches!(i, ConformanceIssue::WrongAttributeType { .. })));
    }

    #[test]
    fn undeclared_features_flagged() {
        let mut model = good_model();
        let c = model.objects().next().unwrap().id;
        model.set_attr(c, "colour", "red").unwrap();
        let other = model.add("Attribute");
        model.set_attr(other, "name", "x").unwrap();
        model.add_ref(c, "enemies", other).unwrap();
        let issues = check_conformance(&mm(), &model);
        assert!(issues
            .iter()
            .any(|i| matches!(i, ConformanceIssue::UndeclaredAttribute { .. })));
        assert!(issues
            .iter()
            .any(|i| matches!(i, ConformanceIssue::UndeclaredReference { .. })));
    }

    #[test]
    fn abstract_instantiation_flagged() {
        let mut model = ObjectModel::new("uml");
        let n = model.add("NamedElement");
        model.set_attr(n, "name", "x").unwrap();
        let issues = check_conformance(&mm(), &model);
        assert!(issues
            .iter()
            .any(|i| matches!(i, ConformanceIssue::AbstractClass { .. })));
    }

    #[test]
    fn unknown_class_flagged() {
        let mut model = ObjectModel::new("uml");
        model.add("Banana");
        let issues = check_conformance(&mm(), &model);
        assert_eq!(issues.len(), 1);
        assert!(matches!(issues[0], ConformanceIssue::UnknownClass { .. }));
    }

    #[test]
    fn dangling_and_wrong_class_targets() {
        let mut model = good_model();
        let a = model.add("Attribute");
        model.set_attr(a, "name", "y").unwrap();
        // "type" must point at a Class, not an Attribute.
        model.add_ref(a, "type", a).unwrap();
        let issues = check_conformance(&mm(), &model);
        assert!(issues
            .iter()
            .any(|i| matches!(i, ConformanceIssue::WrongTargetClass { .. })));

        // Dangle: remove the class out from under the good attribute.
        let c = model.objects().find(|o| o.class == "Class").unwrap().id;
        model.remove(c);
        let issues = check_conformance(&mm(), &model);
        assert!(issues
            .iter()
            .any(|i| matches!(i, ConformanceIssue::DanglingReference { .. })));
    }

    #[test]
    fn single_valued_multiplicity_enforced() {
        let mut model = good_model();
        let a = model.objects().find(|o| o.class == "Attribute").unwrap().id;
        let c = model.objects().find(|o| o.class == "Class").unwrap().id;
        model.add_ref(a, "type", c).unwrap(); // second target on single-valued ref
        let issues = check_conformance(&mm(), &model);
        assert!(issues
            .iter()
            .any(|i| matches!(i, ConformanceIssue::TooManyTargets { count: 2, .. })));
    }

    #[test]
    fn multiple_containers_flagged() {
        let mut model = good_model();
        let a = model.objects().find(|o| o.class == "Attribute").unwrap().id;
        let c2 = model.add("Class");
        model.set_attr(c2, "name", "Other").unwrap();
        model.set_attr(c2, "persistent", false).unwrap();
        model.add_ref(c2, "attributes", a).unwrap(); // a now contained twice
        let issues = check_conformance(&mm(), &model);
        assert!(issues
            .iter()
            .any(|i| matches!(i, ConformanceIssue::MultipleContainers { .. })));
    }

    #[test]
    fn issues_render() {
        let mut model = ObjectModel::new("uml");
        model.add("Banana");
        for i in check_conformance(&mm(), &model) {
            assert!(!i.to_string().is_empty());
        }
    }
}
