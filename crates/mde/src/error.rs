//! Error type for the MDE substrate.

use std::fmt;

/// Errors raised when building or manipulating (meta)models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MdeError {
    /// A class name was not found in the metamodel.
    UnknownClass(String),
    /// A feature (attribute or reference) was not found on a class.
    UnknownFeature {
        /// The class.
        class: String,
        /// The feature.
        feature: String,
    },
    /// An object id was not found in the model.
    UnknownObject(u64),
    /// A class or feature was defined twice.
    Duplicate(String),
    /// Inheritance forms a cycle.
    InheritanceCycle(String),
}

impl fmt::Display for MdeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MdeError::UnknownClass(c) => write!(f, "unknown class `{c}`"),
            MdeError::UnknownFeature { class, feature } => {
                write!(f, "class `{class}` has no feature `{feature}`")
            }
            MdeError::UnknownObject(id) => write!(f, "unknown object #{id}"),
            MdeError::Duplicate(what) => write!(f, "duplicate definition of `{what}`"),
            MdeError::InheritanceCycle(c) => {
                write!(f, "inheritance cycle through class `{c}`")
            }
        }
    }
}

impl std::error::Error for MdeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(MdeError::UnknownClass("C".into()).to_string().contains("C"));
        assert!(MdeError::UnknownFeature {
            class: "C".into(),
            feature: "f".into()
        }
        .to_string()
        .contains("f"));
        assert!(MdeError::UnknownObject(3).to_string().contains("#3"));
        assert!(MdeError::Duplicate("x".into()).to_string().contains("x"));
        assert!(MdeError::InheritanceCycle("A".into())
            .to_string()
            .contains("A"));
    }
}
