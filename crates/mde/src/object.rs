//! Object models: identified objects with attribute values and references.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::MdeError;
use crate::meta::AttrType;

/// An object identifier, unique within one [`ObjectModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u64);

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An attribute value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AttrValue {
    /// String value.
    Str(String),
    /// Integer value.
    Int(i64),
    /// Boolean value.
    Bool(bool),
}

impl AttrValue {
    /// The value's type.
    pub fn type_of(&self) -> AttrType {
        match self {
            AttrValue::Str(_) => AttrType::Str,
            AttrValue::Int(_) => AttrType::Int,
            AttrValue::Bool(_) => AttrType::Bool,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer accessor.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            AttrValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AttrValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::Str(s.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(s: String) -> Self {
        AttrValue::Str(s)
    }
}

impl From<i64> for AttrValue {
    fn from(i: i64) -> Self {
        AttrValue::Int(i)
    }
}

impl From<bool> for AttrValue {
    fn from(b: bool) -> Self {
        AttrValue::Bool(b)
    }
}

/// An object: a class instance with attribute and reference slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Object {
    /// The object's identity.
    pub id: ObjId,
    /// Its (concrete) class name.
    pub class: String,
    /// Attribute slots.
    pub attrs: BTreeMap<String, AttrValue>,
    /// Reference slots (ordered target lists).
    pub refs: BTreeMap<String, Vec<ObjId>>,
}

impl Object {
    /// Attribute lookup.
    pub fn attr(&self, name: &str) -> Option<&AttrValue> {
        self.attrs.get(name)
    }

    /// Reference targets (empty slice when unset).
    pub fn targets(&self, name: &str) -> &[ObjId] {
        self.refs.get(name).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// A model: a bag of objects conforming (one hopes) to some metamodel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectModel {
    meta_name: String,
    objects: BTreeMap<ObjId, Object>,
    next_id: u64,
}

impl ObjectModel {
    /// An empty model claiming conformance to the named metamodel.
    pub fn new(meta_name: &str) -> ObjectModel {
        ObjectModel {
            meta_name: meta_name.to_string(),
            objects: BTreeMap::new(),
            next_id: 1,
        }
    }

    /// The metamodel this model claims to conform to.
    pub fn meta_name(&self) -> &str {
        &self.meta_name
    }

    /// Create an object of a class, returning its id.
    pub fn add(&mut self, class: &str) -> ObjId {
        let id = ObjId(self.next_id);
        self.next_id += 1;
        self.objects.insert(
            id,
            Object {
                id,
                class: class.to_string(),
                attrs: BTreeMap::new(),
                refs: BTreeMap::new(),
            },
        );
        id
    }

    /// Set an attribute.
    pub fn set_attr(
        &mut self,
        id: ObjId,
        name: &str,
        value: impl Into<AttrValue>,
    ) -> Result<(), MdeError> {
        let obj = self
            .objects
            .get_mut(&id)
            .ok_or(MdeError::UnknownObject(id.0))?;
        obj.attrs.insert(name.to_string(), value.into());
        Ok(())
    }

    /// Append a reference target.
    pub fn add_ref(&mut self, id: ObjId, name: &str, target: ObjId) -> Result<(), MdeError> {
        if !self.objects.contains_key(&target) {
            return Err(MdeError::UnknownObject(target.0));
        }
        let obj = self
            .objects
            .get_mut(&id)
            .ok_or(MdeError::UnknownObject(id.0))?;
        obj.refs.entry(name.to_string()).or_default().push(target);
        Ok(())
    }

    /// Remove an object (dangling references are left for conformance
    /// checking to flag).
    pub fn remove(&mut self, id: ObjId) -> Option<Object> {
        self.objects.remove(&id)
    }

    /// Object lookup.
    pub fn get(&self, id: ObjId) -> Result<&Object, MdeError> {
        self.objects.get(&id).ok_or(MdeError::UnknownObject(id.0))
    }

    /// All objects, in id order.
    pub fn objects(&self) -> impl Iterator<Item = &Object> {
        self.objects.values()
    }

    /// Objects of exactly the given class, in id order.
    pub fn of_class<'m>(&'m self, class: &'m str) -> impl Iterator<Item = &'m Object> + 'm {
        self.objects.values().filter(move |o| o.class == class)
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when there are no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query_objects() {
        let mut m = ObjectModel::new("uml");
        let a = m.add("Class");
        let b = m.add("Class");
        assert_ne!(a, b);
        assert_eq!(m.len(), 2);
        assert_eq!(m.of_class("Class").count(), 2);
        assert_eq!(m.of_class("Attribute").count(), 0);
    }

    #[test]
    fn attrs_and_refs() {
        let mut m = ObjectModel::new("uml");
        let c = m.add("Class");
        let a = m.add("Attribute");
        m.set_attr(c, "name", "Person").unwrap();
        m.set_attr(c, "persistent", true).unwrap();
        m.add_ref(c, "attributes", a).unwrap();
        let obj = m.get(c).unwrap();
        assert_eq!(obj.attr("name").unwrap().as_str(), Some("Person"));
        assert_eq!(obj.attr("persistent").unwrap().as_bool(), Some(true));
        assert_eq!(obj.targets("attributes"), &[a]);
        assert!(obj.targets("unset").is_empty());
    }

    #[test]
    fn unknown_object_errors() {
        let mut m = ObjectModel::new("uml");
        let ghost = ObjId(99);
        assert!(m.set_attr(ghost, "x", 1i64).is_err());
        assert!(m.get(ghost).is_err());
        let c = m.add("Class");
        assert!(m.add_ref(c, "r", ghost).is_err());
        assert!(m.add_ref(ghost, "r", c).is_err());
    }

    #[test]
    fn remove_returns_object() {
        let mut m = ObjectModel::new("uml");
        let c = m.add("Class");
        let obj = m.remove(c).unwrap();
        assert_eq!(obj.class, "Class");
        assert!(m.remove(c).is_none());
        assert!(m.is_empty());
    }

    #[test]
    fn attr_value_accessors() {
        assert_eq!(AttrValue::from("x").as_str(), Some("x"));
        assert_eq!(AttrValue::from(3i64).as_int(), Some(3));
        assert_eq!(AttrValue::from(true).as_bool(), Some(true));
        assert_eq!(AttrValue::from("x").as_int(), None);
        assert_eq!(AttrValue::from(3i64).type_of(), AttrType::Int);
    }

    #[test]
    fn ids_are_stable_and_ordered() {
        let mut m = ObjectModel::new("uml");
        let ids: Vec<ObjId> = (0..5).map(|_| m.add("Class")).collect();
        let listed: Vec<ObjId> = m.objects().map(|o| o.id).collect();
        assert_eq!(ids, listed);
        assert_eq!(ObjId(3).to_string(), "#3");
    }
}
