//! # bx-mde
//!
//! A miniature model-driven-engineering substrate: enough of a
//! metamodel/model framework to host the MDE-flavoured bx examples the BX
//! 2014 repository paper draws from (the "notorious" UML-class-diagram to
//! RDBMS-schema transformation, Families↔Persons, …) without pulling in an
//! actual EMF.
//!
//! * [`meta`] — metamodels: classes with single inheritance, typed
//!   attributes, references with containment and multiplicity;
//! * [`object`] — object models: identified objects with attribute values
//!   and reference slots;
//! * [`conform`] — conformance checking of an object model against a
//!   metamodel, reporting all violations.

pub mod conform;
pub mod error;
pub mod meta;
pub mod object;

pub use conform::{check_conformance, ConformanceIssue};
pub use error::MdeError;
pub use meta::{AttrDef, AttrType, ClassDef, MetaModel, RefDef};
pub use object::{AttrValue, ObjId, Object, ObjectModel};
