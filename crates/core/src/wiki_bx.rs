//! §5.4, dogfooded: "maintaining it in a wiki-markup-independent form, and
//! maintaining consistency between that and the wiki via a bidirectional
//! transformation, might add value." This module *is* that bx.
//!
//! The transformation relates a [`RepositorySnapshot`] (the structured,
//! markup-independent form) and a [`WikiSite`] (pages of markup):
//!
//! * **Consistency**: every entry's latest version renders exactly to the
//!   current content of its `examples:<slug>` page, and there are no
//!   orphan example pages.
//! * **Forward** (repository authoritative): render every entry onto the
//!   site (revision-preserving — unchanged pages are untouched), delete
//!   orphan example pages.
//! * **Backward** (wiki authoritative): parse every example page; entries
//!   whose page is unchanged keep their whole record (status, history)
//!   untouched; changed pages append a new version; orphan entries are
//!   removed; unparseable pages are left out (and reported by
//!   [`WikiBx::try_bwd`]).

use bx_theory::Bx;

use crate::curation::EntryStatus;
use crate::error::RepoError;
use crate::repo::{EntryId, EntryRecord, RepositorySnapshot};
use crate::wiki::{parse_entry, render_entry, WikiSite};

/// The repository↔wiki bidirectional transformation.
#[derive(Debug, Clone, Default)]
pub struct WikiBx;

impl WikiBx {
    /// Construct the transformation.
    pub fn new() -> WikiBx {
        WikiBx
    }

    /// Backward restoration that also reports pages that failed to parse
    /// (the total [`Bx::bwd`] silently keeps the old record for those).
    pub fn try_bwd(
        &self,
        snapshot: &RepositorySnapshot,
        site: &WikiSite,
    ) -> (RepositorySnapshot, Vec<RepoError>) {
        let mut out = RepositorySnapshot {
            name: snapshot.name.clone(),
            records: Default::default(),
            accounts: snapshot.accounts.clone(),
        };
        let mut errors = Vec::new();

        for page in site.example_pages() {
            let Some(content) = site.current(page) else {
                continue;
            };
            let slug = page.trim_start_matches("examples:").to_string();
            let id = EntryId(slug);
            let old = snapshot.records.get(&id);

            // Unchanged page: keep the record verbatim (hippocraticness).
            if let Some(record) = old {
                if render_entry(record.latest()) == content {
                    out.records.insert(id, record.clone());
                    continue;
                }
            }

            match parse_entry(page, content) {
                Ok(parsed) => {
                    let record = match old {
                        Some(record) => {
                            let mut record = record.clone();
                            record.history.push(parsed);
                            record.status = EntryStatus::Provisional;
                            record
                        }
                        None => EntryRecord {
                            status: EntryStatus::Provisional,
                            history: vec![parsed],
                        },
                    };
                    out.records.insert(id, record);
                }
                Err(e) => {
                    errors.push(e);
                    // Keep the old record if we had one; a broken page
                    // should not destroy repository content.
                    if let Some(record) = old {
                        out.records.insert(id, record.clone());
                    }
                }
            }
        }
        (out, errors)
    }
}

impl WikiBx {
    /// Dirty-tracked forward sync: bring only the pages of `dirty` entries
    /// up to date, in place. Entries present in the snapshot are
    /// re-rendered; dirty ids absent from the snapshot have their pages
    /// deleted. Untouched pages are never re-rendered (or even looked at).
    ///
    /// When `dirty` covers every entry whose record changed since `site`
    /// was last consistent with the repository, the result equals the
    /// total [`Bx::fwd`] — the dirty set is exactly what
    /// [`crate::event::dirty_set`] extracts from the event stream
    /// ([`crate::repo::Repository::drain_events`], or the per-event
    /// pushes a [`crate::event::EventSink`] receives — this is how a
    /// [`crate::replica::Replica`] keeps its wiki converging with the
    /// primary's). The total `fwd`/`bwd` remain the law-checked
    /// semantics; this is the scaling fast path.
    pub fn sync_changed(
        &self,
        snapshot: &RepositorySnapshot,
        site: &mut WikiSite,
        dirty: &std::collections::BTreeSet<EntryId>,
    ) {
        for id in dirty {
            match snapshot.records.get(id) {
                Some(record) => site.set_page(&id.page_name(), render_entry(record.latest())),
                None => {
                    site.delete_page(&id.page_name());
                }
            }
        }
    }

    /// Full publication: forward-sync every entry page *and* regenerate
    /// the `examples:home` index and the `glossary` page. The extra pages
    /// live outside the bx's consistency relation (which governs entry
    /// pages only), so publication remains hippocratic at the entry level
    /// while keeping the navigational pages fresh.
    pub fn publish(&self, snapshot: &RepositorySnapshot, site: &WikiSite) -> WikiSite {
        let mut out = self.fwd(snapshot, site);
        let entries: Vec<&crate::template::ExampleEntry> =
            snapshot.records.values().map(|r| r.latest()).collect();
        out.set_page(
            "examples:home",
            crate::wiki::render::render_home(&snapshot.name, &entries),
        );
        out.set_page("glossary", crate::wiki::render::render_glossary());
        out
    }
}

impl Bx<RepositorySnapshot, WikiSite> for WikiBx {
    fn name(&self) -> &str {
        "repository<->wiki"
    }

    fn consistent(&self, snapshot: &RepositorySnapshot, site: &WikiSite) -> bool {
        // Every entry page matches its rendering…
        for (id, record) in &snapshot.records {
            match site.current(&id.page_name()) {
                Some(content) if content == render_entry(record.latest()) => {}
                _ => return false,
            }
        }
        // …and no orphan example pages exist.
        site.example_pages().len() == snapshot.records.len()
    }

    fn fwd(&self, snapshot: &RepositorySnapshot, site: &WikiSite) -> WikiSite {
        let mut out = site.clone();
        let live: std::collections::BTreeSet<String> =
            snapshot.records.keys().map(EntryId::page_name).collect();
        // Delete orphans (collect names first: borrow discipline).
        let orphans: Vec<String> = out
            .example_pages()
            .into_iter()
            .filter(|p| !live.contains(*p))
            .map(str::to_string)
            .collect();
        for page in orphans {
            out.delete_page(&page);
        }
        for (id, record) in &snapshot.records {
            out.set_page(&id.page_name(), render_entry(record.latest()));
        }
        out
    }

    fn bwd(&self, snapshot: &RepositorySnapshot, site: &WikiSite) -> RepositorySnapshot {
        self.try_bwd(snapshot, site).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::principal::Principal;
    use crate::repo::Repository;
    use crate::template::{ExampleEntry, ExampleType};
    use bx_theory::{check_all_laws, Law, Samples};

    fn entry(title: &str, overview: &str) -> ExampleEntry {
        ExampleEntry::builder(title)
            .of_type(ExampleType::Precise)
            .overview(overview)
            .models("M.")
            .consistency("C.")
            .restoration("F.", "B.")
            .discussion("D.")
            .author("alice")
            .build()
            .unwrap()
    }

    fn snapshot_with(titles: &[(&str, &str)]) -> RepositorySnapshot {
        let r = Repository::found("bx", vec![Principal::curator("c")]);
        r.register(Principal::member("alice")).unwrap();
        for (t, o) in titles {
            r.contribute("alice", entry(t, o)).unwrap();
        }
        r.snapshot()
    }

    #[test]
    fn fwd_publishes_all_entries() {
        let bx = WikiBx::new();
        let snap = snapshot_with(&[("COMPOSERS", "O."), ("UML2RDBMS", "O.")]);
        let site = bx.fwd(&snap, &WikiSite::new());
        assert_eq!(site.example_pages().len(), 2);
        assert!(bx.consistent(&snap, &site));
    }

    #[test]
    fn fwd_removes_orphans_and_keeps_other_pages() {
        let bx = WikiBx::new();
        let snap = snapshot_with(&[("COMPOSERS", "O.")]);
        let mut site = WikiSite::new();
        site.set_page("examples:stale", "++ STALE\njunk".to_string());
        site.set_page("start", "welcome".to_string());
        let site2 = bx.fwd(&snap, &site);
        assert!(site2.current("examples:stale").is_none());
        assert_eq!(site2.current("start"), Some("welcome"));
        assert!(bx.consistent(&snap, &site2));
    }

    #[test]
    fn fwd_is_revision_preserving_on_unchanged_pages() {
        let bx = WikiBx::new();
        let snap = snapshot_with(&[("COMPOSERS", "O.")]);
        let site = bx.fwd(&snap, &WikiSite::new());
        let site2 = bx.fwd(&snap, &site);
        assert_eq!(site, site2, "second sync is a no-op");
        assert_eq!(site2.revisions("examples:composers").len(), 1);
    }

    #[test]
    fn bwd_imports_new_pages() {
        let bx = WikiBx::new();
        let empty = snapshot_with(&[]);
        let full = snapshot_with(&[("COMPOSERS", "O.")]);
        let site = bx.fwd(&full, &WikiSite::new());
        let snap2 = bx.bwd(&empty, &site);
        assert_eq!(snap2.records.len(), 1);
        let id = EntryId("composers".to_string());
        assert_eq!(snap2.records[&id].latest().title, "COMPOSERS");
    }

    #[test]
    fn bwd_appends_version_on_changed_page() {
        let bx = WikiBx::new();
        let snap = snapshot_with(&[("COMPOSERS", "Original overview.")]);
        let mut site = bx.fwd(&snap, &WikiSite::new());
        // Edit the wiki page directly.
        let id = EntryId("composers".to_string());
        let mut edited = snap.records[&id].latest().clone();
        edited.overview = "Edited on the wiki.".to_string();
        edited.version = edited.version.next_revision();
        site.set_page(&id.page_name(), render_entry(&edited));
        let snap2 = bx.bwd(&snap, &site);
        let record = &snap2.records[&id];
        assert_eq!(record.history.len(), 2, "old version retained");
        assert_eq!(record.latest().overview, "Edited on the wiki.");
    }

    #[test]
    fn bwd_keeps_records_for_unparseable_pages() {
        let bx = WikiBx::new();
        let snap = snapshot_with(&[("COMPOSERS", "O.")]);
        let mut site = bx.fwd(&snap, &WikiSite::new());
        site.set_page("examples:composers", "vandalised!!".to_string());
        let (snap2, errors) = bx.try_bwd(&snap, &site);
        assert_eq!(errors.len(), 1);
        assert_eq!(
            snap2.records.len(),
            1,
            "vandalism does not destroy the entry"
        );
    }

    #[test]
    fn publish_adds_home_and_glossary_without_breaking_consistency() {
        let bx = WikiBx::new();
        let snap = snapshot_with(&[("COMPOSERS", "O."), ("UML2RDBMS", "O.")]);
        let site = bx.publish(&snap, &WikiSite::new());
        assert!(
            bx.consistent(&snap, &site),
            "extra pages are outside the relation"
        );
        let home = site.current("examples:home").expect("home page published");
        assert!(home.contains("[[[examples:composers]]]"));
        assert!(home.contains("[[[examples:uml2rdbms]]]"));
        assert!(site
            .current("glossary")
            .expect("glossary published")
            .contains("Hippocratic"));
        // Republishing identical content adds no revisions.
        let site2 = bx.publish(&snap, &site);
        assert_eq!(site2.revisions("examples:home").len(), 1);
        assert_eq!(site2, site);
    }

    #[test]
    fn sync_changed_matches_fwd_on_event_dirty_sets() {
        let bx = WikiBx::new();
        let r = Repository::found("bx", vec![Principal::curator("c")]);
        r.register(Principal::member("alice")).unwrap();
        for t in ["COMPOSERS", "UML2RDBMS", "DATES", "FAMILIES"] {
            r.contribute("alice", entry(t, "O.")).unwrap();
        }
        let mut site = bx.fwd(&r.snapshot(), &WikiSite::new());
        r.drain_events(); // site already reflects these

        // One revise + one comment; the comment changes the rendered page
        // too (comments are part of the markup), so both events dirty
        // their entries.
        let composers = EntryId::from_title("COMPOSERS");
        let mut edited = r.latest(&composers).unwrap();
        edited.overview = "Revised overview.".to_string();
        r.revise("alice", &composers, edited).unwrap();
        let dates = EntryId::from_title("DATES");
        r.comment("alice", &dates, "2014-04-01", "A remark.")
            .unwrap();

        let dirty = crate::event::dirty_set(&r.drain_events());
        let snap = r.snapshot();
        assert_eq!(dirty.len(), 2);

        let before = site.clone();
        let rendered_before = crate::wiki::render::entries_rendered();
        bx.sync_changed(&snap, &mut site, &dirty);
        assert_eq!(
            crate::wiki::render::entries_rendered() - rendered_before,
            2,
            "only the two dirty pages were re-rendered"
        );
        assert_eq!(site, bx.fwd(&snap, &before));
        assert!(bx.consistent(&snap, &site));
        assert_eq!(
            site.revisions("examples:composers").len(),
            2,
            "the revised page gained exactly one revision"
        );
        assert_eq!(site.revisions("examples:uml2rdbms").len(), 1);
    }

    #[test]
    fn sync_changed_deletes_pages_of_removed_entries() {
        let bx = WikiBx::new();
        let snap = snapshot_with(&[("COMPOSERS", "O."), ("UML2RDBMS", "O.")]);
        let mut site = bx.fwd(&snap, &WikiSite::new());
        let mut smaller = snap.clone();
        let gone = EntryId::from_title("UML2RDBMS");
        smaller.records.remove(&gone);
        let dirty = [gone].into_iter().collect();
        let before = site.clone();
        bx.sync_changed(&smaller, &mut site, &dirty);
        assert!(site.current("examples:uml2rdbms").is_none());
        assert_eq!(site, bx.fwd(&smaller, &before));
    }

    #[test]
    fn wiki_bx_is_correct_and_hippocratic() {
        let bx = WikiBx::new();
        let snaps = [
            snapshot_with(&[]),
            snapshot_with(&[("COMPOSERS", "O.")]),
            snapshot_with(&[("COMPOSERS", "O."), ("UML2RDBMS", "O.")]),
        ];
        // Consistent pairs plus perturbed (inconsistent) pairs.
        let mut pairs = Vec::new();
        for s in &snaps {
            pairs.push((s.clone(), bx.fwd(s, &WikiSite::new())));
        }
        pairs.push((snaps[1].clone(), WikiSite::new()));
        pairs.push((snaps[0].clone(), bx.fwd(&snaps[2], &WikiSite::new())));
        let extra_sites = vec![bx.fwd(&snaps[1], &WikiSite::new())];
        let samples = Samples::new(pairs, vec![snaps[2].clone()], extra_sites);
        let matrix = check_all_laws(&bx, &samples);
        for law in [
            Law::CorrectFwd,
            Law::CorrectBwd,
            Law::HippocraticFwd,
            Law::HippocraticBwd,
        ] {
            assert!(matrix.law_holds(law), "{}", matrix);
        }
    }
}
