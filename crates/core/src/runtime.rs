//! The shared background runtime: one scheduler for all background work.
//!
//! This module grew out of the parallel-restore [`WorkerPool`] (ROADMAP
//! direction 5) into the process-wide [`Runtime`] every background
//! tenant schedules onto:
//!
//! * **[`WorkerPool`]** — a fixed set of named threads
//!   (`bx-worker-0` … `bx-worker-{n-1}`) draining a shared job queue.
//!   Ordered scatter/gather ([`WorkerPool::scatter`]) is the scoped-job
//!   primitive: results come back in **submission order** regardless of
//!   completion order, which is what makes error reporting from
//!   parallel decode deterministic (the first error *in log order*
//!   wins, not the first to be discovered). Workers are panic-safe: a
//!   panicking job is caught, counted ([`PoolStats::panics_caught`])
//!   and the worker keeps draining; `scatter` re-raises the **first
//!   panic in submission order** on the calling thread. A `scatter`
//!   issued *from* a worker thread runs the nested batch inline on the
//!   calling worker instead of deadlocking the pool.
//!
//! * **Timer wheel** — a single lazy `bx-timer` thread tracking
//!   deadlines; due jobs are fired *onto the pool*, never run on the
//!   timer thread itself. [`Runtime::schedule_periodic`] returns a
//!   [`TimerTask`] whose `cancel()` is prompt (no sleeping out the
//!   period) and waits for an in-flight firing to finish; periodic
//!   firings are coalesced (skip-if-still-running) so a slow tenant
//!   never stacks up behind itself.
//!
//! * **[`SerialTask`]** — the actor-style discipline that replaced the
//!   dedicated per-component threads: a `FnMut` that is never run
//!   concurrently with itself, with coalesced wakeups (`notify()` while
//!   running marks a re-run instead of queueing a duplicate).
//!
//! * **[`RuntimeHealth`]** — the unified health/stats channel. Every
//!   tenant (durability pipeline, replica daemon, compaction, lint)
//!   reports [`HealthReport`]s tagged with a component name; observers
//!   drain the bounded backlog or read the latest-per-component map,
//!   superseding the ad-hoc per-component plumbing.
//!
//! The pool runs `'static` jobs: callers share read-only inputs via
//! [`std::sync::Arc`] and partition mutable state by *moving* disjoint
//! pieces into each job (see `replay_parallel`, which moves each shard's
//! `EntryRecord`s in and back out). `scatter` blocks until every
//! submitted job has finished, so by the time it returns no worker
//! holds any job state.

use std::cell::Cell;
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Options for the parallel restore pipeline, accepted by
/// [`crate::storage::EventLogBackend::restore_dir_with`],
/// [`crate::replica::Replica::open_with`] and
/// [`crate::replica::Federation::open_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestoreOptions {
    /// Worker threads for decode, replay and derived-state rebuild.
    /// `1` reproduces the sequential code path exactly (no pool is
    /// created); the default is [`std::thread::available_parallelism`].
    pub threads: usize,
}

impl Default for RestoreOptions {
    fn default() -> RestoreOptions {
        RestoreOptions {
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }
}

impl RestoreOptions {
    /// The sequential pipeline: identical code path to the pre-pool
    /// `restore_dir`/`open`, kept as the oracle the parallel pipeline is
    /// property-tested against.
    pub fn sequential() -> RestoreOptions {
        RestoreOptions { threads: 1 }
    }

    /// A pipeline pinned to exactly `threads` workers (tests and benches
    /// use this to compare thread counts on fixed inputs).
    pub fn with_threads(threads: usize) -> RestoreOptions {
        RestoreOptions {
            threads: threads.max(1),
        }
    }

    /// Whether these options select the parallel pipeline at all.
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }
}

/// One queued unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// Set for the lifetime of every pool worker thread; lets `scatter`
    /// detect that it is being called from inside the pool (nested
    /// scatter) and fall back to running the batch inline instead of
    /// deadlocking. Worker threads are also identifiable from the
    /// outside by their `{prefix}-{i}` names.
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Counters a [`WorkerPool`] keeps about itself; snapshot via
/// [`WorkerPool::stats`] or push one as [`HealthReport::Pool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Worker threads in the pool.
    pub threads: usize,
    /// Jobs that finished running (including panicked ones).
    pub jobs_run: u64,
    /// Jobs that panicked; each was caught and its worker kept alive.
    pub panics_caught: u64,
}

/// State shared between the pool handle and its workers.
struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    /// Signalled when a job is enqueued or shutdown begins.
    available: Condvar,
    shutdown: AtomicBool,
    jobs_run: AtomicU64,
    panics_caught: AtomicU64,
}

/// A fixed-size pool of named worker threads; see the module docs.
///
/// Dropping the pool signals shutdown and joins every worker: jobs
/// already dequeued run to completion, queued-but-unstarted jobs are
/// still drained (the queue is emptied before workers exit), so no
/// submitted work is silently lost. A panicking job never kills its
/// worker: the unwind is caught in the worker loop, counted, and the
/// thread returns to draining the queue.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.workers.len())
            .finish()
    }
}

impl WorkerPool {
    /// A pool of `threads` workers (clamped to at least 1), named
    /// `bx-worker-0` … so they are identifiable in thread dumps.
    pub fn new(threads: usize) -> WorkerPool {
        WorkerPool::named("bx-worker", threads)
    }

    /// A pool whose workers are named `{prefix}-0` … `{prefix}-{n-1}`;
    /// dedicated runtimes (the single-thread durability writer, a lint
    /// engine with its own workers) use this so thread dumps still say
    /// who owns each thread.
    pub fn named(prefix: &str, threads: usize) -> WorkerPool {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            jobs_run: AtomicU64::new(0),
            panics_caught: AtomicU64::new(0),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                Self::spawn_named(&format!("{prefix}-{i}"), move || {
                    IN_POOL_WORKER.with(|f| f.set(true));
                    Self::work(&shared)
                })
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// A pool sized by [`std::thread::available_parallelism`].
    pub fn with_available_parallelism() -> WorkerPool {
        WorkerPool::new(RestoreOptions::default().threads)
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Snapshot of the pool's own counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            threads: self.workers.len(),
            jobs_run: self.shared.jobs_run.load(Ordering::Relaxed),
            panics_caught: self.shared.panics_caught.load(Ordering::Relaxed),
        }
    }

    /// Whether the calling thread is a pool worker (of *any* pool).
    /// `scatter` uses this to run nested batches inline.
    pub fn on_worker_thread() -> bool {
        IN_POOL_WORKER.with(|f| f.get())
    }

    /// Spawn one named OS thread (the naming discipline every bx-core
    /// background thread follows; also used directly by one-shot helpers
    /// that do not need pooling).
    pub fn spawn_named<T: Send + 'static>(
        name: &str,
        f: impl FnOnce() -> T + Send + 'static,
    ) -> JoinHandle<T> {
        std::thread::Builder::new()
            .name(name.to_string())
            .spawn(f)
            .expect("spawning a worker thread succeeds")
    }

    /// Enqueue one fire-and-forget job.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        queue.push_back(Box::new(job));
        drop(queue);
        self.shared.available.notify_one();
    }

    /// Run a batch of jobs to completion and return their results **in
    /// submission order** (independent of which worker finished first).
    /// Blocks the calling thread until the whole batch is done — the
    /// scoped-job discipline: after `scatter` returns, no worker holds
    /// any state from this batch.
    ///
    /// Panic contract: every job runs (a panic in one job does not stop
    /// the others), and if any panicked, the **first panic in
    /// submission order** is re-raised on the calling thread once the
    /// batch is drained. The workers themselves survive.
    ///
    /// Called from *inside* a pool worker (any pool), the batch runs
    /// inline on the calling worker instead — same ordering and panic
    /// contract — because parking a worker in `scatter` while the
    /// nested jobs sit behind it in the queue can deadlock the pool.
    pub fn scatter<T: Send + 'static>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
    ) -> Vec<T> {
        if Self::on_worker_thread() {
            return self.scatter_inline(jobs);
        }
        let n = jobs.len();
        let (tx, rx) = mpsc::channel::<(usize, std::thread::Result<T>)>();
        for (i, job) in jobs.into_iter().enumerate() {
            let tx = tx.clone();
            let shared = Arc::clone(&self.shared);
            self.execute(move || {
                let result = catch_unwind(AssertUnwindSafe(job));
                if result.is_err() {
                    shared.panics_caught.fetch_add(1, Ordering::Relaxed);
                }
                // A receiver dropped early (scatter unwound) is fine:
                // the result is simply discarded.
                let _ = tx.send((i, result));
            });
        }
        drop(tx);
        let mut slots: Vec<Option<std::thread::Result<T>>> = (0..n).map(|_| None).collect();
        for (i, result) in rx.iter().take(n) {
            slots[i] = Some(result);
        }
        Self::unwrap_batch(slots)
    }

    /// The nested-scatter fallback: run the batch on the calling worker,
    /// preserving the ordering and first-panic-in-submission-order
    /// contract of the pooled path.
    fn scatter_inline<T: Send + 'static>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
    ) -> Vec<T> {
        let slots: Vec<Option<std::thread::Result<T>>> = jobs
            .into_iter()
            .map(|job| {
                let result = catch_unwind(AssertUnwindSafe(job));
                if result.is_err() {
                    self.shared.panics_caught.fetch_add(1, Ordering::Relaxed);
                }
                self.shared.jobs_run.fetch_add(1, Ordering::Relaxed);
                Some(result)
            })
            .collect();
        Self::unwrap_batch(slots)
    }

    /// Unwrap a completed batch: re-raise the first panic in submission
    /// order, otherwise return the values in submission order.
    fn unwrap_batch<T>(slots: Vec<Option<std::thread::Result<T>>>) -> Vec<T> {
        let mut results = Vec::with_capacity(slots.len());
        for slot in slots {
            match slot.expect("every scattered job reports exactly once") {
                Ok(value) => results.push(value),
                Err(payload) => resume_unwind(payload),
            }
        }
        results
    }

    /// The worker loop: drain jobs until shutdown *and* the queue is
    /// empty (queued work is never dropped). A panicking job is caught
    /// and counted; the worker stays alive.
    fn work(shared: &PoolShared) {
        loop {
            let job = {
                let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if let Some(job) = queue.pop_front() {
                        break job;
                    }
                    if shared.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    queue = shared
                        .available
                        .wait(queue)
                        .unwrap_or_else(|e| e.into_inner());
                }
            };
            if catch_unwind(AssertUnwindSafe(job)).is_err() {
                shared.panics_caught.fetch_add(1, Ordering::Relaxed);
            }
            shared.jobs_run.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        let me = std::thread::current().id();
        for worker in self.workers.drain(..) {
            // The last Arc holding a pool can be dropped *from a pool
            // job* (a stale timer firing, a detached task): a worker
            // must never join itself. Dropping the handle detaches the
            // thread; it exits on its own since shutdown is set.
            if worker.thread().id() == me {
                continue;
            }
            let _ = worker.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Unified health channel
// ---------------------------------------------------------------------------

/// One tenant's health snapshot, pushed through [`RuntimeHealth`].
///
/// Variants mirror the runtime's tenants and carry plain owned values
/// so observers need no per-tenant imports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HealthReport {
    /// The durability pipeline (background writer).
    Pipeline {
        enqueued: u64,
        durable: u64,
        dropped: u64,
        backpressure_waits: u64,
        fsyncs: u64,
        group_commits: u64,
        /// Current adaptive group-commit window, in microseconds.
        window_micros: u64,
        queue_len: usize,
        error: Option<String>,
    },
    /// A replica daemon's polling loop.
    Daemon {
        polls: u64,
        events_applied: u64,
        rebases_detected: u64,
        error: Option<String>,
    },
    /// A compaction pass on an auto-compacting log.
    Compaction {
        /// Which backend kind compacted (e.g. `"events"`, `"binlog"`).
        kind: String,
        checkpoints: u64,
        pruned_files: u64,
    },
    /// The lint engine's incremental checker.
    Lint {
        checks_run: u64,
        entries_with_diagnostics: usize,
    },
    /// A federated source's supervision state changed: a failure moved
    /// it along `healthy → degraded → quarantined`, a successful poll
    /// recovered it, or a `SalvagePrefix` recovery ran. Published by
    /// `Federation::catch_up` for every transition, never for steady
    /// state — absence of reports means nothing changed.
    Source {
        /// The `SourceId` of the affected source.
        source: String,
        /// New state label: `"healthy"`, `"degraded"`, `"quarantined"`.
        state: String,
        /// Consecutive failures so far (0 after a recovery).
        consecutive_failures: u32,
        /// The poll error that drove a failure transition.
        error: Option<String>,
        /// Milliseconds until the next retry is due, if backed off.
        retry_in_ms: Option<u64>,
        /// Bytes dropped by the `SalvagePrefix` recovery this report
        /// announces (`None` when no salvage happened).
        salvaged_bytes: Option<u64>,
    },
    /// A torn tail (crash fragment) was truncated while opening an
    /// event-log backend — previously a silent repair, now on the
    /// record.
    TailRepaired {
        /// The repaired log file (relative name).
        file: String,
        /// How many torn bytes were dropped.
        bytes_dropped: u64,
    },
    /// The pool's own counters.
    Pool(PoolStats),
}

/// One sequenced, component-tagged health report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentHealth {
    /// Monotonic per-runtime sequence number (drain order).
    pub seq: u64,
    /// Component name, e.g. `"writer:s0"`, `"daemon"`, `"lint"`.
    pub component: String,
    pub report: HealthReport,
}

/// Push sink for health reports; invoked outside the channel's lock.
pub type HealthSink = Arc<dyn Fn(&ComponentHealth) + Send + Sync>;

/// Backlog cap: the channel keeps the most recent reports, dropping the
/// oldest — health is a sampling channel, not a durable log.
const HEALTH_BACKLOG: usize = 256;

struct HealthInner {
    seq: u64,
    backlog: VecDeque<ComponentHealth>,
    latest: BTreeMap<String, ComponentHealth>,
}

/// The unified health/stats channel shared by every runtime tenant.
///
/// Three consumption styles: [`RuntimeHealth::drain`] the bounded
/// backlog (polling observers), [`RuntimeHealth::latest`] /
/// [`RuntimeHealth::latest_all`] for dashboards that only want current
/// state, or [`RuntimeHealth::set_sink`] for push delivery.
pub struct RuntimeHealth {
    inner: Mutex<HealthInner>,
    sink: Mutex<Option<HealthSink>>,
}

impl Default for RuntimeHealth {
    fn default() -> RuntimeHealth {
        RuntimeHealth::new()
    }
}

impl std::fmt::Debug for RuntimeHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("RuntimeHealth")
            .field("seq", &inner.seq)
            .field("backlog", &inner.backlog.len())
            .field("components", &inner.latest.len())
            .finish()
    }
}

impl RuntimeHealth {
    pub fn new() -> RuntimeHealth {
        RuntimeHealth {
            inner: Mutex::new(HealthInner {
                seq: 0,
                backlog: VecDeque::new(),
                latest: BTreeMap::new(),
            }),
            sink: Mutex::new(None),
        }
    }

    /// Publish one report for `component`.
    pub fn report(&self, component: &str, report: HealthReport) {
        let entry = {
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.seq += 1;
            let entry = ComponentHealth {
                seq: inner.seq,
                component: component.to_string(),
                report,
            };
            inner.backlog.push_back(entry.clone());
            while inner.backlog.len() > HEALTH_BACKLOG {
                inner.backlog.pop_front();
            }
            inner.latest.insert(entry.component.clone(), entry.clone());
            entry
        };
        let sink = self.sink.lock().unwrap_or_else(|e| e.into_inner()).clone();
        if let Some(sink) = sink {
            // Outside the lock: a sink may itself inspect the channel.
            sink(&entry);
        }
    }

    /// Drain and return the backlog in publish order.
    pub fn drain(&self) -> Vec<ComponentHealth> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.backlog.drain(..).collect()
    }

    /// The most recent report for `component`, if any.
    pub fn latest(&self, component: &str) -> Option<ComponentHealth> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.latest.get(component).cloned()
    }

    /// The most recent report of every component that ever reported.
    pub fn latest_all(&self) -> Vec<ComponentHealth> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.latest.values().cloned().collect()
    }

    /// Install (or clear) a push sink. Called outside the channel lock;
    /// keep it fast — it runs on whichever tenant thread reported.
    pub fn set_sink(&self, sink: Option<HealthSink>) {
        *self.sink.lock().unwrap_or_else(|e| e.into_inner()) = sink;
    }
}

// ---------------------------------------------------------------------------
// Timer wheel
// ---------------------------------------------------------------------------

type TimerJob = Arc<dyn Fn() + Send + Sync + 'static>;

/// Per-task control block shared between the wheel, the fired pool
/// jobs, and the [`TimerTask`] handle.
struct TimerCtl {
    cancelled: AtomicBool,
    /// `(running, queued)` — `queued` counts firings handed to the pool
    /// but not yet finished; skip-if-running coalescing and
    /// cancel-and-wait both key off this.
    state: Mutex<(bool, u32)>,
    done: Condvar,
}

impl TimerCtl {
    fn new() -> Arc<TimerCtl> {
        Arc::new(TimerCtl {
            cancelled: AtomicBool::new(false),
            state: Mutex::new((false, 0)),
            done: Condvar::new(),
        })
    }
}

struct TimerEntry {
    deadline: Instant,
    /// `None` for detached one-shots.
    period: Option<Duration>,
    job: TimerJob,
    /// `None` for detached one-shots (nothing to cancel or wait on).
    ctl: Option<Arc<TimerCtl>>,
}

struct TimerState {
    entries: BTreeMap<u64, TimerEntry>,
    next_id: u64,
    shutdown: bool,
}

struct TimerShared {
    state: Mutex<TimerState>,
    /// Wakes the timer thread when an entry is added/removed or
    /// shutdown begins.
    changed: Condvar,
}

/// The runtime's deadline tracker: one lazy `bx-timer` thread that
/// fires due jobs onto the pool. Private to [`Runtime`].
struct TimerWheel {
    shared: Arc<TimerShared>,
    pool: Arc<WorkerPool>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl TimerWheel {
    fn new(pool: Arc<WorkerPool>) -> TimerWheel {
        TimerWheel {
            shared: Arc::new(TimerShared {
                state: Mutex::new(TimerState {
                    entries: BTreeMap::new(),
                    next_id: 0,
                    shutdown: false,
                }),
                changed: Condvar::new(),
            }),
            pool,
            thread: Mutex::new(None),
        }
    }

    /// Insert an entry and make sure the timer thread exists.
    fn insert(&self, entry: TimerEntry) -> u64 {
        let id = {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            let id = state.next_id;
            state.next_id += 1;
            state.entries.insert(id, entry);
            id
        };
        self.shared.changed.notify_all();
        let mut thread = self.thread.lock().unwrap_or_else(|e| e.into_inner());
        if thread.is_none() {
            let shared = Arc::clone(&self.shared);
            let pool = Arc::clone(&self.pool);
            *thread = Some(WorkerPool::spawn_named("bx-timer", move || {
                Self::run(&shared, &pool)
            }));
        }
        id
    }

    /// Hand one firing of `job` to the pool, honouring the control
    /// block's cancellation and skip-if-running coalescing.
    fn fire(pool: &WorkerPool, job: &TimerJob, ctl: &Option<Arc<TimerCtl>>) {
        match ctl {
            None => {
                let job = Arc::clone(job);
                pool.execute(move || job());
            }
            Some(ctl) => {
                if ctl.cancelled.load(Ordering::Acquire) {
                    return;
                }
                {
                    let mut state = ctl.state.lock().unwrap_or_else(|e| e.into_inner());
                    if state.0 || state.1 > 0 {
                        // Still running (or already queued) from the
                        // previous firing: coalesce, don't stack.
                        return;
                    }
                    state.1 += 1;
                }
                let job = Arc::clone(job);
                let ctl = Arc::clone(ctl);
                pool.execute(move || {
                    if !ctl.cancelled.load(Ordering::Acquire) {
                        {
                            let mut state = ctl.state.lock().unwrap_or_else(|e| e.into_inner());
                            state.0 = true;
                        }
                        // The pool's worker loop catches a panicking
                        // job, but the control block must be released
                        // even then, so guard the flags with a Drop.
                        struct Finish(Arc<TimerCtl>);
                        impl Drop for Finish {
                            fn drop(&mut self) {
                                let mut state =
                                    self.0.state.lock().unwrap_or_else(|e| e.into_inner());
                                state.0 = false;
                                state.1 = state.1.saturating_sub(1);
                                drop(state);
                                self.0.done.notify_all();
                            }
                        }
                        let _finish = Finish(Arc::clone(&ctl));
                        job();
                    } else {
                        let mut state = ctl.state.lock().unwrap_or_else(|e| e.into_inner());
                        state.1 = state.1.saturating_sub(1);
                        drop(state);
                        ctl.done.notify_all();
                    }
                });
            }
        }
    }

    /// The timer thread: sleep until the earliest deadline, fire due
    /// entries onto the pool, reschedule periodics.
    fn run(shared: &TimerShared, pool: &Arc<WorkerPool>) {
        let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if state.shutdown {
                return;
            }
            let now = Instant::now();
            // Fire everything due; collect jobs first so firing happens
            // with the wheel lock held only briefly per entry.
            let due: Vec<u64> = state
                .entries
                .iter()
                .filter(|(_, e)| e.deadline <= now)
                .map(|(id, _)| *id)
                .collect();
            for id in due {
                let (job, ctl, reschedule) = {
                    let entry = state.entries.get_mut(&id).expect("due entry exists");
                    let job = Arc::clone(&entry.job);
                    let ctl = entry.ctl.clone();
                    let reschedule = match entry.period {
                        Some(period) => {
                            entry.deadline = now + period;
                            true
                        }
                        None => false,
                    };
                    (job, ctl, reschedule)
                };
                if !reschedule {
                    state.entries.remove(&id);
                }
                Self::fire(pool, &job, &ctl);
            }
            let next = state.entries.values().map(|e| e.deadline).min();
            state = match next {
                None => shared
                    .changed
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner()),
                Some(deadline) => {
                    let now = Instant::now();
                    if deadline <= now {
                        continue;
                    }
                    shared
                        .changed
                        .wait_timeout(state, deadline - now)
                        .unwrap_or_else(|e| e.into_inner())
                        .0
                }
            };
        }
    }
}

impl Drop for TimerWheel {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.shutdown = true;
            state.entries.clear();
        }
        self.shared.changed.notify_all();
        if let Some(thread) = self.thread.lock().unwrap_or_else(|e| e.into_inner()).take() {
            let _ = thread.join();
        }
    }
}

/// Handle to a periodic timer entry; see [`Runtime::schedule_periodic`].
///
/// `cancel()` is prompt (it does not sleep out the remaining period)
/// and waits for an in-flight firing to finish, so after it returns the
/// job is guaranteed not running and never will again. Dropping the
/// handle cancels without waiting.
pub struct TimerTask {
    id: u64,
    wheel: Arc<TimerShared>,
    pool: Weak<WorkerPool>,
    ctl: Arc<TimerCtl>,
    job: TimerJob,
}

impl std::fmt::Debug for TimerTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimerTask").field("id", &self.id).finish()
    }
}

impl TimerTask {
    /// Remove the entry from the wheel and wait until any in-flight
    /// firing has finished. Idempotent.
    pub fn cancel(&self) {
        self.ctl.cancelled.store(true, Ordering::Release);
        {
            let mut state = self.wheel.state.lock().unwrap_or_else(|e| e.into_inner());
            state.entries.remove(&self.id);
        }
        self.wheel.changed.notify_all();
        let mut state = self.ctl.state.lock().unwrap_or_else(|e| e.into_inner());
        while state.0 || state.1 > 0 {
            state = self.ctl.done.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Fire the job now (onto the pool), without waiting for the next
    /// deadline. Coalesced like a timer firing: a still-running
    /// previous firing absorbs it.
    pub fn fire_now(&self) {
        if let Some(pool) = self.pool.upgrade() {
            TimerWheel::fire(&pool, &self.job, &Some(Arc::clone(&self.ctl)));
        }
    }
}

impl Drop for TimerTask {
    fn drop(&mut self) {
        // Cancel without waiting: an in-flight firing only holds the
        // job closure alive a moment longer.
        self.ctl.cancelled.store(true, Ordering::Release);
        let mut state = self.wheel.state.lock().unwrap_or_else(|e| e.into_inner());
        state.entries.remove(&self.id);
        drop(state);
        self.wheel.changed.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Serialized tasks
// ---------------------------------------------------------------------------

struct SerialState {
    /// A run is queued on the pool but has not started.
    scheduled: bool,
    /// A run is currently executing the work closure.
    running: bool,
    /// `notify()` arrived while running: run once more when done.
    rerun: bool,
}

struct SerialInner {
    work: Mutex<Box<dyn FnMut() + Send>>,
    state: Mutex<SerialState>,
    idle: Condvar,
}

impl SerialInner {
    /// One pool-job pass: run the closure, then either reschedule (a
    /// notify arrived mid-run) or go idle. Re-enqueueing instead of
    /// looping keeps one chatty task from monopolising a worker.
    fn run(this: &Arc<SerialInner>, pool: &Arc<WorkerPool>) {
        {
            let mut state = this.state.lock().unwrap_or_else(|e| e.into_inner());
            state.scheduled = false;
            state.running = true;
        }
        // Release `running` even if the closure panics (the pool
        // catches the unwind); otherwise the task would wedge forever.
        struct Finish<'a>(&'a Arc<SerialInner>, &'a Arc<WorkerPool>);
        impl Drop for Finish<'_> {
            fn drop(&mut self) {
                let mut state = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
                state.running = false;
                if state.rerun {
                    state.rerun = false;
                    state.scheduled = true;
                    drop(state);
                    let inner = Arc::clone(self.0);
                    let pool = Arc::clone(self.1);
                    self.1.execute(move || SerialInner::run(&inner, &pool));
                } else {
                    drop(state);
                    self.0.idle.notify_all();
                }
            }
        }
        let _finish = Finish(this, pool);
        (this.work.lock().unwrap_or_else(|e| e.into_inner()))();
    }

    fn notify(this: &Arc<SerialInner>, pool: &Arc<WorkerPool>) {
        {
            let mut state = this.state.lock().unwrap_or_else(|e| e.into_inner());
            if state.running {
                state.rerun = true;
                return;
            }
            if state.scheduled {
                return;
            }
            state.scheduled = true;
        }
        let inner = Arc::clone(this);
        let pool_for_job = Arc::clone(pool);
        pool.execute(move || SerialInner::run(&inner, &pool_for_job));
    }
}

/// A serialized task on the runtime: a `FnMut` that is never run
/// concurrently with itself. [`SerialTask::notify`] schedules a run;
/// notifies arriving while a run is in progress coalesce into exactly
/// one follow-up run. This is the actor-style discipline the dedicated
/// per-component threads (durability writer, lint fold) migrated onto.
pub struct SerialTask {
    inner: Arc<SerialInner>,
    pool: Arc<WorkerPool>,
}

impl std::fmt::Debug for SerialTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SerialTask").finish()
    }
}

impl SerialTask {
    /// Schedule a run (coalesced; see the type docs).
    pub fn notify(&self) {
        SerialInner::notify(&self.inner, &self.pool);
    }

    /// Block until no run is scheduled or in progress. A concurrent
    /// `notify` can of course schedule a new run right after.
    pub fn wait_idle(&self) {
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        while state.scheduled || state.running || state.rerun {
            state = self
                .inner
                .idle
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// A weak handle for wakeups from timer callbacks (breaks the
    /// `Arc` cycle a timer job capturing its own task would form).
    pub fn downgrade(&self) -> WeakSerialTask {
        WeakSerialTask {
            inner: Arc::downgrade(&self.inner),
            pool: Arc::downgrade(&self.pool),
        }
    }
}

/// Weak counterpart of [`SerialTask`]; `notify` is a no-op once the
/// task (or its runtime) is gone.
#[derive(Clone)]
pub struct WeakSerialTask {
    inner: Weak<SerialInner>,
    pool: Weak<WorkerPool>,
}

impl WeakSerialTask {
    pub fn notify(&self) {
        if let (Some(inner), Some(pool)) = (self.inner.upgrade(), self.pool.upgrade()) {
            SerialInner::notify(&inner, &pool);
        }
    }
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

/// The shared background runtime: one bounded [`WorkerPool`], one timer
/// wheel, one [`RuntimeHealth`] channel. Components "rent" capacity —
/// the durability writer and lint fold as [`SerialTask`]s, the replica
/// daemon and compaction triggers as timer entries, parallel restore as
/// `scatter` batches — so a node hosting dozens of federated sources
/// runs on one fixed set of threads instead of a thread per component.
///
/// Dropping the last `Arc<Runtime>` shuts down the wheel first (no new
/// firings), then the pool (queued jobs drain, workers join).
pub struct Runtime {
    // Field order is drop order: the wheel must stop scheduling onto
    // the pool before the pool joins its workers.
    timers: TimerWheel,
    pool: Arc<WorkerPool>,
    health: Arc<RuntimeHealth>,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("threads", &self.pool.threads())
            .finish()
    }
}

impl Runtime {
    /// A runtime with `threads` pool workers named `bx-worker-{i}`.
    pub fn new(threads: usize) -> Arc<Runtime> {
        Runtime::named("bx-worker", threads)
    }

    /// A runtime whose workers carry a custom name prefix (dedicated
    /// single-tenant runtimes use this, e.g. `bx-durability`).
    pub fn named(prefix: &str, threads: usize) -> Arc<Runtime> {
        let pool = Arc::new(WorkerPool::named(prefix, threads));
        Arc::new(Runtime {
            timers: TimerWheel::new(Arc::clone(&pool)),
            pool,
            health: Arc::new(RuntimeHealth::new()),
        })
    }

    /// A runtime sized by [`std::thread::available_parallelism`].
    pub fn with_available_parallelism() -> Arc<Runtime> {
        Runtime::new(RestoreOptions::default().threads)
    }

    /// The scatter/gather pool.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// The unified health channel.
    pub fn health(&self) -> &Arc<RuntimeHealth> {
        &self.health
    }

    /// Enqueue one fire-and-forget job on the pool.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.pool.execute(job);
    }

    /// Ordered scatter/gather on the pool; see [`WorkerPool::scatter`].
    pub fn scatter<T: Send + 'static>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
    ) -> Vec<T> {
        self.pool.scatter(jobs)
    }

    /// Snapshot the pool's counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Publish the pool's counters on the health channel as
    /// `component` (dashboards poll this alongside tenant reports).
    pub fn report_pool_health(&self, component: &str) {
        self.health
            .report(component, HealthReport::Pool(self.pool.stats()));
    }

    /// A serialized task on this runtime's pool; see [`SerialTask`].
    pub fn serial_task(&self, work: impl FnMut() + Send + 'static) -> SerialTask {
        SerialTask {
            inner: Arc::new(SerialInner {
                work: Mutex::new(Box::new(work)),
                state: Mutex::new(SerialState {
                    scheduled: false,
                    running: false,
                    rerun: false,
                }),
                idle: Condvar::new(),
            }),
            pool: Arc::clone(&self.pool),
        }
    }

    /// Run `job` every `period`, starting one `period` from now. Each
    /// firing runs on the pool; a firing that is still running when the
    /// next deadline arrives is skipped (coalesced), so a slow tenant
    /// lags rather than stacks. The returned [`TimerTask`] cancels
    /// promptly; dropping it cancels without waiting.
    pub fn schedule_periodic(
        &self,
        period: Duration,
        job: impl Fn() + Send + Sync + 'static,
    ) -> TimerTask {
        let job: TimerJob = Arc::new(job);
        let ctl = TimerCtl::new();
        let id = self.timers.insert(TimerEntry {
            deadline: Instant::now() + period,
            period: Some(period),
            job: Arc::clone(&job),
            ctl: Some(Arc::clone(&ctl)),
        });
        TimerTask {
            id,
            wheel: Arc::clone(&self.timers.shared),
            pool: Arc::downgrade(&self.pool),
            ctl,
            job,
        }
    }

    /// Run `job` once, `delay` from now, detached (no handle; runtime
    /// shutdown before the deadline drops the job silently).
    pub fn schedule_once(&self, delay: Duration, job: impl FnOnce() + Send + 'static) {
        // The wheel stores `Fn` jobs; a one-shot fires at most once, so
        // smuggle the `FnOnce` through an Option.
        let job = Mutex::new(Some(job));
        self.timers.insert(TimerEntry {
            deadline: Instant::now() + delay,
            period: None,
            job: Arc::new(move || {
                if let Some(job) = job.lock().unwrap_or_else(|e| e.into_inner()).take() {
                    job();
                }
            }),
            ctl: None,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scatter_returns_results_in_submission_order() {
        let pool = WorkerPool::new(4);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..64usize)
            .map(|i| {
                Box::new(move || {
                    // Vary the work so completion order scrambles.
                    std::thread::sleep(std::time::Duration::from_micros((64 - i) as u64 * 10));
                    i * i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let results = pool.scatter(jobs);
        assert_eq!(results, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn drop_drains_queued_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..32 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn workers_are_named() {
        let pool = WorkerPool::new(1);
        let jobs: Vec<Box<dyn FnOnce() -> String + Send>> = vec![Box::new(|| {
            std::thread::current().name().unwrap_or("").to_string()
        })];
        assert_eq!(pool.scatter(jobs), vec!["bx-worker-0".to_string()]);
    }

    #[test]
    fn options_default_to_available_parallelism() {
        let options = RestoreOptions::default();
        assert!(options.threads >= 1);
        assert!(RestoreOptions::sequential().threads == 1);
        assert!(!RestoreOptions::sequential().is_parallel());
        assert_eq!(RestoreOptions::with_threads(0).threads, 1);
        assert!(RestoreOptions::with_threads(8).is_parallel());
    }

    #[test]
    fn empty_scatter_is_fine() {
        let pool = WorkerPool::new(2);
        let jobs: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
        assert!(pool.scatter(jobs).is_empty());
    }

    /// The headline regression: a panicking job must not kill its
    /// worker. Before the fix, each panic unwound one worker thread for
    /// good; after enough panics the pool was empty and the next
    /// scatter blocked forever on its result channel.
    #[test]
    fn pool_survives_panicking_jobs() {
        let pool = WorkerPool::new(2);
        // More panics than workers: under the old behaviour the pool is
        // certainly dead after these.
        for i in 0..8 {
            pool.execute(move || panic!("injected panic {i}"));
        }
        // A subsequent full-width scatter still completes.
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16usize)
            .map(|i| Box::new(move || i + 1) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let results = pool.scatter(jobs);
        assert_eq!(results, (1..=16).collect::<Vec<_>>());
        // The last panicking job can still be unwinding on a sibling
        // worker when scatter returns (and `jobs_run` ticks after each
        // scatter job has already reported); wait for the counters to
        // settle.
        let deadline = Instant::now() + Duration::from_secs(5);
        while (pool.stats().panics_caught < 8 || pool.stats().jobs_run < 24)
            && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(1));
        }
        let stats = pool.stats();
        assert_eq!(stats.panics_caught, 8);
        assert!(stats.jobs_run >= 24);
    }

    #[test]
    fn scatter_reraises_first_panic_in_submission_order() {
        let pool = WorkerPool::new(4);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
            .map(|i| {
                Box::new(move || {
                    if i == 2 || i == 5 {
                        // Make the *later* panic finish first so the
                        // test distinguishes submission order from
                        // completion order.
                        if i == 2 {
                            std::thread::sleep(Duration::from_millis(30));
                        }
                        panic!("boom-{i}");
                    }
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let err = catch_unwind(AssertUnwindSafe(|| pool.scatter(jobs)))
            .expect_err("a panicked batch re-raises");
        let message = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "<non-string payload>".into());
        assert_eq!(message, "boom-2", "first panic in submission order wins");
        // And the pool is still alive.
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = vec![Box::new(|| 7), Box::new(|| 8)];
        assert_eq!(pool.scatter(jobs), vec![7, 8]);
    }

    #[test]
    fn nested_scatter_runs_inline_on_the_worker() {
        let pool = Arc::new(WorkerPool::new(2));
        let inner_pool = Arc::clone(&pool);
        type NestedJob = Box<dyn FnOnce() -> (bool, Vec<usize>) + Send>;
        let jobs: Vec<NestedJob> = vec![Box::new(move || {
            // From inside a pool job, the worker is detectable and a
            // nested scatter must complete (inline) rather than
            // deadlock every worker in `scatter`.
            let detected = WorkerPool::on_worker_thread();
            let nested: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
                .map(|i| Box::new(move || i * 3) as Box<dyn FnOnce() -> usize + Send>)
                .collect();
            (detected, inner_pool.scatter(nested))
        })];
        assert!(!WorkerPool::on_worker_thread());
        let mut results = pool.scatter(jobs);
        let (detected, nested) = results.remove(0);
        assert!(detected, "worker thread is detectable from inside a job");
        assert_eq!(nested, (0..8).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn nested_scatter_preserves_panic_contract() {
        let pool = Arc::new(WorkerPool::new(1));
        let inner_pool = Arc::clone(&pool);
        let ran_after = Arc::new(AtomicUsize::new(0));
        let ran = Arc::clone(&ran_after);
        let jobs: Vec<Box<dyn FnOnce() + Send>> = vec![Box::new(move || {
            let ran = Arc::clone(&ran);
            let nested: Vec<Box<dyn FnOnce() + Send>> = vec![
                Box::new(|| panic!("nested-boom")),
                // Later jobs in the batch still run before the panic
                // re-raises — same contract as the pooled path.
                Box::new(move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                }),
            ];
            let err = catch_unwind(AssertUnwindSafe(|| inner_pool.scatter(nested)))
                .expect_err("nested panic re-raises on the worker");
            assert_eq!(err.downcast_ref::<&str>(), Some(&"nested-boom"));
        })];
        pool.scatter(jobs);
        assert_eq!(ran_after.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn periodic_timer_fires_and_cancels_promptly() {
        let runtime = Runtime::new(2);
        let fired = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&fired);
        let task = runtime.schedule_periodic(Duration::from_millis(5), move || {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        let deadline = Instant::now() + Duration::from_secs(5);
        while fired.load(Ordering::SeqCst) < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(fired.load(Ordering::SeqCst) >= 3, "timer fires repeatedly");
        let start = Instant::now();
        task.cancel();
        assert!(start.elapsed() < Duration::from_secs(1), "cancel is prompt");
        let after = fired.load(Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(
            fired.load(Ordering::SeqCst),
            after,
            "no firings after cancel"
        );
    }

    #[test]
    fn one_shot_timer_fires_once() {
        let runtime = Runtime::new(1);
        let fired = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&fired);
        runtime.schedule_once(Duration::from_millis(3), move || {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        let deadline = Instant::now() + Duration::from_secs(5);
        while fired.load(Ordering::SeqCst) == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn serial_task_coalesces_and_never_overlaps() {
        let runtime = Runtime::new(4);
        let running = Arc::new(AtomicUsize::new(0));
        let max_seen = Arc::new(AtomicUsize::new(0));
        let runs = Arc::new(AtomicUsize::new(0));
        let (running2, max2, runs2) = (
            Arc::clone(&running),
            Arc::clone(&max_seen),
            Arc::clone(&runs),
        );
        let task = runtime.serial_task(move || {
            let now = running2.fetch_add(1, Ordering::SeqCst) + 1;
            max2.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(1));
            runs2.fetch_add(1, Ordering::SeqCst);
            running2.fetch_sub(1, Ordering::SeqCst);
        });
        for _ in 0..64 {
            task.notify();
        }
        task.wait_idle();
        assert_eq!(max_seen.load(Ordering::SeqCst), 1, "never overlaps itself");
        let total = runs.load(Ordering::SeqCst);
        assert!(total >= 1, "notified task runs");
        assert!(total <= 64, "runs are coalesced, not amplified");
    }

    #[test]
    fn serial_task_survives_a_panicking_run() {
        let runtime = Runtime::new(1);
        let runs = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&runs);
        let task = runtime.serial_task(move || {
            let n = counter.fetch_add(1, Ordering::SeqCst);
            if n == 0 {
                panic!("first run panics");
            }
        });
        task.notify();
        task.wait_idle();
        task.notify();
        task.wait_idle();
        assert_eq!(
            runs.load(Ordering::SeqCst),
            2,
            "task keeps working after a panic"
        );
        assert_eq!(runtime.pool_stats().panics_caught, 1);
    }

    #[test]
    fn health_channel_sequences_and_caps() {
        let health = RuntimeHealth::new();
        for i in 0..300u64 {
            health.report(
                "writer",
                HealthReport::Pipeline {
                    enqueued: i,
                    durable: i,
                    dropped: 0,
                    backpressure_waits: 0,
                    fsyncs: 0,
                    group_commits: 0,
                    window_micros: 0,
                    queue_len: 0,
                    error: None,
                },
            );
        }
        health.report(
            "daemon",
            HealthReport::Daemon {
                polls: 1,
                events_applied: 0,
                rebases_detected: 0,
                error: None,
            },
        );
        let latest = health.latest("writer").expect("writer reported");
        assert_eq!(latest.seq, 300);
        assert_eq!(health.latest_all().len(), 2);
        let drained = health.drain();
        assert_eq!(drained.len(), HEALTH_BACKLOG, "backlog is bounded");
        assert!(health.drain().is_empty(), "drain empties the backlog");
    }

    #[test]
    fn health_sink_pushes_outside_lock() {
        let health = Arc::new(RuntimeHealth::new());
        let seen = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&seen);
        let probe = Arc::clone(&health);
        health.set_sink(Some(Arc::new(move |entry: &ComponentHealth| {
            counter.fetch_add(1, Ordering::SeqCst);
            // Re-entering the channel from the sink must not deadlock.
            let _ = probe.latest(&entry.component);
        })));
        health.report(
            "lint",
            HealthReport::Lint {
                checks_run: 1,
                entries_with_diagnostics: 0,
            },
        );
        assert_eq!(seen.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn runtime_drop_from_pool_job_does_not_self_join() {
        // A detached job can end up holding the last Arc<Runtime>; when
        // it finishes, Drop runs *on a worker thread* and must not try
        // to join that same thread.
        let runtime = Runtime::new(2);
        let held = Arc::clone(&runtime);
        let (tx, rx) = mpsc::channel::<()>();
        runtime.execute(move || {
            std::thread::sleep(Duration::from_millis(10));
            drop(held);
            let _ = tx.send(());
        });
        drop(runtime);
        // If Drop self-joined, this recv would never complete.
        rx.recv_timeout(Duration::from_secs(10))
            .expect("job finishes and the pool shuts down");
    }
}
