//! A small shared worker pool for CPU-bound background work.
//!
//! [`WorkerPool`] is the seed of ROADMAP direction 5 (one scheduler for
//! all background work): a fixed set of named threads
//! (`bx-worker-0` … `bx-worker-{n-1}`) draining a shared job queue. Its
//! first tenant is the parallel restore pipeline — chunked log decode
//! ([`crate::storage::EventLogBackend`]), sharded replay
//! ([`crate::event::replay_parallel`]) and derived-state rebuild
//! ([`crate::replica`]) — and its API is deliberately shaped so the
//! durability pipeline's writer thread, the replica daemon and the lint
//! engine's pool can migrate onto it later without reshaping their work.
//!
//! The pool runs `'static` jobs: callers share read-only inputs via
//! [`std::sync::Arc`] and partition mutable state by *moving* disjoint
//! pieces into each job (see `replay_parallel`, which moves each shard's
//! `EntryRecord`s in and back out). [`WorkerPool::scatter`] is the
//! scoped-job primitive — it blocks until every submitted job has
//! finished, so by the time it returns no worker holds any job state.
//! Results come back in **submission order** regardless of completion
//! order; this is what makes error reporting from parallel decode
//! deterministic (the first error *in log order* wins, not the first to
//! be discovered).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Options for the parallel restore pipeline, accepted by
/// [`crate::storage::EventLogBackend::restore_dir_with`],
/// [`crate::replica::Replica::open_with`] and
/// [`crate::replica::Federation::open_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestoreOptions {
    /// Worker threads for decode, replay and derived-state rebuild.
    /// `1` reproduces the sequential code path exactly (no pool is
    /// created); the default is [`std::thread::available_parallelism`].
    pub threads: usize,
}

impl Default for RestoreOptions {
    fn default() -> RestoreOptions {
        RestoreOptions {
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }
}

impl RestoreOptions {
    /// The sequential pipeline: identical code path to the pre-pool
    /// `restore_dir`/`open`, kept as the oracle the parallel pipeline is
    /// property-tested against.
    pub fn sequential() -> RestoreOptions {
        RestoreOptions { threads: 1 }
    }

    /// A pipeline pinned to exactly `threads` workers (tests and benches
    /// use this to compare thread counts on fixed inputs).
    pub fn with_threads(threads: usize) -> RestoreOptions {
        RestoreOptions {
            threads: threads.max(1),
        }
    }

    /// Whether these options select the parallel pipeline at all.
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }
}

/// One queued unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// State shared between the pool handle and its workers.
struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    /// Signalled when a job is enqueued or shutdown begins.
    available: Condvar,
    shutdown: AtomicBool,
}

/// A fixed-size pool of named worker threads; see the module docs.
///
/// Dropping the pool signals shutdown and joins every worker: jobs
/// already dequeued run to completion, queued-but-unstarted jobs are
/// still drained (the queue is emptied before workers exit), so no
/// submitted work is silently lost.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.workers.len())
            .finish()
    }
}

impl WorkerPool {
    /// A pool of `threads` workers (clamped to at least 1), named
    /// `bx-worker-0` … so they are identifiable in thread dumps.
    pub fn new(threads: usize) -> WorkerPool {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                Self::spawn_named(&format!("bx-worker-{i}"), move || Self::work(&shared))
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// A pool sized by [`std::thread::available_parallelism`].
    pub fn with_available_parallelism() -> WorkerPool {
        WorkerPool::new(RestoreOptions::default().threads)
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Spawn one named OS thread (the naming discipline every bx-core
    /// background thread follows; also used directly by one-shot helpers
    /// that do not need pooling).
    pub fn spawn_named<T: Send + 'static>(
        name: &str,
        f: impl FnOnce() -> T + Send + 'static,
    ) -> JoinHandle<T> {
        std::thread::Builder::new()
            .name(name.to_string())
            .spawn(f)
            .expect("spawning a worker thread succeeds")
    }

    /// Enqueue one fire-and-forget job.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        let mut queue = self
            .shared
            .queue
            .lock()
            .expect("worker pool queue lock is never poisoned");
        queue.push_back(Box::new(job));
        drop(queue);
        self.shared.available.notify_one();
    }

    /// Run a batch of jobs to completion and return their results **in
    /// submission order** (independent of which worker finished first).
    /// Blocks the calling thread until the whole batch is done — the
    /// scoped-job discipline: after `scatter` returns, no worker holds
    /// any state from this batch.
    ///
    /// Must only be called from *outside* the pool: a job that scatters
    /// nested work onto its own pool can deadlock (every worker blocked
    /// in `scatter`, none left to drain the nested jobs). Fan out across
    /// coarser units instead, as [`crate::replica::Federation::open_with`]
    /// does per source.
    pub fn scatter<T: Send + 'static>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
    ) -> Vec<T> {
        let n = jobs.len();
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        for (i, job) in jobs.into_iter().enumerate() {
            let tx = tx.clone();
            self.execute(move || {
                // A receiver dropped early (scatter unwound) is fine: the
                // result is simply discarded.
                let _ = tx.send((i, job()));
            });
        }
        drop(tx);
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for (i, result) in rx.iter().take(n) {
            slots[i] = Some(result);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every scattered job reports exactly once"))
            .collect()
    }

    /// The worker loop: drain jobs until shutdown *and* the queue is
    /// empty (queued work is never dropped).
    fn work(shared: &PoolShared) {
        loop {
            let job = {
                let mut queue = shared
                    .queue
                    .lock()
                    .expect("worker pool queue lock is never poisoned");
                loop {
                    if let Some(job) = queue.pop_front() {
                        break job;
                    }
                    if shared.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    queue = shared
                        .available
                        .wait(queue)
                        .expect("worker pool queue lock is never poisoned");
                }
            };
            job();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            // A worker that panicked already surfaced its panic to the
            // test harness; joining its remains must not double-panic.
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scatter_returns_results_in_submission_order() {
        let pool = WorkerPool::new(4);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..64usize)
            .map(|i| {
                Box::new(move || {
                    // Vary the work so completion order scrambles.
                    std::thread::sleep(std::time::Duration::from_micros((64 - i) as u64 * 10));
                    i * i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let results = pool.scatter(jobs);
        assert_eq!(results, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn drop_drains_queued_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..32 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn workers_are_named() {
        let pool = WorkerPool::new(1);
        let jobs: Vec<Box<dyn FnOnce() -> String + Send>> = vec![Box::new(|| {
            std::thread::current().name().unwrap_or("").to_string()
        })];
        assert_eq!(pool.scatter(jobs), vec!["bx-worker-0".to_string()]);
    }

    #[test]
    fn options_default_to_available_parallelism() {
        let options = RestoreOptions::default();
        assert!(options.threads >= 1);
        assert!(RestoreOptions::sequential().threads == 1);
        assert!(!RestoreOptions::sequential().is_parallel());
        assert_eq!(RestoreOptions::with_threads(0).threads, 1);
        assert!(RestoreOptions::with_threads(8).is_parallel());
    }

    #[test]
    fn empty_scatter_is_fine() {
        let pool = WorkerPool::new(2);
        let jobs: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
        assert!(pool.scatter(jobs).is_empty());
    }
}
