//! The review workflow: entries are provisional until reviewed.
//!
//! "We intend that examples remain provisional (version 0.x) until
//! reviewed (and approved, if necessary after modification) by other
//! members of the wiki."

use serde::{Deserialize, Serialize};
use std::fmt;

/// Lifecycle status of an entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EntryStatus {
    /// Contributed, version 0.x, free to revise.
    Provisional,
    /// A reviewer has been asked to look at it.
    UnderReview,
    /// Approved by at least one named reviewer (version ≥ 1.0). Further
    /// edits start a new provisional revision.
    Approved,
}

impl EntryStatus {
    /// Which statuses an entry may move to from here, and by which action.
    pub fn transitions(self) -> &'static [(EntryStatus, &'static str)] {
        match self {
            EntryStatus::Provisional => &[(EntryStatus::UnderReview, "request_review")],
            EntryStatus::UnderReview => &[
                (EntryStatus::Approved, "approve"),
                (EntryStatus::Provisional, "request_changes"),
            ],
            EntryStatus::Approved => &[(EntryStatus::Provisional, "revise")],
        }
    }

    /// Is the `to` status reachable in one step?
    pub fn can_move_to(self, to: EntryStatus) -> bool {
        self.transitions().iter().any(|(s, _)| *s == to)
    }
}

impl fmt::Display for EntryStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntryStatus::Provisional => write!(f, "provisional"),
            EntryStatus::UnderReview => write!(f, "under review"),
            EntryStatus::Approved => write!(f, "approved"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workflow_shape() {
        assert!(EntryStatus::Provisional.can_move_to(EntryStatus::UnderReview));
        assert!(!EntryStatus::Provisional.can_move_to(EntryStatus::Approved));
        assert!(EntryStatus::UnderReview.can_move_to(EntryStatus::Approved));
        assert!(EntryStatus::UnderReview.can_move_to(EntryStatus::Provisional));
        assert!(EntryStatus::Approved.can_move_to(EntryStatus::Provisional));
        assert!(!EntryStatus::Approved.can_move_to(EntryStatus::UnderReview));
    }

    #[test]
    fn transitions_are_labelled() {
        for s in [
            EntryStatus::Provisional,
            EntryStatus::UnderReview,
            EntryStatus::Approved,
        ] {
            for (_, action) in s.transitions() {
                assert!(!action.is_empty());
            }
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(EntryStatus::UnderReview.to_string(), "under review");
    }
}
