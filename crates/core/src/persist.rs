//! Persistence: the wiki-markup-independent form (§5.4: "we shall …
//! maintain a local copy of the repository contents, in case of future
//! difficulties").
//!
//! Snapshots serialise to JSON via serde. JSON is the archival format;
//! the wiki markup of [`crate::wiki`] is the presentation format; the bx
//! of [`crate::wiki_bx`] keeps the two consistent.
//!
//! These free functions are the whole-snapshot convenience layer; the
//! pluggable, delta-aware persistence story lives in [`crate::storage`]
//! (whose [`crate::storage::JsonFileBackend`] writes exactly this format).

use std::path::Path;

use crate::error::RepoError;
use crate::repo::{Repository, RepositorySnapshot};

/// Serialise a snapshot to pretty-printed JSON.
pub fn to_json(snapshot: &RepositorySnapshot) -> Result<String, RepoError> {
    serde_json::to_string_pretty(snapshot).map_err(|e| RepoError::Persist(e.to_string()))
}

/// Deserialise a snapshot from JSON.
pub fn from_json(json: &str) -> Result<RepositorySnapshot, RepoError> {
    serde_json::from_str(json).map_err(|e| RepoError::Persist(e.to_string()))
}

/// Save a repository's snapshot to a file.
pub fn save_file(repo: &Repository, path: &Path) -> Result<(), RepoError> {
    let json = to_json(&repo.snapshot())?;
    std::fs::write(path, json).map_err(|e| RepoError::Persist(e.to_string()))
}

/// Load a repository from a snapshot file.
pub fn load_file(path: &Path) -> Result<Repository, RepoError> {
    let json = std::fs::read_to_string(path).map_err(|e| RepoError::Persist(e.to_string()))?;
    Ok(Repository::from_snapshot(from_json(&json)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::principal::Principal;
    use crate::template::{ExampleEntry, ExampleType};
    use bx_theory::{Claim, Property};

    fn repo() -> Repository {
        let r = Repository::found("bx", vec![Principal::curator("c")]);
        r.register(Principal::member("alice")).unwrap();
        let e = ExampleEntry::builder("COMPOSERS")
            .of_type(ExampleType::Precise)
            .overview("O.")
            .models("M.")
            .consistency("C.")
            .restoration("F.", "B.")
            .property(Claim::holds(Property::Correct))
            .property(Claim::fails(Property::Undoable))
            .discussion("D.")
            .author("alice")
            .build()
            .unwrap();
        r.contribute("alice", e).unwrap();
        r
    }

    #[test]
    fn json_roundtrip_preserves_snapshot() {
        let snap = repo().snapshot();
        let json = to_json(&snap).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn json_contains_claims_and_versions() {
        let json = to_json(&repo().snapshot()).unwrap();
        assert!(json.contains("Undoable"));
        assert!(json.contains("Fails"));
        assert!(json.contains("\"major\": 0"));
    }

    #[test]
    fn bad_json_reports_persist_error() {
        assert!(matches!(from_json("{ nope"), Err(RepoError::Persist(_))));
    }

    #[test]
    fn file_roundtrip() {
        // Per-process path: parallel test runs (or stale files from an
        // aborted one) must not collide.
        let dir = std::env::temp_dir().join(format!("bx-core-persist-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.json");
        let r = repo();
        save_file(&r, &path).unwrap();
        let r2 = load_file(&path).unwrap();
        assert_eq!(r2.snapshot(), r.snapshot());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_reports_persist_error() {
        let e = load_file(Path::new("/nonexistent/definitely/missing.json"));
        assert!(matches!(e, Err(RepoError::Persist(_))));
    }
}
