//! Principals and the three-level curatorial structure (§5.1).
//!
//! "Anyone with a wiki account will be able to comment … each example will
//! also have one or more named reviewers … overall editorial control of
//! the repository is the responsibility of a small group of curators."

use serde::{Deserialize, Serialize};
use std::fmt;

/// The three curation levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Role {
    /// A registered wiki account: may contribute entries and comment.
    Member,
    /// A recognised community member whose name as reviewer indicates an
    /// example is of usable quality; may approve entries.
    Reviewer,
    /// Editorial control: may grant roles and administer the repository.
    Curator,
}

impl Role {
    /// Does this role subsume `other`? (Curator ⊇ Reviewer ⊇ Member.)
    pub fn at_least(self, other: Role) -> bool {
        self >= other
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Role::Member => write!(f, "Member"),
            Role::Reviewer => write!(f, "Reviewer"),
            Role::Curator => write!(f, "Curator"),
        }
    }
}

/// A registered account.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Principal {
    /// Account name (unique).
    pub name: String,
    /// Optional affiliation, shown in author/reviewer lists.
    pub affiliation: Option<String>,
    /// Curation level.
    pub role: Role,
}

impl Principal {
    /// A member-level account.
    pub fn member(name: &str) -> Principal {
        Principal {
            name: name.to_string(),
            affiliation: None,
            role: Role::Member,
        }
    }

    /// A reviewer-level account.
    pub fn reviewer(name: &str) -> Principal {
        Principal {
            name: name.to_string(),
            affiliation: None,
            role: Role::Reviewer,
        }
    }

    /// A curator-level account.
    pub fn curator(name: &str) -> Principal {
        Principal {
            name: name.to_string(),
            affiliation: None,
            role: Role::Curator,
        }
    }

    /// Set the affiliation.
    pub fn with_affiliation(mut self, affiliation: &str) -> Principal {
        self.affiliation = Some(affiliation.to_string());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_ordering_matches_subsumption() {
        assert!(Role::Curator.at_least(Role::Reviewer));
        assert!(Role::Curator.at_least(Role::Member));
        assert!(Role::Reviewer.at_least(Role::Member));
        assert!(!Role::Member.at_least(Role::Reviewer));
        assert!(Role::Member.at_least(Role::Member));
    }

    #[test]
    fn constructors_set_roles() {
        assert_eq!(Principal::member("a").role, Role::Member);
        assert_eq!(Principal::reviewer("b").role, Role::Reviewer);
        assert_eq!(Principal::curator("c").role, Role::Curator);
    }

    #[test]
    fn affiliation_builder() {
        let p = Principal::member("Perdita Stevens").with_affiliation("University of Edinburgh");
        assert_eq!(p.affiliation.as_deref(), Some("University of Edinburgh"));
    }

    #[test]
    fn role_display() {
        assert_eq!(Role::Reviewer.to_string(), "Reviewer");
    }
}
