//! The binary segmented event log: [`BinaryLogBackend`].
//!
//! A second on-disk format behind [`crate::storage::StorageBackend`],
//! built for raw replay speed and whole-log corruption detection. Where
//! [`crate::storage::EventLogBackend`] writes one JSON line per event
//! (human-friendly, parse- and allocation-bound on replay, torn-tail
//! detection by line heuristic), this backend writes length-prefixed
//! binary *frames* into fixed-size *segment* files:
//!
//! ```text
//! frame := len:u32le  check:u32le  crc:u32le  payload[len]
//!          check = len XOR 0xA5A5_5A5A   (self-verifying header)
//!          crc   = CRC-32 (IEEE) of payload
//! ```
//!
//! * Any single corrupted byte anywhere in a complete log is detected:
//!   a flip in the header fails the `check` mask, a flip in the payload
//!   (or the stored CRC) fails the CRC, and either surfaces as the typed
//!   [`RepoError::CorruptFrame`] — never a silent skip, never a panic.
//! * A *torn tail* — fewer bytes than one whole frame promises, at the
//!   very end of the last segment — is what a crash mid-`write` leaves.
//!   It is not corruption: readers stop cleanly before it and the writer
//!   truncates it at open, exactly the JSONL backend's contract.
//! * Replay is one buffered read per segment plus an in-place frame
//!   scan: no line splitting, no intermediate `String`s, no serde.
//!
//! A log *generation* is the logical unit the checkpoint manifest names
//! (`events-<n>.bin`); on disk it is a run of segment files
//! `events-<n>.bin.000000`, `events-<n>.bin.000001`, … each at most
//! [`BinaryLogBackend::DEFAULT_SEGMENT_BYTES`] long (frames never span
//! segments). Only the last segment is ever appended to, so replicas
//! tail a generation by *global* byte offset — the sum of the sealed
//! segments plus the position in the live one — and an unchanged log
//! costs only a metadata stat to poll.
//!
//! The manifest (`checkpoint.json`) is shared with the JSONL backend —
//! deliberately, so one directory format serves both and
//! [`crate::storage::EventLogBackend::restore_dir`], the `bx_lint` CLI,
//! [`crate::replica::Replica`] and federations dispatch on the generation
//! name's extension alone.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::error::RepoError;
use crate::event::{replay, RepoEvent};
use crate::repo::RepositorySnapshot;
use crate::storage::{
    DurabilityMode, EventLogBackend, FsyncStats, Manifest, StorageBackend, TailRepaired,
};
use crate::template::{
    Artefact, ArtefactKind, Comment, ExampleEntry, ExampleType, Reference, RestorationSpec,
    VariantPoint,
};
use crate::version::Version;

use bx_theory::{Claim, Polarity, Property};

/// The XOR mask making a frame header self-verifying: a header is valid
/// iff its second word equals `len ^ LEN_MASK`, so a bit flip in either
/// word is caught before `len` is trusted to index anything.
const LEN_MASK: u32 = 0xA5A5_5A5A;

/// Frame header size: `len`, `check`, `crc`, each `u32` little-endian.
const FRAME_HEADER: usize = 12;

/// Generation names of this format end in `.bin` (vs `.jsonl`).
pub const BIN_SUFFIX: &str = ".bin";

/// Whether a generation name (from a checkpoint manifest or
/// [`crate::storage::EventLogBackend::read_state_in`]) names a binary
/// segmented log rather than a JSONL one.
pub fn is_binary_generation(name: &str) -> bool {
    name.ends_with(BIN_SUFFIX)
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected) — slicing-by-8, tables built at
// compile time. The checksum runs over every payload byte on both the
// write and the replay path, so its throughput bounds cold restore; the
// eight-table variant processes 8 bytes per step instead of 1.
// ---------------------------------------------------------------------

const fn crc_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

static CRC_TABLES: [[u32; 256]; 8] = crc_tables();

/// CRC-32 (IEEE) of `bytes` — the per-frame payload checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = &CRC_TABLES;
    let mut c = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ c;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        c = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------
// Event codec: a hand-rolled, schema-stable binary form of RepoEvent.
// ---------------------------------------------------------------------
//
// The vendored serde stand-ins only target JSON, so the binary payload
// format is written out by hand: little-endian fixed-width integers,
// `u32` length-prefixed UTF-8 strings, `u32` count-prefixed sequences,
// one-byte presence flags for options, and one-byte tags for enums in
// declaration order. Decoding borrows the payload slice and allocates
// only the output strings — no intermediate representation.

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_opt_str(out: &mut Vec<u8>, s: &Option<String>) {
    match s {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            put_str(out, s);
        }
    }
}

fn put_seq<T>(out: &mut Vec<u8>, items: &[T], mut f: impl FnMut(&mut Vec<u8>, &T)) {
    put_u32(out, items.len() as u32);
    for item in items {
        f(out, item);
    }
}

/// A decode cursor over a borrowed payload. Errors are plain strings;
/// the frame scanner wraps them into [`RepoError::CorruptFrame`] with
/// the segment and offset attached.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Cur<'a> {
        Cur { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.buf.len() - self.pos < n {
            return Err(format!(
                "payload truncated: need {n} bytes at {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn str(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|e| format!("invalid UTF-8 in string field: {e}"))
    }

    fn opt_str(&mut self) -> Result<Option<String>, String> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.str()?)),
            t => Err(format!("invalid option tag {t}")),
        }
    }

    fn seq<T>(
        &mut self,
        mut f: impl FnMut(&mut Cur<'a>) -> Result<T, String>,
    ) -> Result<Vec<T>, String> {
        let n = self.u32()? as usize;
        // A corrupt count could claim billions of items; items are at
        // least one byte each, so bound by the bytes actually present.
        if n > self.buf.len() - self.pos {
            return Err(format!("sequence count {n} exceeds remaining payload"));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(f(self)?);
        }
        Ok(out)
    }

    fn done(self) -> Result<(), String> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after event payload",
                self.buf.len() - self.pos
            ))
        }
    }
}

fn put_principal(out: &mut Vec<u8>, p: &crate::principal::Principal) {
    put_str(out, &p.name);
    put_opt_str(out, &p.affiliation);
    out.push(role_tag(p.role));
}

fn role_tag(r: crate::principal::Role) -> u8 {
    use crate::principal::Role::*;
    match r {
        Member => 0,
        Reviewer => 1,
        Curator => 2,
    }
}

fn role_of(tag: u8) -> Result<crate::principal::Role, String> {
    use crate::principal::Role::*;
    Ok(match tag {
        0 => Member,
        1 => Reviewer,
        2 => Curator,
        t => return Err(format!("invalid role tag {t}")),
    })
}

fn get_principal(c: &mut Cur<'_>) -> Result<crate::principal::Principal, String> {
    Ok(crate::principal::Principal {
        name: c.str()?,
        affiliation: c.opt_str()?,
        role: role_of(c.u8()?)?,
    })
}

fn put_comment(out: &mut Vec<u8>, c: &Comment) {
    put_str(out, &c.author);
    put_str(out, &c.date);
    put_str(out, &c.text);
}

fn get_comment(c: &mut Cur<'_>) -> Result<Comment, String> {
    Ok(Comment {
        author: c.str()?,
        date: c.str()?,
        text: c.str()?,
    })
}

fn example_type_tag(t: ExampleType) -> u8 {
    match t {
        ExampleType::Precise => 0,
        ExampleType::Industrial => 1,
        ExampleType::Sketch => 2,
        ExampleType::Benchmark => 3,
    }
}

fn example_type_of(tag: u8) -> Result<ExampleType, String> {
    Ok(match tag {
        0 => ExampleType::Precise,
        1 => ExampleType::Industrial,
        2 => ExampleType::Sketch,
        3 => ExampleType::Benchmark,
        t => return Err(format!("invalid example-type tag {t}")),
    })
}

fn property_tag(p: Property) -> u8 {
    match p {
        Property::Correct => 0,
        Property::Hippocratic => 1,
        Property::Undoable => 2,
        Property::HistoryIgnorant => 3,
        Property::SimplyMatching => 4,
        Property::Bijective => 5,
        Property::NonDestructive => 6,
    }
}

fn property_of(tag: u8) -> Result<Property, String> {
    Ok(match tag {
        0 => Property::Correct,
        1 => Property::Hippocratic,
        2 => Property::Undoable,
        3 => Property::HistoryIgnorant,
        4 => Property::SimplyMatching,
        5 => Property::Bijective,
        6 => Property::NonDestructive,
        t => return Err(format!("invalid property tag {t}")),
    })
}

fn artefact_kind_tag(k: &ArtefactKind) -> u8 {
    match k {
        ArtefactKind::Code => 0,
        ArtefactKind::Diagram => 1,
        ArtefactKind::SampleData => 2,
        ArtefactKind::ProofScript => 3,
        ArtefactKind::VmImage => 4,
        ArtefactKind::Other => 5,
    }
}

fn artefact_kind_of(tag: u8) -> Result<ArtefactKind, String> {
    Ok(match tag {
        0 => ArtefactKind::Code,
        1 => ArtefactKind::Diagram,
        2 => ArtefactKind::SampleData,
        3 => ArtefactKind::ProofScript,
        4 => ArtefactKind::VmImage,
        5 => ArtefactKind::Other,
        t => return Err(format!("invalid artefact-kind tag {t}")),
    })
}

fn put_entry(out: &mut Vec<u8>, e: &ExampleEntry) {
    put_str(out, &e.title);
    put_u32(out, e.version.major);
    put_u32(out, e.version.minor);
    put_seq(out, &e.types, |o, t| o.push(example_type_tag(*t)));
    put_str(out, &e.overview);
    put_str(out, &e.models);
    put_str(out, &e.consistency);
    put_str(out, &e.restoration.forward);
    put_str(out, &e.restoration.backward);
    put_seq(out, &e.properties, |o, c| {
        o.push(property_tag(c.property));
        o.push(match c.polarity {
            Polarity::Holds => 0,
            Polarity::Fails => 1,
        });
    });
    put_seq(out, &e.variants, |o, v| {
        put_str(o, &v.name);
        put_str(o, &v.description);
    });
    put_str(out, &e.discussion);
    put_seq(out, &e.references, |o, r| {
        put_str(o, &r.citation);
        put_opt_str(o, &r.doi);
    });
    put_seq(out, &e.authors, |o, a| put_str(o, a));
    put_seq(out, &e.reviewers, |o, r| put_str(o, r));
    put_seq(out, &e.comments, put_comment);
    put_seq(out, &e.artefacts, |o, a| {
        put_str(o, &a.name);
        o.push(artefact_kind_tag(&a.kind));
        put_str(o, &a.location);
    });
}

fn get_entry(c: &mut Cur<'_>) -> Result<ExampleEntry, String> {
    Ok(ExampleEntry {
        title: c.str()?,
        version: Version {
            major: c.u32()?,
            minor: c.u32()?,
        },
        types: c.seq(|c| example_type_of(c.u8()?))?,
        overview: c.str()?,
        models: c.str()?,
        consistency: c.str()?,
        restoration: RestorationSpec {
            forward: c.str()?,
            backward: c.str()?,
        },
        properties: c.seq(|c| {
            Ok(Claim {
                property: property_of(c.u8()?)?,
                polarity: match c.u8()? {
                    0 => Polarity::Holds,
                    1 => Polarity::Fails,
                    t => return Err(format!("invalid polarity tag {t}")),
                },
            })
        })?,
        variants: c.seq(|c| {
            Ok(VariantPoint {
                name: c.str()?,
                description: c.str()?,
            })
        })?,
        discussion: c.str()?,
        references: c.seq(|c| {
            Ok(Reference {
                citation: c.str()?,
                doi: c.opt_str()?,
            })
        })?,
        authors: c.seq(|c| c.str())?,
        reviewers: c.seq(|c| c.str())?,
        comments: c.seq(get_comment)?,
        artefacts: c.seq(|c| {
            Ok(Artefact {
                name: c.str()?,
                kind: artefact_kind_of(c.u8()?)?,
                location: c.str()?,
            })
        })?,
    })
}

fn put_entry_delta(out: &mut Vec<u8>, d: &crate::event::EntryDelta) {
    put_str(out, &d.id.0);
    put_entry(out, &d.entry);
}

fn get_entry_delta(c: &mut Cur<'_>) -> Result<crate::event::EntryDelta, String> {
    Ok(crate::event::EntryDelta {
        id: crate::repo::EntryId(c.str()?),
        entry: get_entry(c)?,
    })
}

/// Serialise one event into the payload form the frame CRC covers.
pub fn encode_event(event: &RepoEvent, out: &mut Vec<u8>) {
    use crate::event::*;
    match event {
        RepoEvent::Founded(x) => {
            out.push(0);
            put_str(out, &x.name);
            put_seq(out, &x.curators, put_principal);
        }
        RepoEvent::Registered(x) => {
            out.push(1);
            put_principal(out, &x.principal);
        }
        RepoEvent::RoleGranted(x) => {
            out.push(2);
            put_str(out, &x.account);
            out.push(role_tag(x.role));
        }
        RepoEvent::Contributed(d) => {
            out.push(3);
            put_entry_delta(out, d);
        }
        RepoEvent::Revised(d) => {
            out.push(4);
            put_entry_delta(out, d);
        }
        RepoEvent::Approved(d) => {
            out.push(5);
            put_entry_delta(out, d);
        }
        RepoEvent::Commented(x) => {
            out.push(6);
            put_str(out, &x.id.0);
            put_comment(out, &x.comment);
        }
        RepoEvent::ReviewRequested(r) => {
            out.push(7);
            put_str(out, &r.id.0);
        }
        RepoEvent::ChangesRequested(r) => {
            out.push(8);
            put_str(out, &r.id.0);
        }
    }
}

/// Decode one event payload (the exact slice the CRC covered).
pub fn decode_event(payload: &[u8]) -> Result<RepoEvent, String> {
    use crate::event::*;
    let mut c = Cur::new(payload);
    let event = match c.u8()? {
        0 => RepoEvent::Founded(Founded {
            name: c.str()?,
            curators: c.seq(get_principal)?,
        }),
        1 => RepoEvent::Registered(Registered {
            principal: get_principal(&mut c)?,
        }),
        2 => RepoEvent::RoleGranted(RoleGranted {
            account: c.str()?,
            role: role_of(c.u8()?)?,
        }),
        3 => RepoEvent::Contributed(get_entry_delta(&mut c)?),
        4 => RepoEvent::Revised(get_entry_delta(&mut c)?),
        5 => RepoEvent::Approved(get_entry_delta(&mut c)?),
        6 => RepoEvent::Commented(Commented {
            id: crate::repo::EntryId(c.str()?),
            comment: get_comment(&mut c)?,
        }),
        7 => RepoEvent::ReviewRequested(EntryRef {
            id: crate::repo::EntryId(c.str()?),
        }),
        8 => RepoEvent::ChangesRequested(EntryRef {
            id: crate::repo::EntryId(c.str()?),
        }),
        t => return Err(format!("invalid event tag {t}")),
    };
    c.done()?;
    Ok(event)
}

/// Append one framed event (header + payload) to `out`.
pub fn encode_frame(event: &RepoEvent, out: &mut Vec<u8>) {
    let header_at = out.len();
    out.extend_from_slice(&[0u8; FRAME_HEADER]);
    encode_event(event, out);
    let payload = &out[header_at + FRAME_HEADER..];
    let len = payload.len() as u32;
    let crc = crc32(payload);
    out[header_at..header_at + 4].copy_from_slice(&len.to_le_bytes());
    out[header_at + 4..header_at + 8].copy_from_slice(&(len ^ LEN_MASK).to_le_bytes());
    out[header_at + 8..header_at + 12].copy_from_slice(&crc.to_le_bytes());
}

/// What the scanner found at one position in a segment buffer.
// The event variant dwarfs the others, but this enum lives only as a
// hot-path return value — boxing every decoded event to shrink it would
// add an allocation per replayed frame for nothing.
#[allow(clippy::large_enum_variant)]
enum FrameScan {
    /// Clean end of buffer: the position sits exactly on a frame boundary.
    End,
    /// A complete, checksum-clean frame; `usize` is the next position.
    Frame(RepoEvent, usize),
    /// Fewer bytes remain than one whole frame promises — a torn tail if
    /// this is the end of the *last* segment, corruption otherwise.
    Torn,
    /// An integrity check failed: header mask, payload CRC, or decode.
    Corrupt(String),
}

fn scan_frame(buf: &[u8], pos: usize) -> FrameScan {
    let remaining = buf.len() - pos;
    if remaining == 0 {
        return FrameScan::End;
    }
    if remaining < FRAME_HEADER {
        return FrameScan::Torn;
    }
    let word = |at: usize| u32::from_le_bytes([buf[at], buf[at + 1], buf[at + 2], buf[at + 3]]);
    let len = word(pos);
    let check = word(pos + 4);
    // Verify the header before trusting `len` for anything — a flipped
    // length byte must read as corruption, not as a huge torn tail.
    if check != len ^ LEN_MASK {
        return FrameScan::Corrupt(format!(
            "frame header check mismatch (len={len:#010x}, check={check:#010x})"
        ));
    }
    let len = len as usize;
    if remaining < FRAME_HEADER + len {
        return FrameScan::Torn;
    }
    let stored_crc = word(pos + 8);
    let payload = &buf[pos + FRAME_HEADER..pos + FRAME_HEADER + len];
    let actual_crc = crc32(payload);
    if actual_crc != stored_crc {
        return FrameScan::Corrupt(format!(
            "payload CRC mismatch (stored {stored_crc:#010x}, computed {actual_crc:#010x})"
        ));
    }
    match decode_event(payload) {
        Ok(event) => FrameScan::Frame(event, pos + FRAME_HEADER + len),
        Err(e) => FrameScan::Corrupt(format!("payload decode failed: {e}")),
    }
}

/// Decode the frames of one segment buffer from `start`. Returns the
/// events plus the byte position consumed. A torn tail is tolerated only
/// when `last_segment` (sealed segments hold whole frames by
/// construction); anything else integrity-fails as
/// [`RepoError::CorruptFrame`].
fn read_segment(
    buf: &[u8],
    segment: &str,
    last_segment: bool,
    start: usize,
) -> Result<(Vec<RepoEvent>, usize), RepoError> {
    // Guess one event per 96 bytes (small comment frames) so a replay
    // of a full segment does not regrow the vector a dozen times; a
    // short guess merely falls back to normal amortised growth.
    let mut events = Vec::with_capacity(buf.len().saturating_sub(start) / 96);
    let mut pos = start;
    loop {
        match scan_frame(buf, pos) {
            FrameScan::End => return Ok((events, pos)),
            FrameScan::Frame(event, next) => {
                events.push(event);
                pos = next;
            }
            FrameScan::Torn if last_segment => return Ok((events, pos)),
            FrameScan::Torn => {
                return Err(RepoError::CorruptFrame {
                    segment: segment.to_string(),
                    offset: pos as u64,
                    reason: "incomplete frame inside a sealed segment".to_string(),
                })
            }
            FrameScan::Corrupt(reason) => {
                return Err(RepoError::CorruptFrame {
                    segment: segment.to_string(),
                    offset: pos as u64,
                    reason,
                })
            }
        }
    }
}

fn io_err(e: std::io::Error) -> RepoError {
    RepoError::Persist(e.to_string())
}

/// The segment files of one generation, sorted (zero-padded indices make
/// lexical order numeric order). Empty when the generation has never
/// been written — or the directory does not exist.
pub fn segment_files(dir: &Path, generation: &str) -> Result<Vec<String>, RepoError> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(io_err(e)),
    };
    let prefix = format!("{generation}.");
    let mut out = Vec::new();
    for entry in entries {
        let entry = entry.map_err(io_err)?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(rest) = name.strip_prefix(&prefix) {
            if rest.len() == 6 && rest.bytes().all(|b| b.is_ascii_digit()) {
                out.push(name);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Total on-disk length of a generation — the sum of its segment sizes.
/// This is the "end offset" a fully caught-up tail sits at, so an
/// unchanged log is detected by metadata alone.
pub(crate) fn generation_len(dir: &Path, generation: &str) -> Result<u64, RepoError> {
    let mut total = 0;
    for name in segment_files(dir, generation)? {
        total += std::fs::metadata(dir.join(&name)).map_err(io_err)?.len();
    }
    Ok(total)
}

/// Read a generation's events from a *global* byte offset (a frame
/// boundary from a previous read). Returns `Ok(None)` when the log is
/// shorter than `offset` — it was checkpoint-rolled or foreign-truncated
/// and the caller must re-base — and `Ok(Some((events, end)))` otherwise,
/// where `end` is the offset consumed (torn tail bytes excluded). The
/// unchanged case (`end == offset`, no events) costs one directory scan
/// and per-segment stats, no reads.
pub(crate) fn read_tail(
    dir: &Path,
    generation: &str,
    offset: u64,
) -> Result<Option<(Vec<RepoEvent>, u64)>, RepoError> {
    let segments = segment_files(dir, generation)?;
    let mut sizes = Vec::with_capacity(segments.len());
    for name in &segments {
        sizes.push(std::fs::metadata(dir.join(name)).map_err(io_err)?.len());
    }
    let total: u64 = sizes.iter().sum();
    if total < offset {
        return Ok(None);
    }
    if total == offset {
        return Ok(Some((Vec::new(), offset)));
    }
    let last = segments.len().saturating_sub(1);
    let mut events = Vec::new();
    let mut consumed = offset;
    let mut base = 0u64;
    for (i, (name, &size)) in segments.iter().zip(&sizes).enumerate() {
        if base + size <= offset {
            // Entirely before the tail: sealed segments never change, so
            // the statted size is their final size.
            base += size;
            continue;
        }
        let local_start = offset.saturating_sub(base) as usize;
        // One buffered read of the whole segment; frames decode in place.
        let buf = std::fs::read(dir.join(name)).map_err(io_err)?;
        if local_start > buf.len() {
            return Ok(None);
        }
        let (mut decoded, local_end) = read_segment(&buf, name, i == last, local_start)?;
        events.append(&mut decoded);
        consumed = base + local_end as u64;
        if local_end < buf.len() {
            // Torn tail: stop here; the bytes stay unconsumed for the
            // next poll (by then the writer may have completed the frame).
            break;
        }
        base += buf.len() as u64;
    }
    Ok(Some((events, consumed)))
}

/// All events of a generation (the cold-restore read path).
pub(crate) fn read_generation(dir: &Path, generation: &str) -> Result<Vec<RepoEvent>, RepoError> {
    Ok(read_tail(dir, generation, 0)?
        .map(|(events, _)| events)
        .unwrap_or_default())
}

/// [`read_generation`] fanned out across a worker pool: one job per
/// segment file (sealed segments are immutable and CRC-framed, so they
/// decode independently; only the last segment may carry a torn tail).
/// Results are spliced back in segment order, and an error surfaces as
/// the first offending `(segment, offset)` **in log order** regardless of
/// which worker finished first — bit-identical to the sequential read on
/// every input, corrupt or clean. Returns the events plus the global byte
/// offset consumed (torn tail excluded), the same contract as
/// `read_tail(dir, generation, 0)`.
pub(crate) fn read_generation_parallel(
    dir: &Path,
    generation: &str,
    pool: &crate::runtime::WorkerPool,
) -> Result<(Vec<RepoEvent>, u64), RepoError> {
    let segments = segment_files(dir, generation)?;
    if segments.is_empty() {
        return Ok((Vec::new(), 0));
    }
    let last = segments.len() - 1;
    type SegmentRead = Result<(Vec<RepoEvent>, usize), RepoError>;
    let jobs: Vec<Box<dyn FnOnce() -> SegmentRead + Send>> = segments
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let path = dir.join(name);
            let name = name.clone();
            let last_segment = i == last;
            Box::new(move || -> SegmentRead {
                let buf = std::fs::read(&path).map_err(io_err)?;
                read_segment(&buf, &name, last_segment, 0)
            }) as Box<dyn FnOnce() -> SegmentRead + Send>
        })
        .collect();
    let mut events = Vec::new();
    let mut consumed = 0u64;
    for result in pool.scatter(jobs) {
        // Ordered gather: the first failing segment in log order wins.
        // A sealed segment either decodes fully or errors, so summing
        // per-segment consumption equals the sequential global offset.
        let (mut decoded, local_end) = result?;
        events.append(&mut decoded);
        consumed += local_end as u64;
    }
    Ok((events, consumed))
}

/// The generation name to assume for a directory with no checkpoint
/// manifest: binary if generation-0 binary segments exist, else the
/// JSONL default (which also covers a completely fresh directory).
pub(crate) fn unmanifested_generation(dir: &Path) -> String {
    match segment_files(dir, "events-0.bin") {
        Ok(segments) if !segments.is_empty() => "events-0.bin".to_string(),
        _ => "events-0.jsonl".to_string(),
    }
}

/// A strict prefix of a valid frame — the bytes a crash mid-`write(2)`
/// leaves behind. Appending this to a binary log's last segment
/// simulates a torn tail that readers must drop and the writer must
/// truncate at open (test/fault-injection support; the JSONL analogue is
/// `bx_testkit`'s `torn_append`).
pub fn torn_frame_bytes() -> Vec<u8> {
    let len: u32 = 64;
    let mut out = Vec::with_capacity(FRAME_HEADER + 5);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&(len ^ LEN_MASK).to_le_bytes());
    out.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
    out.extend_from_slice(b"torn!");
    out
}

/// A *complete* frame whose payload CRC is wrong — real corruption, not
/// a torn tail: the header is self-consistent and the payload is all
/// present, so readers raise [`RepoError::CorruptFrame`] at its offset
/// instead of dropping it (test/fault-injection support; the salvage
/// path truncates exactly here).
pub fn corrupt_frame_bytes() -> Vec<u8> {
    let payload = b"rotted!";
    let len = payload.len() as u32;
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&(len ^ LEN_MASK).to_le_bytes());
    // Deliberately not crc32(payload).
    out.extend_from_slice(&(!crc32(payload)).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Convert an event-log directory between the two on-disk formats.
///
/// Reads the durable contents of `src` — checkpoint base plus the intact
/// events of the generation the manifest names, in whichever format that
/// generation is — and writes an equivalent directory at `dst` in the
/// format `to_binary` selects. The converted directory mirrors the
/// source's shape: a source with a checkpoint manifest yields a
/// checkpointed destination (base state first, pending events recorded
/// after); a bare unmanifested log stays bare. Returns the number of
/// pending events carried across.
///
/// A torn tail in `src` is dropped (it was never durable); real
/// corruption aborts the conversion with the source format's error
/// ([`RepoError::CorruptFrame`] for binary, `Persist` for JSONL).
/// `dst` must be empty or absent — an existing log is refused, never
/// merged into. This is the engine behind the `bx_logconv` CLI; the
/// round-trip property (JSONL → binary → JSONL restores identically)
/// is tested over generated op scripts in `tests/logconv_roundtrip.rs`.
pub fn convert_log_dir(src: &Path, dst: &Path, to_binary: bool) -> Result<usize, RepoError> {
    convert_log_dir_with(
        src,
        dst,
        to_binary,
        crate::runtime::RestoreOptions::sequential(),
    )
}

/// [`convert_log_dir`] with the source decode fanned out over
/// [`crate::runtime::RestoreOptions::threads`] workers — what the
/// `bx_logconv` CLI uses, so a whole federation's source set converts on
/// all cores. Decode order, the converted bytes and which error a
/// corrupt source surfaces are identical to the sequential conversion.
pub fn convert_log_dir_with(
    src: &Path,
    dst: &Path,
    to_binary: bool,
    options: crate::runtime::RestoreOptions,
) -> Result<usize, RepoError> {
    if !options.is_parallel() {
        return convert_log_dir_pooled(src, dst, to_binary, None);
    }
    let pool = crate::runtime::WorkerPool::new(options.threads);
    convert_log_dir_pooled(src, dst, to_binary, Some(&pool))
}

/// [`convert_log_dir_with`] on a shared [`Runtime`](crate::runtime::Runtime)'s
/// pool instead of a pool of its own — batch conversions become one more
/// tenant of a node's bounded worker set.
pub fn convert_log_dir_on(
    src: &Path,
    dst: &Path,
    to_binary: bool,
    runtime: &std::sync::Arc<crate::runtime::Runtime>,
) -> Result<usize, RepoError> {
    convert_log_dir_pooled(src, dst, to_binary, Some(runtime.pool()))
}

fn convert_log_dir_pooled(
    src: &Path,
    dst: &Path,
    to_binary: bool,
    pool: Option<&crate::runtime::WorkerPool>,
) -> Result<usize, RepoError> {
    if dst.exists() {
        let occupied = std::fs::read_dir(dst)
            .map_err(|e| RepoError::Persist(e.to_string()))?
            .next()
            .is_some();
        if occupied {
            return Err(RepoError::Persist(format!(
                "destination `{}` already has contents; refusing to merge a conversion into it",
                dst.display()
            )));
        }
    }
    let (base, generation) = EventLogBackend::read_state_in(src)?;
    let events = match pool {
        Some(pool) => EventLogBackend::read_generation_events_pooled(src, &generation, pool)?,
        None => EventLogBackend::read_generation_events(src, &generation)?,
    };
    let mut target: Box<dyn StorageBackend> = if to_binary {
        Box::new(BinaryLogBackend::open(dst)?)
    } else {
        Box::new(EventLogBackend::open(dst)?)
    };
    if src.join("checkpoint.json").exists() {
        target.checkpoint(&base)?;
    }
    if !events.is_empty() {
        target.record(&events)?;
    }
    Ok(events.len())
}

/// Append-only binary segmented log backend. See the module docs for the
/// format; the operational contract (persistent appender, two-phase
/// durability, manifest-rename checkpoints, single writer per directory,
/// clones are fresh writers owing no fsync) mirrors
/// [`crate::storage::EventLogBackend`] exactly — the two are drop-in
/// interchangeable behind [`StorageBackend`].
#[derive(Debug)]
pub struct BinaryLogBackend {
    dir: PathBuf,
    /// Current generation's logical name (`events-<n>.bin`), relative to
    /// `dir`. Segment files append a `.NNNNNN` index to it.
    generation: String,
    /// Index of the segment currently being appended to.
    segment_index: u32,
    /// Byte length of the current segment (tracked to decide rolls
    /// without a stat per batch; re-derived whenever the appender opens).
    segment_len: u64,
    /// Roll to a new segment once the current one would exceed this.
    segment_bytes: u64,
    durability: DurabilityMode,
    appender: Option<File>,
    /// Bytes staged but not fsynced — only in [`DurabilityMode::GroupCommit`].
    dirty: bool,
    /// Current segment's length at its last fsync, for the
    /// `sync_data`-when-unchanged downgrade.
    synced_len: Option<u64>,
    fsync_stats: FsyncStats,
    /// The torn-tail truncation `open` performed, if any.
    tail_repaired: Option<TailRepaired>,
}

/// A clone is a fresh writer over the same directory and generation — it
/// opens its own appender on first use and owes no fsync for bytes the
/// original staged.
impl Clone for BinaryLogBackend {
    fn clone(&self) -> BinaryLogBackend {
        BinaryLogBackend {
            dir: self.dir.clone(),
            generation: self.generation.clone(),
            segment_index: self.segment_index,
            segment_len: self.segment_len,
            segment_bytes: self.segment_bytes,
            durability: self.durability,
            appender: None,
            dirty: false,
            synced_len: None,
            fsync_stats: FsyncStats::default(),
            tail_repaired: None,
        }
    }
}

impl BinaryLogBackend {
    /// Default segment size cap. Small enough that tailing re-reads at
    /// most this much on a partially-consumed segment, large enough that
    /// a million-event log stays in the tens of segments.
    pub const DEFAULT_SEGMENT_BYTES: u64 = 8 * 1024 * 1024;

    /// Open (creating the directory if needed) a binary log under `dir`
    /// with the default segment size.
    pub fn open(dir: impl Into<PathBuf>) -> Result<BinaryLogBackend, RepoError> {
        Self::open_with_segment_bytes(dir, Self::DEFAULT_SEGMENT_BYTES)
    }

    /// Open with an explicit segment size cap (frames never span
    /// segments, so a frame larger than the cap gets a segment to
    /// itself). Opening repairs a torn final frame in the last segment —
    /// the fragment was never readable, so truncating it loses nothing —
    /// but leaves *corrupt* frames untouched for `restore` to report.
    pub fn open_with_segment_bytes(
        dir: impl Into<PathBuf>,
        segment_bytes: u64,
    ) -> Result<BinaryLogBackend, RepoError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(io_err)?;
        let generation = match EventLogBackend::read_manifest_in(&dir)? {
            Some(manifest) => manifest.log,
            None => "events-0.bin".to_string(),
        };
        if !is_binary_generation(&generation) {
            return Err(RepoError::Persist(format!(
                "directory holds a JSONL event log (generation `{generation}`); \
                 open it with EventLogBackend or convert it with bx_logconv"
            )));
        }
        let segment_index = segment_files(&dir, &generation)?
            .last()
            .and_then(|name| name.rsplit('.').next())
            .and_then(|idx| idx.parse().ok())
            .unwrap_or(0);
        let mut backend = BinaryLogBackend {
            dir,
            generation,
            segment_index,
            segment_len: 0,
            segment_bytes: segment_bytes.max(1),
            durability: DurabilityMode::default(),
            appender: None,
            dirty: false,
            synced_len: None,
            fsync_stats: FsyncStats::default(),
            tail_repaired: None,
        };
        backend.tail_repaired = backend.repair_torn_tail()?;
        Ok(backend)
    }

    /// The active [`DurabilityMode`].
    pub fn durability(&self) -> DurabilityMode {
        self.durability
    }

    /// How this instance's fsyncs split between `sync_all` and
    /// `sync_data` (same accounting as the JSONL backend).
    pub fn fsync_stats(&self) -> FsyncStats {
        self.fsync_stats
    }

    /// The current generation's logical name (what the manifest records).
    pub fn current_generation(&self) -> &str {
        &self.generation
    }

    /// The configured segment size cap.
    pub fn segment_bytes(&self) -> u64 {
        self.segment_bytes
    }

    /// Every segment file of the current generation, sorted.
    pub fn generation_files(&self) -> Result<Vec<String>, RepoError> {
        segment_files(&self.dir, &self.generation)
    }

    fn segment_name(&self) -> String {
        format!("{}.{:06}", self.generation, self.segment_index)
    }

    /// Truncate a torn final frame off the last segment, if any,
    /// returning a note of what was dropped. Walks headers only (mask +
    /// bounds): a CRC or decode failure is real corruption and is
    /// deliberately left in place to surface at `restore`, not silently
    /// amputated here.
    fn repair_torn_tail(&self) -> Result<Option<TailRepaired>, RepoError> {
        let Some(last) = self.generation_files()?.into_iter().next_back() else {
            return Ok(None);
        };
        let path = self.dir.join(&last);
        let buf = std::fs::read(&path).map_err(io_err)?;
        let mut pos = 0usize;
        loop {
            let remaining = buf.len() - pos;
            if remaining == 0 {
                return Ok(None);
            }
            if remaining >= FRAME_HEADER {
                let word = |at: usize| {
                    u32::from_le_bytes([buf[at], buf[at + 1], buf[at + 2], buf[at + 3]])
                };
                let len = word(pos);
                if word(pos + 4) != len ^ LEN_MASK {
                    // Corrupt header: not a torn tail; leave for restore.
                    return Ok(None);
                }
                if remaining >= FRAME_HEADER + len as usize {
                    pos += FRAME_HEADER + len as usize;
                    continue;
                }
            }
            // Fewer bytes than the frame promises: torn — truncate.
            let file = OpenOptions::new().write(true).open(&path).map_err(io_err)?;
            file.set_len(pos as u64).map_err(io_err)?;
            file.sync_all().map_err(io_err)?;
            return Ok(Some(TailRepaired {
                file: last,
                bytes_dropped: (buf.len() - pos) as u64,
            }));
        }
    }

    /// Remove segments of superseded generations (strays from crashes in
    /// the checkpoint window). Returns how many files were removed.
    pub fn prune_stale_generations(&self) -> Result<usize, RepoError> {
        let mut removed = 0;
        for entry in std::fs::read_dir(&self.dir).map_err(io_err)? {
            let entry = entry.map_err(io_err)?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let stale_binary = name.starts_with("events-")
                && name.contains(".bin.")
                && !name.starts_with(&format!("{}.", self.generation));
            // A converted directory may also hold a superseded JSONL log.
            let stale_jsonl = name.starts_with("events-") && name.ends_with(".jsonl");
            if stale_binary || stale_jsonl {
                std::fs::remove_file(entry.path()).map_err(io_err)?;
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// How many events sit in the log beyond the last checkpoint, by a
    /// headers-only walk (no payload decode — the count is wanted on
    /// open/monitoring paths). A torn final frame is not counted; a
    /// corrupt frame stops the walk and surfaces at `restore` instead.
    pub fn pending_events(&self) -> Result<usize, RepoError> {
        let mut count = 0usize;
        for name in self.generation_files()? {
            let buf = std::fs::read(self.dir.join(&name)).map_err(io_err)?;
            let mut pos = 0usize;
            while buf.len() - pos >= FRAME_HEADER {
                let word = |at: usize| {
                    u32::from_le_bytes([buf[at], buf[at + 1], buf[at + 2], buf[at + 3]])
                };
                let len = word(pos);
                if word(pos + 4) != len ^ LEN_MASK || buf.len() - pos < FRAME_HEADER + len as usize
                {
                    break;
                }
                count += 1;
                pos += FRAME_HEADER + len as usize;
            }
        }
        Ok(count)
    }

    fn appender(&mut self) -> Result<&mut File, RepoError> {
        if self.appender.is_none() {
            let path = self.dir.join(self.segment_name());
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .map_err(|e| RepoError::persist_io("open binary log appender", e))?;
            self.segment_len = file
                .metadata()
                .map_err(|e| RepoError::persist_io("stat binary log segment", e))?
                .len();
            self.appender = Some(file);
        }
        Ok(self.appender.as_mut().expect("appender was just opened"))
    }

    fn write_chunk(&mut self, chunk: &[u8]) -> Result<(), RepoError> {
        let len = chunk.len() as u64;
        let file = self.appender()?;
        file.write_all(chunk)
            .map_err(|e| RepoError::persist_io("append binary log", e))?;
        self.segment_len += len;
        Ok(())
    }

    /// Seal the current segment (fsync so its full length is durable
    /// before anything lands in the next one) and open the successor.
    fn roll_segment(&mut self) -> Result<(), RepoError> {
        if let Some(file) = self.appender.take() {
            file.sync_all()
                .map_err(|e| RepoError::persist_io("fsync sealed binary segment", e))?;
            self.fsync_stats.sync_all += 1;
        }
        self.segment_index += 1;
        self.segment_len = 0;
        self.synced_len = None;
        Ok(())
    }

    /// `restore()` plus the replayed event count off a single pass (the
    /// compacting wrapper's open path needs both).
    pub(crate) fn restore_with_pending(&self) -> Result<(RepositorySnapshot, usize), RepoError> {
        let (base, generation) = match EventLogBackend::read_manifest_in(&self.dir)? {
            Some(manifest) => (manifest.state, manifest.log),
            None => (RepositorySnapshot::empty(""), self.generation.clone()),
        };
        let events = if is_binary_generation(&generation) {
            read_generation(&self.dir, &generation)?
        } else {
            // A foreign checkpoint switched the directory back to JSONL;
            // reads follow the manifest, as the JSONL backend's do.
            EventLogBackend::read_log_file(&self.dir.join(&generation))?
        };
        Ok((replay(base, &events), events.len()))
    }
}

impl StorageBackend for BinaryLogBackend {
    fn kind(&self) -> &'static str {
        "binary-log"
    }

    fn record(&mut self, events: &[RepoEvent]) -> Result<(), RepoError> {
        if events.is_empty() {
            return Ok(());
        }
        // Make sure segment_len is real before sizing against the cap.
        self.appender()?;
        // Pack frames greedily: everything destined for the current
        // segment accumulates in one chunk (one write_all), rolling to a
        // fresh segment whenever the next frame would overflow the cap.
        // A frame larger than the cap still gets a (solo) segment — the
        // cap bounds segment size, it does not limit event size.
        let mut pending: Vec<u8> = Vec::new();
        for event in events {
            let before = pending.len();
            encode_frame(event, &mut pending);
            let frame_len = (pending.len() - before) as u64;
            let base = self.segment_len + before as u64;
            if base > 0 && base + frame_len > self.segment_bytes {
                let frame = pending.split_off(before);
                if !pending.is_empty() {
                    self.write_chunk(&std::mem::take(&mut pending))?;
                }
                self.roll_segment()?;
                pending = frame;
            }
        }
        if !pending.is_empty() {
            self.write_chunk(&pending)?;
        }
        match self.durability {
            DurabilityMode::PerBatch => {
                let file = self.appender()?;
                file.sync_all()
                    .map_err(|e| RepoError::persist_io("fsync binary log", e))?;
                self.fsync_stats.sync_all += 1;
                self.synced_len = Some(self.segment_len);
            }
            DurabilityMode::GroupCommit => self.dirty = true,
        }
        Ok(())
    }

    /// Crash-safe compaction, same commit protocol as the JSONL backend:
    /// the new manifest names a fresh (empty) generation, its atomic
    /// rename is the single commit point, and the superseded generation's
    /// segments are removed opportunistically afterwards.
    fn checkpoint(&mut self, snapshot: &RepositorySnapshot) -> Result<(), RepoError> {
        let old_generation = self.generation.clone();
        let n: u64 = old_generation
            .strip_prefix("events-")
            .and_then(|s| s.strip_suffix(BIN_SUFFIX))
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let new_generation = format!("events-{}{}", n + 1, BIN_SUFFIX);
        let manifest = Manifest {
            log: new_generation.clone(),
            state: snapshot.clone(),
        };
        crate::storage::write_manifest_in(&self.dir, &manifest)?;
        // Past the commit point: reset the writer onto the fresh
        // generation and sweep the superseded segments.
        self.generation = new_generation;
        self.segment_index = 0;
        self.segment_len = 0;
        self.appender = None;
        self.dirty = false;
        self.synced_len = None;
        for name in segment_files(&self.dir, &old_generation).unwrap_or_default() {
            std::fs::remove_file(self.dir.join(name)).ok();
        }
        Ok(())
    }

    fn restore(&self) -> Result<RepositorySnapshot, RepoError> {
        self.restore_with_pending().map(|(state, _)| state)
    }

    /// One fsync covering every batch staged since the last call.
    /// Mid-window segment rolls already fsynced the sealed segments (see
    /// [`Self::roll_segment`]), so only the live segment needs syncing —
    /// `sync_data` when its length is unchanged since the last fsync,
    /// `sync_all` otherwise, mirroring the JSONL backend's split.
    fn flush_durable(&mut self) -> Result<(), RepoError> {
        if !self.dirty {
            return Ok(());
        }
        let last_synced = self.synced_len;
        let len = self.segment_len;
        let data_only = last_synced == Some(len);
        {
            let file = self.appender()?;
            if data_only {
                file.sync_data()
                    .map_err(|e| RepoError::persist_io("fdatasync binary log", e))?;
            } else {
                file.sync_all()
                    .map_err(|e| RepoError::persist_io("fsync binary log", e))?;
            }
        }
        if data_only {
            self.fsync_stats.sync_data += 1;
        } else {
            self.fsync_stats.sync_all += 1;
            self.synced_len = Some(len);
        }
        self.dirty = false;
        Ok(())
    }

    fn set_durability(&mut self, mode: DurabilityMode) {
        self.durability = mode;
    }

    fn tail_repaired(&self) -> Option<TailRepaired> {
        self.tail_repaired.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::principal::Principal;
    use crate::repo::Repository;
    use crate::template::ExampleType;
    use crate::test_support::unique_dir;

    fn entry(title: &str) -> ExampleEntry {
        ExampleEntry::builder(title)
            .of_type(ExampleType::Precise)
            .overview("O.")
            .models("M.")
            .consistency("C.")
            .restoration("F.", "B.")
            .discussion("D.")
            .author("alice")
            .reference("Cheney et al. 2014", Some("10.0/bx"))
            .variant("unkeyed", "drop the keys")
            .artefact("demo", ArtefactKind::Code, "examples/demo.rs")
            .build()
            .unwrap()
    }

    fn busy_repository() -> Repository {
        let r = Repository::found("bx", vec![Principal::curator("c")]);
        r.register(Principal::member("alice")).unwrap();
        r.register(Principal::member("bob")).unwrap();
        r.grant_role("c", "bob", crate::principal::Role::Reviewer)
            .unwrap();
        let id = r.contribute("alice", entry("COMPOSERS")).unwrap();
        r.comment("bob", &id, "2014-03-28", "Nice.").unwrap();
        r.request_review("alice", &id).unwrap();
        r.approve("bob", &id).unwrap();
        r.contribute("alice", entry("DATES")).unwrap();
        r
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn event_codec_roundtrips_every_variant() {
        let r = busy_repository();
        let events = r.drain_events();
        // The script above produces most variants; add the rest by hand.
        let id = crate::repo::EntryId::from_title("COMPOSERS");
        let mut all = events;
        all.push(RepoEvent::ChangesRequested(crate::event::EntryRef {
            id: id.clone(),
        }));
        all.push(RepoEvent::RoleGranted(crate::event::RoleGranted {
            account: "alice".into(),
            role: crate::principal::Role::Curator,
        }));
        for event in &all {
            let mut payload = Vec::new();
            encode_event(event, &mut payload);
            let back = decode_event(&payload).expect("decodes");
            assert_eq!(&back, event);
        }
    }

    #[test]
    fn codec_rejects_truncated_and_trailing_payloads() {
        let event = RepoEvent::ReviewRequested(crate::event::EntryRef {
            id: crate::repo::EntryId("x".into()),
        });
        let mut payload = Vec::new();
        encode_event(&event, &mut payload);
        assert!(decode_event(&payload[..payload.len() - 1]).is_err());
        let mut padded = payload.clone();
        padded.push(0);
        assert!(decode_event(&padded).is_err());
        assert!(decode_event(&[]).is_err());
        assert!(decode_event(&[99]).is_err());
    }

    #[test]
    fn binary_backend_appends_and_recovers() {
        let dir = unique_dir("binlog");
        let r = busy_repository();
        let mut backend = BinaryLogBackend::open(&dir).unwrap();
        assert_eq!(backend.kind(), "binary-log");

        let events = r.drain_events();
        let (a, b) = events.split_at(events.len() / 2);
        backend.record(a).unwrap();
        backend.record(b).unwrap();
        assert_eq!(backend.pending_events().unwrap(), events.len());
        assert_eq!(backend.restore().unwrap(), r.snapshot());

        // A reopened backend (fresh process) sees the same state.
        let reopened = BinaryLogBackend::open(&dir).unwrap();
        assert_eq!(reopened.restore().unwrap(), r.snapshot());

        // Checkpoint compacts; recovery switches to snapshot + replay.
        backend.checkpoint(&r.snapshot()).unwrap();
        assert_eq!(backend.pending_events().unwrap(), 0);
        assert_eq!(backend.current_generation(), "events-1.bin");
        assert_eq!(backend.restore().unwrap(), r.snapshot());

        r.comment(
            "alice",
            &crate::repo::EntryId::from_title("DATES"),
            "2014-05-01",
            "post-checkpoint",
        )
        .unwrap();
        backend.record(&r.drain_events()).unwrap();
        assert_eq!(backend.pending_events().unwrap(), 1);
        assert_eq!(backend.restore().unwrap(), r.snapshot());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tiny_segments_roll_and_restore_across_files() {
        let dir = unique_dir("binlog-seg");
        let r = busy_repository();
        // A 200-byte cap forces nearly every frame into its own segment.
        let mut backend = BinaryLogBackend::open_with_segment_bytes(&dir, 200).unwrap();
        let events = r.drain_events();
        backend.record(&events).unwrap();
        let segments = backend.generation_files().unwrap();
        assert!(
            segments.len() > 1,
            "a 200-byte cap must produce multiple segments, got {segments:?}"
        );
        assert_eq!(backend.restore().unwrap(), r.snapshot());
        // Reopening (with any cap) continues appending at the last one.
        let mut reopened = BinaryLogBackend::open_with_segment_bytes(&dir, 200).unwrap();
        r.comment(
            "alice",
            &crate::repo::EntryId::from_title("DATES"),
            "2014-06-01",
            "after reopen",
        )
        .unwrap();
        reopened.record(&r.drain_events()).unwrap();
        assert_eq!(reopened.restore().unwrap(), r.snapshot());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_dropped_by_reads_and_truncated_at_open() {
        let dir = unique_dir("binlog-torn");
        let r = busy_repository();
        let mut backend = BinaryLogBackend::open(&dir).unwrap();
        backend.record(&r.drain_events()).unwrap();
        let expected = backend.restore().unwrap();

        let last = backend.generation_files().unwrap().pop().unwrap();
        let path = dir.join(&last);
        let clean_len = std::fs::metadata(&path).unwrap().len();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&torn_frame_bytes());
        std::fs::write(&path, &bytes).unwrap();

        // Reads drop the fragment without repair.
        assert_eq!(backend.restore().unwrap(), expected);

        // A fresh open truncates it so new appends don't concatenate.
        let mut reopened = BinaryLogBackend::open(&dir).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
        r.comment(
            "alice",
            &crate::repo::EntryId::from_title("DATES"),
            "2014-07-01",
            "post-repair",
        )
        .unwrap();
        reopened.record(&r.drain_events()).unwrap();
        assert_eq!(reopened.restore().unwrap(), r.snapshot());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_mid_log_frame_is_a_typed_error() {
        let dir = unique_dir("binlog-corrupt");
        let r = busy_repository();
        let mut backend = BinaryLogBackend::open(&dir).unwrap();
        backend.record(&r.drain_events()).unwrap();
        let first = backend.generation_files().unwrap().remove(0);
        let path = dir.join(&first);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = backend.restore().unwrap_err();
        assert!(
            matches!(err, RepoError::CorruptFrame { ref segment, .. } if *segment == first),
            "expected CorruptFrame in {first}, got {err:?}"
        );
        // Opening does NOT repair corruption away (only torn tails).
        let reopened = BinaryLogBackend::open(&dir).unwrap();
        assert!(matches!(
            reopened.restore(),
            Err(RepoError::CorruptFrame { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_stages_until_flush_and_splits_fsync_kinds() {
        let dir = unique_dir("binlog-gc");
        let r = busy_repository();
        let mut backend = BinaryLogBackend::open(&dir).unwrap();
        backend.set_durability(DurabilityMode::GroupCommit);
        let events = r.drain_events();
        let (a, b) = events.split_at(events.len() / 2);
        backend.record(a).unwrap();
        backend.record(b).unwrap();
        assert_eq!(backend.fsync_stats().total(), 0, "record only stages");
        backend.flush_durable().unwrap();
        assert_eq!(
            backend.fsync_stats(),
            FsyncStats {
                sync_all: 1,
                sync_data: 0
            }
        );
        // Nothing staged: flush is a no-op.
        backend.flush_durable().unwrap();
        assert_eq!(backend.fsync_stats().total(), 1);
        // Same-length re-flush after a stage that wrote nothing new is
        // impossible here (record always appends), but a second flush
        // after more records grows the segment: sync_all again.
        r.comment(
            "alice",
            &crate::repo::EntryId::from_title("DATES"),
            "2014-08-01",
            "more",
        )
        .unwrap();
        backend.record(&r.drain_events()).unwrap();
        backend.flush_durable().unwrap();
        assert_eq!(backend.fsync_stats().sync_all, 2);
        assert_eq!(backend.restore().unwrap(), r.snapshot());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn clone_is_a_fresh_writer_owing_no_fsync() {
        let dir = unique_dir("binlog-clone");
        let r = busy_repository();
        let mut backend = BinaryLogBackend::open(&dir).unwrap();
        backend.set_durability(DurabilityMode::GroupCommit);
        backend.record(&r.drain_events()).unwrap();
        let mut fresh = backend.clone();
        fresh.flush_durable().unwrap();
        assert_eq!(fresh.fsync_stats().total(), 0, "clone owes no fsync");
        backend.flush_durable().unwrap();
        assert_eq!(backend.fsync_stats().total(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_refuses_a_jsonl_directory() {
        let dir = unique_dir("binlog-cross");
        let mut jsonl = EventLogBackend::open(&dir).unwrap();
        let r = busy_repository();
        jsonl.record(&r.drain_events()).unwrap();
        jsonl.checkpoint(&r.snapshot()).unwrap();
        let err = BinaryLogBackend::open(&dir).unwrap_err();
        assert!(matches!(err, RepoError::Persist(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tail_reads_resume_at_frame_boundaries_and_detect_rolls() {
        let dir = unique_dir("binlog-tail");
        let r = busy_repository();
        let mut backend = BinaryLogBackend::open_with_segment_bytes(&dir, 300).unwrap();
        let events = r.drain_events();
        let (a, b) = events.split_at(events.len() / 2);
        backend.record(a).unwrap();
        let generation = backend.current_generation().to_string();
        let (first, offset) = read_tail(&dir, &generation, 0).unwrap().unwrap();
        assert_eq!(first.len(), a.len());
        assert_eq!(offset, generation_len(&dir, &generation).unwrap());
        // Unchanged log: metadata-only poll, no events.
        let (none, same) = read_tail(&dir, &generation, offset).unwrap().unwrap();
        assert!(none.is_empty());
        assert_eq!(same, offset);
        // New events resume exactly after the consumed prefix.
        backend.record(b).unwrap();
        let (rest, end) = read_tail(&dir, &generation, offset).unwrap().unwrap();
        assert_eq!(rest.len(), b.len());
        assert_eq!(end, generation_len(&dir, &generation).unwrap());
        // A checkpoint rolls the generation; the old offset over-shoots
        // the (now empty) new generation: rebase signal.
        backend.checkpoint(&r.snapshot()).unwrap();
        let rolled = backend.current_generation().to_string();
        assert_eq!(read_tail(&dir, &rolled, end).unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }
}
