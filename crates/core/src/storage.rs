//! Pluggable persistence: the [`StorageBackend`] trait and its three
//! implementations.
//!
//! * [`MemoryBackend`] — snapshot + event log held in memory; the unit-test
//!   and caching substrate.
//! * [`JsonFileBackend`] — one pretty-printed JSON snapshot file, the
//!   format [`crate::persist`] has always written (archives stay
//!   readable). Recording deltas rewrites the whole file, so its cost
//!   scales with repository size — it is the compatibility backend.
//! * [`EventLogBackend`] — an append-only generation log of [`RepoEvent`]
//!   lines next to an optional checkpoint manifest; recording a delta
//!   batch is O(batch), and recovery is checkpoint + replay. This is the
//!   scaling backend.
//!
//! All three observe the same contract, checked in
//! `tests/storage_backends.rs` and property-tested in
//! `tests/delta_equivalence.rs`: after `record`ing a repository's drained
//! events (or `checkpoint`ing its snapshot), `restore` returns exactly
//! [`crate::repo::Repository::snapshot`].
//!
//! ## Durability modes
//!
//! Durability is two-phase: `record` appends, [`StorageBackend::flush_durable`]
//! is the fsync point. In the default [`DurabilityMode::PerBatch`] the two
//! are fused — `record` returns only after its own fsync, exactly the
//! contract every pre-existing caller relies on, and `flush_durable` is a
//! no-op. Switching a file-backed backend to
//! [`DurabilityMode::GroupCommit`] decouples them: `record` stages bytes
//! through a persistent appender (no open, no fsync), and one
//! `flush_durable` makes *every* staged batch durable at once — which is
//! what lets [`crate::pipeline::BackgroundWriter`] amortise one fsync
//! over an entire group-commit window of concurrent producers.

use std::cell::Cell;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::RepoError;
use crate::event::{apply_event, replay, RepoEvent};
use crate::persist;
use crate::repo::RepositorySnapshot;
use crate::runtime::{HealthReport, RuntimeHealth};

/// When a backend's `record` becomes durable; see the module docs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DurabilityMode {
    /// `record` fsyncs before returning — one call, one durable batch.
    /// The default, and the contract of every pre-group-commit caller.
    #[default]
    PerBatch,
    /// `record` only stages (buffered append, no fsync);
    /// [`StorageBackend::flush_durable`] is the explicit fsync point
    /// covering everything staged since the last one.
    GroupCommit,
}

/// Where a repository's state lives between processes (or merely between
/// drops). Deltas arrive in batches via `record`; `checkpoint` compacts;
/// `restore` recovers the latest state.
pub trait StorageBackend {
    /// A short human-readable backend name ("memory", "json-file", …).
    fn kind(&self) -> &'static str;

    /// Append a batch of deltas (typically
    /// [`crate::repo::Repository::drain_events`] output). In the default
    /// [`DurabilityMode::PerBatch`] the batch is durable when this
    /// returns; under [`DurabilityMode::GroupCommit`] it is merely staged
    /// until the next [`StorageBackend::flush_durable`].
    fn record(&mut self, events: &[RepoEvent]) -> Result<(), RepoError>;

    /// Write a full checkpoint of `snapshot`, superseding recorded deltas.
    fn checkpoint(&mut self, snapshot: &RepositorySnapshot) -> Result<(), RepoError>;

    /// Recover the latest persisted state.
    fn restore(&self) -> Result<RepositorySnapshot, RepoError>;

    /// The fsync point of the two-phase durability API: make every batch
    /// staged since the last call durable. A no-op for backends whose
    /// `record` is already durable (memory, or a file-backed backend in
    /// [`DurabilityMode::PerBatch`] — the default implementation).
    fn flush_durable(&mut self) -> Result<(), RepoError> {
        Ok(())
    }

    /// Select when `record` becomes durable. Backends without a staging
    /// buffer (memory; whole-file rewrites) ignore the request — their
    /// `record` is as durable as it will ever be, and `flush_durable`
    /// stays a no-op.
    fn set_durability(&mut self, _mode: DurabilityMode) {}

    /// The torn-tail repair this backend performed when it was opened,
    /// if any. File-backed log backends truncate a crash fragment at
    /// `open` (it was never durable — reads have always dropped it), but
    /// dropping bytes should be on the record, not silent. `None` for
    /// backends without an open-time repair.
    fn tail_repaired(&self) -> Option<TailRepaired> {
        None
    }
}

/// Record of a torn-tail truncation performed while opening a log
/// backend: a process killed mid-append left a partial final frame or
/// line, and the opener cut it off. The fragment was never durable, so
/// no acknowledged data is lost — but the repair is observable via
/// [`StorageBackend::tail_repaired`] (and `HealthReport::TailRepaired`
/// when the backend is opened on a runtime) instead of silent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailRepaired {
    /// The repaired log file (relative name).
    pub file: String,
    /// How many torn bytes were dropped.
    pub bytes_dropped: u64,
}

fn io_err(e: std::io::Error) -> RepoError {
    RepoError::Persist(e.to_string())
}

/// The typed error for a complete-but-unparseable JSONL line: a
/// [`RepoError::CorruptFrame`] whose offset is the line's first byte —
/// the boundary a `SalvagePrefix` recovery truncates at. `segment` is
/// the log file's relative name, mirroring the binary log's frames.
pub(crate) fn corrupt_jsonl_line(
    segment: &str,
    offset: u64,
    err: &dyn std::fmt::Display,
) -> RepoError {
    RepoError::CorruptFrame {
        segment: segment.to_string(),
        offset,
        reason: format!("corrupt event log line: {err}"),
    }
}

/// A path's file name for corruption reports (lossy; logs are ASCII).
pub(crate) fn segment_name(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string())
}

/// Boxed backends forward the contract, so heterogeneous backend
/// configurations (a federation driver mixing compacting and plain logs,
/// say) can be held behind one type.
impl StorageBackend for Box<dyn StorageBackend> {
    fn kind(&self) -> &'static str {
        (**self).kind()
    }

    fn record(&mut self, events: &[RepoEvent]) -> Result<(), RepoError> {
        (**self).record(events)
    }

    fn checkpoint(&mut self, snapshot: &RepositorySnapshot) -> Result<(), RepoError> {
        (**self).checkpoint(snapshot)
    }

    fn restore(&self) -> Result<RepositorySnapshot, RepoError> {
        (**self).restore()
    }

    fn flush_durable(&mut self) -> Result<(), RepoError> {
        (**self).flush_durable()
    }

    fn set_durability(&mut self, mode: DurabilityMode) {
        (**self).set_durability(mode)
    }

    fn tail_repaired(&self) -> Option<TailRepaired> {
        (**self).tail_repaired()
    }
}

/// In-memory backend: a base snapshot plus the deltas since.
#[derive(Debug, Clone, Default)]
pub struct MemoryBackend {
    base: RepositorySnapshot,
    log: Vec<RepoEvent>,
}

impl MemoryBackend {
    /// A fresh, empty backend.
    pub fn new() -> MemoryBackend {
        MemoryBackend::default()
    }

    /// How many deltas are pending since the last checkpoint.
    pub fn pending_events(&self) -> usize {
        self.log.len()
    }
}

impl StorageBackend for MemoryBackend {
    fn kind(&self) -> &'static str {
        "memory"
    }

    fn record(&mut self, events: &[RepoEvent]) -> Result<(), RepoError> {
        self.log.extend_from_slice(events);
        Ok(())
    }

    fn checkpoint(&mut self, snapshot: &RepositorySnapshot) -> Result<(), RepoError> {
        self.base = snapshot.clone();
        self.log.clear();
        Ok(())
    }

    fn restore(&self) -> Result<RepositorySnapshot, RepoError> {
        Ok(replay(self.base.clone(), &self.log))
    }
}

/// The legacy single-file JSON backend: exactly the format
/// [`persist::save_file`] writes, so existing archives load unchanged.
#[derive(Debug, Clone)]
pub struct JsonFileBackend {
    path: PathBuf,
}

impl JsonFileBackend {
    /// Persist to (and restore from) `path`.
    pub fn new(path: impl Into<PathBuf>) -> JsonFileBackend {
        JsonFileBackend { path: path.into() }
    }

    /// The snapshot file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl StorageBackend for JsonFileBackend {
    fn kind(&self) -> &'static str {
        "json-file"
    }

    /// A snapshot file has no incremental representation: fold the deltas
    /// into the current state and rewrite the whole file.
    fn record(&mut self, events: &[RepoEvent]) -> Result<(), RepoError> {
        let base = if self.path.exists() {
            self.restore()?
        } else {
            RepositorySnapshot::empty("")
        };
        self.checkpoint(&replay(base, events))
    }

    fn checkpoint(&mut self, snapshot: &RepositorySnapshot) -> Result<(), RepoError> {
        std::fs::write(&self.path, persist::to_json(snapshot)?).map_err(io_err)
    }

    fn restore(&self) -> Result<RepositorySnapshot, RepoError> {
        let json = std::fs::read_to_string(&self.path).map_err(io_err)?;
        persist::from_json(&json)
    }

    /// The snapshot file is rewritten whole on every `record`, so there
    /// is nothing staged to batch — but it is file-backed, so the fsync
    /// point still pushes the latest rewrite past the page cache.
    fn flush_durable(&mut self) -> Result<(), RepoError> {
        match std::fs::File::open(&self.path) {
            Ok(file) => file
                .sync_all()
                .map_err(|e| RepoError::persist_io("fsync json snapshot", e)),
            // Nothing recorded yet: nothing to make durable. Any other
            // open failure must surface — reporting Ok would acknowledge
            // events as durable with no fsync having happened.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(RepoError::persist_io("open json snapshot for fsync", e)),
        }
    }
}

/// How an [`EventLogBackend`]'s fsyncs split between the full
/// [`File::sync_all`] (data + all metadata, required whenever the segment
/// grew since the last sync so the new length reaches disk) and the
/// cheaper [`File::sync_data`] (data + only the metadata needed to read
/// it back, sufficient when the segment length is unchanged).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FsyncStats {
    /// Full syncs: the segment length changed since the last fsync.
    pub sync_all: u64,
    /// Data-only syncs: the segment length was unchanged.
    pub sync_data: u64,
}

impl FsyncStats {
    /// Total fsyncs of either kind.
    pub fn total(&self) -> u64 {
        self.sync_all + self.sync_data
    }
}

/// The checkpoint manifest an [`EventLogBackend`] persists: the base
/// state plus the name of the generation log file its deltas live in.
/// Keeping both in one file makes the manifest rename the single atomic
/// commit point of a checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct Manifest {
    /// Log file (relative to the backend directory) this base replays.
    pub(crate) log: String,
    /// The checkpointed base state.
    pub(crate) state: RepositorySnapshot,
}

/// The on-disk shape of `checkpoint.json`: the [`Manifest`] body plus a
/// trailing `crc32` of the body's canonical serialisation. The checksum
/// field is optional on read — manifests written before it existed are
/// accepted as-is (legacy tolerance); a *present but wrong* checksum is
/// real corruption and surfaces as [`RepoError::CorruptManifest`].
#[derive(Debug, Deserialize)]
struct ManifestDisk {
    log: String,
    state: RepositorySnapshot,
    crc32: Option<u32>,
}

thread_local! {
    /// Test/bench instrumentation: how many checkpoint manifests this
    /// thread has parsed (the manifest embeds a whole snapshot, so a
    /// parse is the expensive path a poll's `(mtime, len)` stamp check
    /// exists to avoid). Lets tests assert that polling an idle
    /// replica/federation really is pure metadata stats.
    static MANIFESTS_PARSED: Cell<u64> = const { Cell::new(0) };
}

/// Number of checkpoint manifests parsed by this thread so far.
/// Instrumentation for tests and benches.
pub fn manifests_parsed() -> u64 {
    MANIFESTS_PARSED.with(Cell::get)
}

/// The exact `checkpoint.json` bytes for `manifest`: the canonical body
/// JSON with a `crc32` field over the body bytes spliced in as the
/// trailing key. Readers recompute the body from the parsed manifest
/// (the serialiser is deterministic — fixed field order, sorted maps, no
/// floats), so any flipped byte that survives JSON parsing fails the
/// checksum comparison.
pub(crate) fn manifest_json(manifest: &Manifest) -> Result<String, RepoError> {
    let body = serde_json::to_string(manifest)
        .map_err(|e| RepoError::Persist(format!("cannot serialise manifest: {e}")))?;
    let crc = crate::binlog::crc32(body.as_bytes());
    debug_assert!(body.ends_with('}'));
    Ok(format!("{},\"crc32\":{crc}}}", &body[..body.len() - 1]))
}

/// Write `manifest` to `dir/checkpoint.json` with the atomic
/// write-fsync-rename protocol both log backends share: the rename is
/// the single commit point of a checkpoint, so a crash at any step
/// leaves either the old manifest or the new one, never a torn mix.
pub(crate) fn write_manifest_in(dir: &Path, manifest: &Manifest) -> Result<(), RepoError> {
    let json = manifest_json(manifest)?;
    let tmp = dir.join("checkpoint.json.tmp");
    {
        let mut file = std::fs::File::create(&tmp).map_err(io_err)?;
        file.write_all(json.as_bytes()).map_err(io_err)?;
        // The rename must not reach disk before the contents do, or a
        // power loss could publish an empty/partial manifest.
        file.sync_all().map_err(io_err)?;
    }
    std::fs::rename(&tmp, dir.join("checkpoint.json")).map_err(io_err)?;
    // Persist the rename itself (directory entry); best-effort since
    // not every platform lets a directory be fsynced.
    if let Ok(d) = std::fs::File::open(dir) {
        d.sync_all().ok();
    }
    Ok(())
}

/// Append-only event-log backend: a generation log file (`events-<n>.jsonl`,
/// one serialised [`RepoEvent`] per line) beside an optional
/// `checkpoint.json` manifest. Recording appends through a persistent
/// appender handle (opened once per generation, not per call);
/// checkpointing writes a new manifest pointing at a fresh empty log
/// generation (one atomic rename of the fsynced manifest is the commit
/// point, so a crash at any step leaves a state `restore` recovers
/// exactly); recovery is snapshot + replay, tolerating a torn final line
/// from an append cut short mid-write.
///
/// Durability is two-phase (see the module docs): in the default
/// [`DurabilityMode::PerBatch`], `record` fsyncs before returning; in
/// [`DurabilityMode::GroupCommit`] it only stages, and
/// [`StorageBackend::flush_durable`] issues the one `sync_all` covering
/// every staged batch.
///
/// The backend assumes a single writer per directory (the current log
/// generation is cached at `open` and only advanced by this instance's
/// own `checkpoint`); concurrent readers are fine.
#[derive(Debug)]
pub struct EventLogBackend {
    dir: PathBuf,
    /// Current generation's log file name, relative to `dir`.
    log: String,
    durability: DurabilityMode,
    /// The persistent appender for the current generation, opened lazily
    /// on first `record` and dropped when `checkpoint` rolls the
    /// generation.
    appender: Option<File>,
    /// Bytes staged (written but not fsynced) since the last
    /// `flush_durable` — only ever true in [`DurabilityMode::GroupCommit`].
    dirty: bool,
    /// Segment length at the last fsync of the current generation, if one
    /// has happened — the length whose durability the next fsync may rely
    /// on to downgrade `sync_all` to `sync_data`.
    synced_len: Option<u64>,
    /// How this instance's fsyncs split between full and data-only syncs.
    fsync_stats: FsyncStats,
    /// The torn-tail truncation `open` performed, if any.
    tail_repaired: Option<TailRepaired>,
}

/// A clone is a fresh writer over the same directory and generation: it
/// opens its own appender on first use and owes no fsync for bytes the
/// original staged (those remain the original's to flush). It performed
/// no open-time repair, so it carries no `tail_repaired` note.
impl Clone for EventLogBackend {
    fn clone(&self) -> EventLogBackend {
        EventLogBackend {
            dir: self.dir.clone(),
            log: self.log.clone(),
            durability: self.durability,
            appender: None,
            dirty: false,
            synced_len: None,
            fsync_stats: FsyncStats::default(),
            tail_repaired: None,
        }
    }
}

impl EventLogBackend {
    /// Open (creating the directory if needed) an event log under `dir`.
    ///
    /// Opening also *repairs* a torn final append in the current
    /// generation: a process killed mid-`write` leaves a partial last
    /// line, and a fresh writer appending after it would concatenate the
    /// next event into the fragment and corrupt the log. The fragment was
    /// never durable (reads have always dropped it), so truncating it at
    /// open loses nothing.
    pub fn open(dir: impl Into<PathBuf>) -> Result<EventLogBackend, RepoError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(io_err)?;
        let log = match Self::read_manifest_in(&dir)? {
            Some(manifest) => manifest.log,
            None => crate::binlog::unmanifested_generation(&dir),
        };
        if crate::binlog::is_binary_generation(&log) {
            return Err(RepoError::Persist(format!(
                "directory holds a binary event log (generation `{log}`); \
                 open it with BinaryLogBackend or convert it with bx_logconv"
            )));
        }
        let mut backend = EventLogBackend {
            dir,
            log,
            durability: DurabilityMode::default(),
            appender: None,
            dirty: false,
            synced_len: None,
            fsync_stats: FsyncStats::default(),
            tail_repaired: None,
        };
        backend.tail_repaired = backend.repair_torn_tail()?;
        Ok(backend)
    }

    /// The active [`DurabilityMode`].
    pub fn durability(&self) -> DurabilityMode {
        self.durability
    }

    /// How this instance's fsyncs have split between [`File::sync_all`]
    /// and [`File::sync_data`] (see [`FsyncStats`]).
    pub fn fsync_stats(&self) -> FsyncStats {
        self.fsync_stats
    }

    /// The persistent appender for the current generation, opened on
    /// first use. `checkpoint` drops it when the generation rolls, so a
    /// stale handle can never append to a superseded log.
    fn appender(&mut self) -> Result<&mut File, RepoError> {
        if self.appender.is_none() {
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.log_path())
                .map_err(|e| RepoError::persist_io("open event log appender", e))?;
            self.appender = Some(file);
        }
        Ok(self.appender.as_mut().expect("appender was just opened"))
    }

    /// Truncate an unterminated final line (torn append) off the current
    /// generation's log, if there is one, returning a note of what was
    /// dropped.
    fn repair_torn_tail(&self) -> Result<Option<TailRepaired>, RepoError> {
        let path = self.log_path();
        if !path.exists() {
            return Ok(None);
        }
        let bytes = std::fs::read(&path).map_err(io_err)?;
        if bytes.is_empty() || bytes.ends_with(b"\n") {
            return Ok(None);
        }
        let keep = bytes
            .iter()
            .rposition(|&b| b == b'\n')
            .map(|i| i + 1)
            .unwrap_or(0);
        let file = OpenOptions::new().write(true).open(&path).map_err(io_err)?;
        file.set_len(keep as u64).map_err(io_err)?;
        file.sync_all().map_err(io_err)?;
        Ok(Some(TailRepaired {
            file: self.log.clone(),
            bytes_dropped: (bytes.len() - keep) as u64,
        }))
    }

    /// The current generation's log file name (relative to the backend
    /// directory).
    pub fn current_generation(&self) -> &str {
        &self.log
    }

    /// Every generation log file present in the directory, sorted. A
    /// healthy, compacted directory holds at most one (the current
    /// generation, which may also be absent right after a checkpoint).
    pub fn generation_files(&self) -> Result<Vec<String>, RepoError> {
        let mut files = Vec::new();
        for entry in std::fs::read_dir(&self.dir).map_err(io_err)? {
            let entry = entry.map_err(io_err)?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with("events-") && name.ends_with(".jsonl") {
                files.push(name);
            }
        }
        files.sort();
        Ok(files)
    }

    /// Remove superseded generation logs: every `events-*.jsonl` other
    /// than the current generation. `checkpoint` already unlinks the one
    /// generation it supersedes; this sweeps up strays left by crashes in
    /// the checkpoint window. Returns how many files were removed.
    pub fn prune_stale_generations(&self) -> Result<usize, RepoError> {
        let mut removed = 0;
        for name in self.generation_files()? {
            if name != self.log {
                std::fs::remove_file(self.dir.join(&name)).map_err(io_err)?;
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// The checkpointed base state and current generation log name of an
    /// event-log directory, read without opening a writer (and therefore
    /// without the open-time torn-tail repair): `(base, log)` from the
    /// manifest, or the empty state and the initial generation when no
    /// checkpoint exists yet (binary if generation-0 binary segments are
    /// present, the JSONL default otherwise). This is the read-side entry
    /// point replicas tail from; the generation name's extension tells
    /// the caller which format to read
    /// ([`crate::binlog::is_binary_generation`]).
    pub fn read_state_in(dir: &Path) -> Result<(RepositorySnapshot, String), RepoError> {
        Ok(match Self::read_manifest_in(dir)? {
            Some(manifest) => (manifest.state, manifest.log),
            None => (
                RepositorySnapshot::empty(""),
                crate::binlog::unmanifested_generation(dir),
            ),
        })
    }

    /// The events of one log generation in `dir`, whichever format the
    /// generation name declares — JSONL lines or binary frames. A torn
    /// tail is dropped in both formats; real corruption surfaces as the
    /// typed [`RepoError::CorruptFrame`] in both, with the offset of the
    /// first byte the reader could not trust.
    pub fn read_generation_events(
        dir: &Path,
        generation: &str,
    ) -> Result<Vec<RepoEvent>, RepoError> {
        if crate::binlog::is_binary_generation(generation) {
            crate::binlog::read_generation(dir, generation)
        } else {
            Self::read_log_file(&dir.join(generation))
        }
    }

    /// Recover the durable state of an event-log directory purely by
    /// reading: manifest base + replay of the intact records of the
    /// generation it names — transparently for either on-disk format.
    /// Unlike `EventLogBackend::open(dir)?.restore()`
    /// this never mutates the directory (no torn-tail repair), so tests
    /// and tooling can compute the expected fold of a directory that is
    /// concurrently being tailed or deliberately left torn.
    ///
    /// This sequential path is the oracle for
    /// [`EventLogBackend::restore_dir_with`], which runs the same recovery
    /// through the parallel pipeline.
    pub fn restore_dir(dir: &Path) -> Result<RepositorySnapshot, RepoError> {
        let (base, log) = Self::read_state_in(dir)?;
        Ok(replay(base, &Self::read_generation_events(dir, &log)?))
    }

    /// [`EventLogBackend::restore_dir`] through the parallel restore
    /// pipeline: chunked decode (newline-aligned JSONL chunks, or one
    /// worker per binary segment), ordered splice, then the sharded
    /// [`crate::event::replay_parallel`] fold — bit-identical to the
    /// sequential path on every input, including which error a corrupt
    /// log surfaces (first offending offset in log order, regardless of
    /// worker completion order). `options.threads == 1` runs the
    /// sequential code path exactly.
    pub fn restore_dir_with(
        dir: &Path,
        options: crate::runtime::RestoreOptions,
    ) -> Result<RepositorySnapshot, RepoError> {
        if !options.is_parallel() {
            return Self::restore_dir(dir);
        }
        let pool = crate::runtime::WorkerPool::new(options.threads);
        let (base, log) = Self::read_state_in(dir)?;
        let events = Self::read_generation_events_pooled(dir, &log, &pool)?;
        Ok(crate::event::replay_parallel(base, events, &pool))
    }

    /// [`EventLogBackend::read_state_in`] with explicit
    /// [`crate::runtime::RestoreOptions`], for call-site symmetry with
    /// [`EventLogBackend::restore_dir_with`]. The manifest is one JSON
    /// document parsed in a single pass, so there is nothing to fan out;
    /// the options select behaviour only in the functions that go on to
    /// read the generation's events.
    pub fn read_state_in_with(
        dir: &Path,
        _options: crate::runtime::RestoreOptions,
    ) -> Result<(RepositorySnapshot, String), RepoError> {
        Self::read_state_in(dir)
    }

    /// [`EventLogBackend::read_generation_events`] with a thread budget:
    /// parallel when `options.threads > 1`, the sequential oracle
    /// otherwise.
    pub fn read_generation_events_with(
        dir: &Path,
        generation: &str,
        options: crate::runtime::RestoreOptions,
    ) -> Result<Vec<RepoEvent>, RepoError> {
        if !options.is_parallel() {
            return Self::read_generation_events(dir, generation);
        }
        let pool = crate::runtime::WorkerPool::new(options.threads);
        Self::read_generation_events_pooled(dir, generation, &pool)
    }

    /// Format-dispatched parallel generation read on an existing pool.
    pub(crate) fn read_generation_events_pooled(
        dir: &Path,
        generation: &str,
        pool: &crate::runtime::WorkerPool,
    ) -> Result<Vec<RepoEvent>, RepoError> {
        if crate::binlog::is_binary_generation(generation) {
            crate::binlog::read_generation_parallel(dir, generation, pool).map(|(events, _)| events)
        } else {
            Self::read_log_file_parallel(&dir.join(generation), pool)
        }
    }

    /// The intact complete lines of `text[..intact_end]` parsed as one
    /// event per line across the pool: the region splits into
    /// newline-aligned chunks, each worker parses its chunk's lines, and
    /// the chunks splice back in file order. A parse failure surfaces as
    /// the error of the **first** corrupt line in file order (ordered
    /// gather; within a chunk the scan stops at its first failure), so
    /// corruption reporting is deterministic regardless of worker timing
    /// — and byte-identical to what the sequential line loop raises.
    pub(crate) fn parse_jsonl_parallel(
        text: &Arc<String>,
        intact_end: usize,
        segment: &str,
        pool: &crate::runtime::WorkerPool,
    ) -> Result<Vec<RepoEvent>, RepoError> {
        // Aim for a few chunks per worker so one dense chunk cannot
        // serialise the whole decode, with a floor that keeps tiny logs
        // from paying scatter overhead per line.
        const MIN_CHUNK_BYTES: usize = 64 * 1024;
        let target_chunks = pool.threads() * 4;
        let chunk_bytes = (intact_end / target_chunks.max(1)).max(MIN_CHUNK_BYTES);
        let bytes = text.as_bytes();
        let mut ranges: Vec<(usize, usize)> = Vec::new();
        let mut start = 0usize;
        while start < intact_end {
            let mut end = (start + chunk_bytes).min(intact_end);
            // Advance to the next newline so every chunk holds whole
            // lines (the region ends on one by construction).
            while end < intact_end && bytes[end - 1] != b'\n' {
                end += 1;
            }
            ranges.push((start, end));
            start = end;
        }
        type ChunkParse = Result<Vec<RepoEvent>, RepoError>;
        let segment: Arc<str> = Arc::from(segment);
        let jobs: Vec<Box<dyn FnOnce() -> ChunkParse + Send>> = ranges
            .into_iter()
            .map(|(start, end)| {
                let text = Arc::clone(text);
                let segment = Arc::clone(&segment);
                Box::new(move || -> ChunkParse {
                    let mut events = Vec::new();
                    let mut pos = start;
                    for line in text[start..end].split_inclusive('\n') {
                        let at = pos;
                        pos += line.len();
                        let body = line.trim_end_matches(['\n', '\r']);
                        if body.trim().is_empty() {
                            continue;
                        }
                        events.push(
                            serde_json::from_str::<RepoEvent>(body)
                                .map_err(|e| corrupt_jsonl_line(&segment, at as u64, &e))?,
                        );
                    }
                    Ok(events)
                }) as Box<dyn FnOnce() -> ChunkParse + Send>
            })
            .collect();
        let mut events = Vec::new();
        for chunk in pool.scatter(jobs) {
            events.append(&mut chunk?);
        }
        Ok(events)
    }

    /// [`EventLogBackend::read_log_file`] across a pool: the complete
    /// lines decode chunked and spliced via
    /// [`EventLogBackend::parse_jsonl_parallel`]; the torn final line (no
    /// terminating newline) is then handled exactly as the sequential
    /// reader does — included if it parses, silently dropped if not.
    pub(crate) fn read_log_file_parallel(
        path: &Path,
        pool: &crate::runtime::WorkerPool,
    ) -> Result<Vec<RepoEvent>, RepoError> {
        if !path.exists() {
            return Ok(Vec::new());
        }
        let text = Arc::new(std::fs::read_to_string(path).map_err(io_err)?);
        let intact_end = text.rfind('\n').map(|i| i + 1).unwrap_or(0);
        let mut events = Self::parse_jsonl_parallel(&text, intact_end, &segment_name(path), pool)?;
        let fragment = &text[intact_end..];
        if !fragment.trim().is_empty() {
            if let Ok(event) = serde_json::from_str::<RepoEvent>(fragment) {
                events.push(event);
            }
        }
        Ok(events)
    }

    /// Parse (and integrity-check) `dir/checkpoint.json`. `Ok(None)` when
    /// no checkpoint exists yet; [`RepoError::CorruptManifest`] when the
    /// manifest carries a `crc32` that does not match its body (a
    /// checksum-less manifest from an older writer is accepted as-is).
    pub(crate) fn read_manifest_in(dir: &Path) -> Result<Option<Manifest>, RepoError> {
        let path = dir.join("checkpoint.json");
        if !path.exists() {
            return Ok(None);
        }
        let json = std::fs::read_to_string(path).map_err(io_err)?;
        let disk: ManifestDisk = serde_json::from_str(&json)
            .map_err(|e| RepoError::Persist(format!("corrupt checkpoint manifest: {e}")))?;
        MANIFESTS_PARSED.with(|c| c.set(c.get() + 1));
        let manifest = Manifest {
            log: disk.log,
            state: disk.state,
        };
        if let Some(stored) = disk.crc32 {
            let body = serde_json::to_string(&manifest)
                .map_err(|e| RepoError::Persist(format!("cannot serialise manifest: {e}")))?;
            let computed = crate::binlog::crc32(body.as_bytes());
            if computed != stored {
                return Err(RepoError::CorruptManifest {
                    dir: dir.display().to_string(),
                    stored,
                    computed,
                });
            }
        }
        Ok(Some(manifest))
    }

    fn log_path(&self) -> PathBuf {
        self.dir.join(&self.log)
    }

    /// The intact event lines of a generation log. A final line missing
    /// its terminating newline is a torn append (the process died
    /// mid-write) and is dropped; a complete line that fails to parse is
    /// real corruption and surfaces as [`RepoError::CorruptFrame`] with
    /// the byte offset of the offending line's start.
    pub(crate) fn read_log_file(path: &Path) -> Result<Vec<RepoEvent>, RepoError> {
        if !path.exists() {
            return Ok(Vec::new());
        }
        let text = std::fs::read_to_string(path).map_err(io_err)?;
        let segment = segment_name(path);
        let mut events = Vec::new();
        let mut pos = 0usize;
        for line in text.split_inclusive('\n') {
            let at = pos;
            pos += line.len();
            let terminated = line.ends_with('\n');
            let body = line.trim_end_matches(['\n', '\r']);
            if body.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<RepoEvent>(body) {
                Ok(event) => events.push(event),
                // An unterminated final line is a torn append, never
                // durable: drop it.
                Err(_) if !terminated => break,
                Err(e) => return Err(corrupt_jsonl_line(&segment, at as u64, &e)),
            }
        }
        Ok(events)
    }

    /// How many deltas sit in the log beyond the last checkpoint.
    ///
    /// Counts intact (newline-terminated, non-empty) lines without
    /// parsing any of them — the count is needed on hot open/monitoring
    /// paths where deserialising every event just to discard it would
    /// dominate. A torn final line (no terminating newline) is not
    /// counted, exactly as [`Self::read_log_file`] would drop it; a
    /// complete-but-corrupt line still counts here and surfaces as an
    /// error at `restore` time instead.
    pub fn pending_events(&self) -> Result<usize, RepoError> {
        let path = self.log_path();
        if !path.exists() {
            return Ok(0);
        }
        let bytes = std::fs::read(&path).map_err(io_err)?;
        let mut count = 0usize;
        let mut start = 0usize;
        for (i, &b) in bytes.iter().enumerate() {
            if b == b'\n' {
                if bytes[start..i].iter().any(|c| !c.is_ascii_whitespace()) {
                    count += 1;
                }
                start = i + 1;
            }
        }
        Ok(count)
    }

    /// `restore()` plus the replayed event count, off a single read of
    /// the log file (the open path of [`AutoCompactingEventLog`] needs
    /// both and should not parse the pending tail twice).
    fn restore_with_pending(&self) -> Result<(RepositorySnapshot, usize), RepoError> {
        let (base, log) = match Self::read_manifest_in(&self.dir)? {
            Some(manifest) => (manifest.state, manifest.log),
            None => (RepositorySnapshot::empty(""), self.log.clone()),
        };
        let events = Self::read_log_file(&self.dir.join(log))?;
        Ok((replay(base, &events), events.len()))
    }
}

impl StorageBackend for EventLogBackend {
    fn kind(&self) -> &'static str {
        "event-log"
    }

    fn record(&mut self, events: &[RepoEvent]) -> Result<(), RepoError> {
        if events.is_empty() {
            return Ok(());
        }
        let mut lines = String::new();
        for event in events {
            // Compact JSON keeps each event on one line (newlines inside
            // strings are escaped by the serialiser).
            lines.push_str(
                &serde_json::to_string(event)
                    .map_err(|e| RepoError::Persist(format!("cannot serialise event: {e}")))?,
            );
            lines.push('\n');
        }
        // One buffered write of the whole batch through the persistent
        // appender — the open cost was paid once at the generation start.
        let mode = self.durability;
        let mut synced = None;
        {
            let file = self.appender()?;
            file.write_all(lines.as_bytes())
                .map_err(|e| RepoError::persist_io("append event log", e))?;
            if mode == DurabilityMode::PerBatch {
                // "Durably append" means surviving power loss, not just a
                // process crash: flush the page cache before reporting
                // success. The append grew the segment, so the full
                // `sync_all` is required (the new length is metadata).
                file.sync_all()
                    .map_err(|e| RepoError::persist_io("fsync event log", e))?;
                synced = Some(
                    file.metadata()
                        .map_err(|e| RepoError::persist_io("stat event log", e))?
                        .len(),
                );
            }
        }
        if let Some(len) = synced {
            self.fsync_stats.sync_all += 1;
            self.synced_len = Some(len);
        }
        if mode == DurabilityMode::GroupCommit {
            self.dirty = true;
        }
        Ok(())
    }

    /// Crash-safe compaction. The new manifest names a *fresh* log
    /// generation, so the manifest rename is the single commit point:
    /// dying before it leaves the old manifest + old log (the
    /// pre-checkpoint state, fully replayable); dying after it leaves the
    /// new manifest whose log is empty or absent (exactly the
    /// checkpointed state). The superseded generation's log is removed
    /// opportunistically afterwards.
    fn checkpoint(&mut self, snapshot: &RepositorySnapshot) -> Result<(), RepoError> {
        let old_log = self.log.clone();
        let generation: u64 = old_log
            .strip_prefix("events-")
            .and_then(|s| s.strip_suffix(".jsonl"))
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let new_log = format!("events-{}.jsonl", generation + 1);
        let manifest = Manifest {
            log: new_log.clone(),
            state: snapshot.clone(),
        };
        write_manifest_in(&self.dir, &manifest)?;
        self.log = new_log;
        // The generation rolled: drop the superseded appender (the next
        // `record` opens one on the fresh log) and forget any staged
        // bytes — the manifest's snapshot supersedes them, so they need
        // no fsync of their own.
        self.appender = None;
        self.dirty = false;
        // The fresh generation has never been fsynced.
        self.synced_len = None;
        // Past the commit point: the old generation is garbage now.
        std::fs::remove_file(self.dir.join(old_log)).ok();
        Ok(())
    }

    /// Recover from the on-disk manifest, replaying the log generation
    /// *the manifest names* — so reads are consistent even if a foreign
    /// writer advanced the generation behind this instance's back.
    fn restore(&self) -> Result<RepositorySnapshot, RepoError> {
        let (base, log) = match Self::read_manifest_in(&self.dir)? {
            Some(manifest) => (manifest.state, manifest.log),
            None => (RepositorySnapshot::empty(""), self.log.clone()),
        };
        Ok(replay(base, &Self::read_log_file(&self.dir.join(log))?))
    }

    /// One fsync covering every batch staged since the last call. A no-op
    /// when nothing is staged — including the whole
    /// [`DurabilityMode::PerBatch`] regime, where `record` already synced.
    ///
    /// The fsync is the full `sync_all` when the segment grew since the
    /// last fsync (the new length must reach disk), and the cheaper
    /// `sync_data` when the length is unchanged — then the durable size
    /// metadata is already correct and only data pages need flushing.
    /// [`EventLogBackend::fsync_stats`] counts the split.
    fn flush_durable(&mut self) -> Result<(), RepoError> {
        if !self.dirty {
            return Ok(());
        }
        let last_synced = self.synced_len;
        let (len, data_only) = {
            let file = self.appender()?;
            let len = file
                .metadata()
                .map_err(|e| RepoError::persist_io("stat event log", e))?
                .len();
            if last_synced == Some(len) {
                file.sync_data()
                    .map_err(|e| RepoError::persist_io("fdatasync event log", e))?;
            } else {
                file.sync_all()
                    .map_err(|e| RepoError::persist_io("fsync event log", e))?;
            }
            (len, last_synced == Some(len))
        };
        if data_only {
            self.fsync_stats.sync_data += 1;
        } else {
            self.fsync_stats.sync_all += 1;
            self.synced_len = Some(len);
        }
        self.dirty = false;
        Ok(())
    }

    /// Switching to [`DurabilityMode::PerBatch`] does not retroactively
    /// sync staged bytes — call [`StorageBackend::flush_durable`] first
    /// (the next per-batch `record`'s `sync_all` would cover them too).
    fn set_durability(&mut self, mode: DurabilityMode) {
        self.durability = mode;
    }

    fn tail_repaired(&self) -> Option<TailRepaired> {
        self.tail_repaired.clone()
    }
}

/// A generation-rolling log backend [`AutoCompactingEventLog`] can
/// wrap: both on-disk log formats (JSONL lines, binary frames) checkpoint
/// by rolling to a fresh generation behind one manifest rename, so the
/// compaction policy layer is format-agnostic.
pub trait GenerationLog: StorageBackend + std::fmt::Debug + Sized {
    /// Open (or create) a log of this format under `dir`.
    fn open_dir(dir: &Path) -> Result<Self, RepoError>;

    /// `restore()` plus the replayed event count, off a single read of
    /// the log (the compacting wrapper's open path needs both and should
    /// not parse the pending tail twice).
    fn restore_with_pending(&self) -> Result<(RepositorySnapshot, usize), RepoError>;

    /// Remove superseded generations (strays from crashes in the
    /// checkpoint window). Returns how many files were removed.
    fn prune_stale_generations(&self) -> Result<usize, RepoError>;

    /// The [`StorageBackend::kind`] of the compacting wrapper around
    /// this format.
    fn compacted_kind() -> &'static str;
}

impl GenerationLog for EventLogBackend {
    fn open_dir(dir: &Path) -> Result<EventLogBackend, RepoError> {
        EventLogBackend::open(dir)
    }

    fn restore_with_pending(&self) -> Result<(RepositorySnapshot, usize), RepoError> {
        EventLogBackend::restore_with_pending(self)
    }

    fn prune_stale_generations(&self) -> Result<usize, RepoError> {
        EventLogBackend::prune_stale_generations(self)
    }

    fn compacted_kind() -> &'static str {
        "event-log+auto-compact"
    }
}

impl GenerationLog for crate::binlog::BinaryLogBackend {
    fn open_dir(dir: &Path) -> Result<crate::binlog::BinaryLogBackend, RepoError> {
        crate::binlog::BinaryLogBackend::open(dir)
    }

    fn restore_with_pending(&self) -> Result<(RepositorySnapshot, usize), RepoError> {
        crate::binlog::BinaryLogBackend::restore_with_pending(self)
    }

    fn prune_stale_generations(&self) -> Result<usize, RepoError> {
        crate::binlog::BinaryLogBackend::prune_stale_generations(self)
    }

    fn compacted_kind() -> &'static str {
        "binary-log+auto-compact"
    }
}

/// When an [`AutoCompactingEventLog`] checkpoints: after at least
/// `checkpoint_every` events have been recorded since the last
/// checkpoint. Restores therefore replay at most `checkpoint_every - 1 +
/// write_batch` events, and the directory holds O(1) generations no
/// matter how long the repository lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionPolicy {
    /// Checkpoint threshold, in events since the last checkpoint (≥ 1;
    /// 0 is clamped to 1).
    pub checkpoint_every: usize,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            checkpoint_every: 256,
        }
    }
}

/// A generation log under an automatic compaction policy: the backend
/// maintains the live folded state alongside the log (seeded by
/// `restore` at open, advanced by [`crate::event::apply_event`] on every
/// recorded batch) and checkpoints it every
/// [`CompactionPolicy::checkpoint_every`] events — so checkpointing never
/// needs the live [`crate::repo::Repository`], which is what lets the
/// background durability pipeline compact off-thread. Superseded
/// generations (including strays from crashes mid-checkpoint) are pruned
/// after every checkpoint.
///
/// Generic over the log format (any [`GenerationLog`]): the default is
/// the JSONL [`EventLogBackend`], and [`AutoCompactingBinaryLog`] names
/// the [`crate::binlog::BinaryLogBackend`] instantiation.
#[derive(Debug)]
pub struct AutoCompactingEventLog<B: GenerationLog = EventLogBackend> {
    inner: B,
    policy: CompactionPolicy,
    /// The fold of everything durably recorded so far — exactly what
    /// `restore` would return.
    state: RepositorySnapshot,
    since_checkpoint: usize,
    /// Cumulative compaction accounting since open.
    checkpoints: u64,
    pruned_files: u64,
    /// When set, every compaction pass (automatic or explicit) publishes
    /// [`HealthReport::Compaction`] under this component name.
    observer: Option<(Arc<RuntimeHealth>, String)>,
}

/// An auto-compacting binary segmented log
/// ([`crate::binlog::BinaryLogBackend`] under a [`CompactionPolicy`]);
/// open with [`AutoCompactingEventLog::open_with`].
pub type AutoCompactingBinaryLog = AutoCompactingEventLog<crate::binlog::BinaryLogBackend>;

impl AutoCompactingEventLog {
    /// Open (or create) a JSONL event log under `dir` with `policy`. A
    /// reopened log already past its checkpoint budget compacts
    /// immediately. (Inherent on the default format so pre-existing call
    /// sites need no turbofish; use [`Self::open_with`] for other
    /// formats.)
    pub fn open(
        dir: impl Into<PathBuf>,
        policy: CompactionPolicy,
    ) -> Result<AutoCompactingEventLog, RepoError> {
        Self::open_with(dir, policy)
    }
}

impl<B: GenerationLog> AutoCompactingEventLog<B> {
    /// Open (or create) a log of format `B` under `dir` with `policy`.
    pub fn open_with(
        dir: impl Into<PathBuf>,
        policy: CompactionPolicy,
    ) -> Result<AutoCompactingEventLog<B>, RepoError> {
        let inner = B::open_dir(&dir.into())?;
        let (state, since_checkpoint) = inner.restore_with_pending()?;
        let mut backend = AutoCompactingEventLog {
            inner,
            policy,
            state,
            since_checkpoint,
            checkpoints: 0,
            pruned_files: 0,
            observer: None,
        };
        backend.maybe_checkpoint()?;
        Ok(backend)
    }

    /// Publish every compaction pass (automatic threshold crossings and
    /// explicit [`StorageBackend::checkpoint`] calls) as
    /// [`HealthReport::Compaction`] on a [`Runtime`](crate::runtime::Runtime)'s
    /// unified health channel, under `component`.
    pub fn set_observer(&mut self, health: &Arc<RuntimeHealth>, component: &str) {
        self.observer = Some((Arc::clone(health), component.to_string()));
    }

    /// Compaction passes completed since open (automatic + explicit).
    pub fn compactions(&self) -> u64 {
        self.checkpoints
    }

    /// The wrapped log backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// The active policy.
    pub fn policy(&self) -> CompactionPolicy {
        self.policy
    }

    /// Events recorded since the last checkpoint (what a restore would
    /// have to replay).
    pub fn events_since_checkpoint(&self) -> usize {
        self.since_checkpoint
    }

    fn maybe_checkpoint(&mut self) -> Result<(), RepoError> {
        if self.since_checkpoint >= self.policy.checkpoint_every.max(1) {
            self.compact_now()?;
        }
        Ok(())
    }

    /// One compaction pass: checkpoint the folded state, prune stale
    /// generations, publish to the observer if one is installed.
    fn compact_now(&mut self) -> Result<(), RepoError> {
        self.inner.checkpoint(&self.state)?;
        let pruned = self.inner.prune_stale_generations()?;
        self.since_checkpoint = 0;
        self.checkpoints += 1;
        self.pruned_files += pruned as u64;
        if let Some((health, component)) = &self.observer {
            health.report(
                component,
                HealthReport::Compaction {
                    kind: B::compacted_kind().to_string(),
                    checkpoints: self.checkpoints,
                    pruned_files: self.pruned_files,
                },
            );
        }
        Ok(())
    }
}

impl<B: GenerationLog> StorageBackend for AutoCompactingEventLog<B> {
    fn kind(&self) -> &'static str {
        B::compacted_kind()
    }

    fn record(&mut self, events: &[RepoEvent]) -> Result<(), RepoError> {
        self.inner.record(events)?;
        for event in events {
            apply_event(&mut self.state, event);
        }
        self.since_checkpoint += events.len();
        self.maybe_checkpoint()
    }

    fn checkpoint(&mut self, snapshot: &RepositorySnapshot) -> Result<(), RepoError> {
        self.state = snapshot.clone();
        self.compact_now()
    }

    fn restore(&self) -> Result<RepositorySnapshot, RepoError> {
        self.inner.restore()
    }

    fn flush_durable(&mut self) -> Result<(), RepoError> {
        self.inner.flush_durable()
    }

    fn set_durability(&mut self, mode: DurabilityMode) {
        self.inner.set_durability(mode)
    }

    fn tail_repaired(&self) -> Option<TailRepaired> {
        self.inner.tail_repaired()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::principal::Principal;
    use crate::repo::Repository;
    use crate::template::{ExampleEntry, ExampleType};

    use crate::test_support::unique_dir;

    fn entry(title: &str) -> ExampleEntry {
        ExampleEntry::builder(title)
            .of_type(ExampleType::Precise)
            .overview("O.")
            .models("M.")
            .consistency("C.")
            .restoration("F.", "B.")
            .discussion("D.")
            .author("alice")
            .build()
            .unwrap()
    }

    fn busy_repository() -> Repository {
        let r = Repository::found("bx", vec![Principal::curator("c")]);
        r.register(Principal::member("alice")).unwrap();
        r.register(Principal::member("bob")).unwrap();
        r.grant_role("c", "bob", crate::principal::Role::Reviewer)
            .unwrap();
        let id = r.contribute("alice", entry("COMPOSERS")).unwrap();
        r.comment("bob", &id, "2014-03-28", "Nice.").unwrap();
        r.request_review("alice", &id).unwrap();
        r.approve("bob", &id).unwrap();
        r.contribute("alice", entry("DATES")).unwrap();
        r
    }

    #[test]
    fn memory_backend_replays_deltas() {
        let r = busy_repository();
        let mut backend = MemoryBackend::new();
        backend.record(&r.drain_events()).unwrap();
        assert_eq!(backend.kind(), "memory");
        assert!(backend.pending_events() > 0);
        assert_eq!(backend.restore().unwrap(), r.snapshot());
        // Checkpoint compacts without changing the restored state.
        backend.checkpoint(&r.snapshot()).unwrap();
        assert_eq!(backend.pending_events(), 0);
        assert_eq!(backend.restore().unwrap(), r.snapshot());
    }

    #[test]
    fn json_file_backend_keeps_the_legacy_format() {
        let dir = unique_dir("json");
        std::fs::create_dir_all(&dir).unwrap();
        let r = busy_repository();
        let mut backend = JsonFileBackend::new(dir.join("repo.json"));
        backend.record(&r.drain_events()).unwrap();
        assert_eq!(backend.restore().unwrap(), r.snapshot());
        // The file is byte-identical to what persist has always written —
        // and loads through the legacy loader.
        let on_disk = std::fs::read_to_string(backend.path()).unwrap();
        assert_eq!(on_disk, persist::to_json(&r.snapshot()).unwrap());
        let legacy = persist::load_file(backend.path()).unwrap();
        assert_eq!(legacy.snapshot(), r.snapshot());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn event_log_backend_appends_and_recovers() {
        let dir = unique_dir("log");
        let r = busy_repository();
        let mut backend = EventLogBackend::open(&dir).unwrap();

        // Record in two batches, as a live system would.
        let events = r.drain_events();
        let (a, b) = events.split_at(events.len() / 2);
        backend.record(a).unwrap();
        backend.record(b).unwrap();
        assert_eq!(backend.pending_events().unwrap(), events.len());
        assert_eq!(backend.restore().unwrap(), r.snapshot());

        // A reopened backend (fresh process) sees the same state.
        let reopened = EventLogBackend::open(&dir).unwrap();
        assert_eq!(reopened.restore().unwrap(), r.snapshot());

        // Checkpointing compacts the log; recovery switches to
        // snapshot + (empty) replay.
        backend.checkpoint(&r.snapshot()).unwrap();
        assert_eq!(backend.pending_events().unwrap(), 0);
        assert_eq!(backend.restore().unwrap(), r.snapshot());

        // Deltas after the checkpoint replay on top of it.
        r.comment(
            "alice",
            &crate::repo::EntryId::from_title("DATES"),
            "2014-05-01",
            "post-checkpoint",
        )
        .unwrap();
        backend.record(&r.drain_events()).unwrap();
        assert_eq!(backend.pending_events().unwrap(), 1);
        assert_eq!(backend.restore().unwrap(), r.snapshot());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_log_lines_report_typed_corrupt_frames() {
        let dir = unique_dir("corrupt");
        let backend = EventLogBackend::open(&dir).unwrap();
        // A complete (newline-terminated) unparseable line is corruption,
        // typed with the byte offset of the offending line so salvage can
        // truncate exactly there.
        std::fs::write(dir.join("events-0.jsonl"), "{ not an event\n").unwrap();
        match backend.restore() {
            Err(RepoError::CorruptFrame {
                segment, offset, ..
            }) => {
                assert_eq!(segment, "events-0.jsonl");
                assert_eq!(offset, 0);
            }
            other => panic!("expected CorruptFrame, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_final_append_recovers_the_intact_prefix() {
        let dir = unique_dir("torn");
        let r = busy_repository();
        let mut backend = EventLogBackend::open(&dir).unwrap();
        backend.record(&r.drain_events()).unwrap();
        let expected = backend.restore().unwrap();
        // Simulate a crash mid-append: a final line with no newline.
        let log = dir.join("events-0.jsonl");
        let mut text = std::fs::read_to_string(&log).unwrap();
        text.push_str("{\"Commented\":{\"id\":\"co");
        std::fs::write(&log, text).unwrap();
        assert_eq!(
            backend.restore().unwrap(),
            expected,
            "the torn tail is dropped, the intact prefix recovered"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_previous_generation_log_is_ignored_after_checkpoint() {
        // Simulate dying in the checkpoint window after the manifest
        // rename but before the old generation's log is unlinked: the
        // manifest points at the new (absent) log, so the stale events
        // must not be double-applied.
        let dir = unique_dir("stale");
        let r = busy_repository();
        let mut backend = EventLogBackend::open(&dir).unwrap();
        let events = r.drain_events();
        backend.record(&events).unwrap();
        backend.checkpoint(&r.snapshot()).unwrap();
        // Resurrect the superseded generation file by hand.
        let mut stale = String::new();
        for e in &events {
            stale.push_str(&serde_json::to_string(e).unwrap());
            stale.push('\n');
        }
        std::fs::write(dir.join("events-0.jsonl"), stale).unwrap();
        assert_eq!(backend.pending_events().unwrap(), 0);
        assert_eq!(backend.restore().unwrap(), r.snapshot());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_repairs_a_torn_tail_so_appends_stay_clean() {
        let dir = unique_dir("repair");
        let r = busy_repository();
        let events = r.drain_events();
        let (before, after) = events.split_at(events.len() - 2);
        {
            let mut backend = EventLogBackend::open(&dir).unwrap();
            backend.record(before).unwrap();
        }
        // Crash mid-append: a partial final line with no newline.
        let log = dir.join("events-0.jsonl");
        let mut text = std::fs::read_to_string(&log).unwrap();
        text.push_str("{\"Commented\":{\"id\":\"co");
        std::fs::write(&log, text).unwrap();
        // A fresh writer process appends the remaining events. Without the
        // open-time repair, its first line would fuse with the fragment
        // into a corrupt line.
        let mut backend = EventLogBackend::open(&dir).unwrap();
        let repair = backend
            .tail_repaired()
            .expect("the open-time repair is observable, never silent");
        assert_eq!(repair.file, "events-0.jsonl");
        assert_eq!(
            repair.bytes_dropped,
            "{\"Commented\":{\"id\":\"co".len() as u64
        );
        backend.record(after).unwrap();
        assert_eq!(backend.restore().unwrap(), r.snapshot());
        assert_eq!(backend.pending_events().unwrap(), events.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prune_removes_only_superseded_generations() {
        let dir = unique_dir("prune");
        let r = busy_repository();
        let mut backend = EventLogBackend::open(&dir).unwrap();
        backend.record(&r.drain_events()).unwrap();
        backend.checkpoint(&r.snapshot()).unwrap();
        // Strand two stale generations, as a crash inside the checkpoint
        // window would.
        std::fs::write(dir.join("events-0.jsonl"), "junk\n").unwrap();
        std::fs::write(dir.join("events-7.jsonl"), "junk\n").unwrap();
        // The current generation has live post-checkpoint deltas.
        r.comment(
            "alice",
            &crate::repo::EntryId::from_title("DATES"),
            "2014-05-01",
            "live",
        )
        .unwrap();
        backend.record(&r.drain_events()).unwrap();
        assert_eq!(backend.prune_stale_generations().unwrap(), 2);
        assert_eq!(
            backend.generation_files().unwrap(),
            vec![backend.current_generation().to_string()]
        );
        assert_eq!(backend.restore().unwrap(), r.snapshot());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn auto_compaction_bounds_replay_and_generations() {
        let dir = unique_dir("autocompact");
        let r = busy_repository();
        let mut backend = AutoCompactingEventLog::open(
            &dir,
            CompactionPolicy {
                checkpoint_every: 4,
            },
        )
        .unwrap();
        let events = r.drain_events();
        // Feed one event at a time: the policy must fire repeatedly.
        for event in &events {
            backend.record(std::slice::from_ref(event)).unwrap();
        }
        assert!(backend.events_since_checkpoint() < 4);
        assert!(backend.inner().pending_events().unwrap() < 4);
        assert!(backend.inner().generation_files().unwrap().len() <= 1);
        assert_eq!(backend.restore().unwrap(), r.snapshot());
        // A reopened instance with a tighter budget compacts immediately.
        drop(backend);
        let reopened = AutoCompactingEventLog::open(
            &dir,
            CompactionPolicy {
                checkpoint_every: 1,
            },
        )
        .unwrap();
        assert_eq!(reopened.events_since_checkpoint(), 0);
        assert_eq!(reopened.restore().unwrap(), r.snapshot());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_observer_publishes_on_the_unified_channel() {
        let dir = unique_dir("compact-observe");
        let r = busy_repository();
        let health = Arc::new(RuntimeHealth::new());
        let mut backend = AutoCompactingEventLog::open(
            &dir,
            CompactionPolicy {
                checkpoint_every: 4,
            },
        )
        .unwrap();
        backend.set_observer(&health, "compaction:jsonl");
        let events = r.drain_events();
        for event in &events {
            backend.record(std::slice::from_ref(event)).unwrap();
        }
        // Explicit checkpoints publish too.
        backend.checkpoint(&r.snapshot()).unwrap();
        let report = health
            .latest("compaction:jsonl")
            .expect("every compaction pass publishes");
        match report.report {
            HealthReport::Compaction {
                ref kind,
                checkpoints,
                ..
            } => {
                assert_eq!(kind, "event-log+auto-compact");
                assert!(checkpoints >= 2, "auto passes plus the explicit one");
                assert_eq!(checkpoints, backend.compactions());
            }
            ref other => panic!("expected a compaction report, got {other:?}"),
        }

        // The binary instantiation reports its own kind.
        let bin_dir = unique_dir("compact-observe-bin");
        let mut binary: AutoCompactingBinaryLog = AutoCompactingEventLog::open_with(
            &bin_dir,
            CompactionPolicy {
                checkpoint_every: 1,
            },
        )
        .unwrap();
        binary.set_observer(&health, "compaction:bin");
        binary.record(&events).unwrap();
        match health.latest("compaction:bin").unwrap().report {
            HealthReport::Compaction { ref kind, .. } => {
                assert_eq!(kind, "binary-log+auto-compact")
            }
            ref other => panic!("expected a compaction report, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&bin_dir).ok();
    }

    #[test]
    fn missing_json_file_reports_persist_error() {
        let backend = JsonFileBackend::new("/nonexistent/definitely/missing.json");
        assert!(matches!(backend.restore(), Err(RepoError::Persist(_))));
    }

    #[test]
    fn json_flush_durable_skips_only_a_missing_file() {
        let dir = unique_dir("json-fsync");
        std::fs::create_dir_all(&dir).unwrap();
        // Absent snapshot: nothing recorded yet, nothing to sync.
        let mut absent = JsonFileBackend::new(dir.join("missing.json"));
        absent.flush_durable().unwrap();
        // Any other open failure must surface, not masquerade as durable:
        // a path routed *through* a regular file fails with NotADirectory.
        let blocking = dir.join("plain-file");
        std::fs::write(&blocking, "x").unwrap();
        let mut broken = JsonFileBackend::new(blocking.join("nested.json"));
        assert!(matches!(broken.flush_durable(), Err(RepoError::Persist(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_stages_then_one_flush_makes_everything_durable() {
        let dir = unique_dir("group-commit");
        let r = busy_repository();
        let mut backend = EventLogBackend::open(&dir).unwrap();
        assert_eq!(backend.durability(), DurabilityMode::PerBatch);
        backend.set_durability(DurabilityMode::GroupCommit);

        let events = r.drain_events();
        let (a, b) = events.split_at(events.len() / 2);
        backend.record(a).unwrap();
        backend.record(b).unwrap();
        // Both batches are staged and visible to readers before the fsync
        // point; one flush covers them all.
        assert_eq!(backend.pending_events().unwrap(), events.len());
        backend.flush_durable().unwrap();
        assert_eq!(backend.restore().unwrap(), r.snapshot());
        // Idempotent: nothing staged, nothing to sync.
        backend.flush_durable().unwrap();

        // A fresh process over the directory sees the flushed state.
        let reopened = EventLogBackend::open(&dir).unwrap();
        assert_eq!(reopened.restore().unwrap(), r.snapshot());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_rolls_the_persistent_appender_to_the_new_generation() {
        let dir = unique_dir("appender-roll");
        let r = busy_repository();
        let mut backend = EventLogBackend::open(&dir).unwrap();
        backend.set_durability(DurabilityMode::GroupCommit);
        backend.record(&r.drain_events()).unwrap();
        // Checkpoint mid-stage: the manifest supersedes the staged bytes,
        // the appender must re-open on the fresh generation.
        backend.checkpoint(&r.snapshot()).unwrap();
        r.comment(
            "alice",
            &crate::repo::EntryId::from_title("DATES"),
            "2014-05-01",
            "post-roll",
        )
        .unwrap();
        backend.record(&r.drain_events()).unwrap();
        backend.flush_durable().unwrap();
        assert_eq!(backend.pending_events().unwrap(), 1);
        assert_eq!(backend.current_generation(), "events-1.jsonl");
        assert_eq!(backend.restore().unwrap(), r.snapshot());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pending_events_counts_lines_without_parsing() {
        let dir = unique_dir("pending-count");
        let r = busy_repository();
        let mut backend = EventLogBackend::open(&dir).unwrap();
        backend.record(&r.drain_events()).unwrap();
        // Tear the tail as a mid-write kill would, and pad with a blank
        // line the parser has always skipped.
        let log = dir.join("events-0.jsonl");
        let mut text = std::fs::read_to_string(&log).unwrap();
        text.push_str("   \n{\"Commented\":{\"id\":\"co");
        std::fs::write(&log, text).unwrap();
        // The intact-line count is pinned to what full parsing yields.
        let parsed = EventLogBackend::read_log_file(&log).unwrap().len();
        assert_eq!(backend.pending_events().unwrap(), parsed);
        assert!(parsed > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_split_counts_sync_all_for_growth_and_sync_data_otherwise() {
        let dir = unique_dir("fsync-split");
        let r = busy_repository();
        let mut backend = EventLogBackend::open(&dir).unwrap();

        // Per-batch appends grow the segment: every record is a sync_all.
        let events = r.drain_events();
        let (a, b) = events.split_at(events.len() / 2);
        backend.record(a).unwrap();
        assert_eq!(
            backend.fsync_stats(),
            FsyncStats {
                sync_all: 1,
                sync_data: 0
            }
        );

        // Group commit: a staged batch grew the segment, so the flush is
        // still a sync_all.
        backend.set_durability(DurabilityMode::GroupCommit);
        backend.record(b).unwrap();
        backend.flush_durable().unwrap();
        assert_eq!(
            backend.fsync_stats(),
            FsyncStats {
                sync_all: 2,
                sync_data: 0
            }
        );
        // Clean flush: no fsync of either kind.
        backend.flush_durable().unwrap();
        assert_eq!(backend.fsync_stats().total(), 2);

        // Dirty with the segment length unchanged since the last fsync
        // (no append happened): the durable size metadata is already
        // right, so the flush downgrades to sync_data.
        backend.dirty = true;
        backend.flush_durable().unwrap();
        assert_eq!(
            backend.fsync_stats(),
            FsyncStats {
                sync_all: 2,
                sync_data: 1
            }
        );
        assert_eq!(backend.restore().unwrap(), r.snapshot());

        // A checkpoint rolls the generation: the first flush over the new
        // segment must be a full sync again.
        backend.checkpoint(&r.snapshot()).unwrap();
        r.comment(
            "alice",
            &crate::repo::EntryId::from_title("DATES"),
            "2014-05-01",
            "post-roll",
        )
        .unwrap();
        backend.record(&r.drain_events()).unwrap();
        backend.flush_durable().unwrap();
        assert_eq!(
            backend.fsync_stats(),
            FsyncStats {
                sync_all: 3,
                sync_data: 1
            }
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_cloned_backend_owes_no_fsync_for_the_originals_staged_bytes() {
        let dir = unique_dir("clone-dirty");
        let r = busy_repository();
        let mut backend = EventLogBackend::open(&dir).unwrap();
        backend.set_durability(DurabilityMode::GroupCommit);
        backend.record(&r.drain_events()).unwrap();
        let mut clone = backend.clone();
        // The clone starts clean (its flush is a no-op) but shares the
        // directory, so reads agree; the original still flushes its own
        // staged bytes.
        clone.flush_durable().unwrap();
        backend.flush_durable().unwrap();
        assert_eq!(clone.restore().unwrap(), r.snapshot());
        std::fs::remove_dir_all(&dir).ok();
    }
}
