//! The archival manuscript export (§5.2): "it may make sense to collect
//! the most recent versions of all of the examples in it into a manuscript
//! (with all authors and reviewers named), and publish it formally as a
//! citable, archival technical report."

use std::collections::BTreeSet;

use crate::cite::{bibtex_record, cite_repository};
use crate::repo::RepositorySnapshot;
use crate::wiki::render_entry;

/// Options for the export.
#[derive(Debug, Clone, Copy, Default)]
pub struct ManuscriptOptions {
    /// Include only reviewed (version ≥ 1.0) entries.
    pub reviewed_only: bool,
}

/// Produce the archival technical report as plain text. Entries are
/// keyed by their record id (not their title slug), so a federated
/// snapshot whose sources contributed colliding titles exports distinct
/// BibTeX keys per source.
pub fn export_manuscript(snapshot: &RepositorySnapshot, options: ManuscriptOptions) -> String {
    let entries: Vec<_> = snapshot
        .records
        .iter()
        .map(|(id, r)| (id, r.latest()))
        .filter(|(_, e)| !options.reviewed_only || e.version.is_reviewed())
        .collect();

    let mut authors: BTreeSet<&str> = BTreeSet::new();
    let mut reviewers: BTreeSet<&str> = BTreeSet::new();
    for (_, e) in &entries {
        authors.extend(e.authors.iter().map(String::as_str));
        reviewers.extend(e.reviewers.iter().map(String::as_str));
    }

    let mut out = String::with_capacity(4096);
    out.push_str(&format!("{}\n", snapshot.name));
    out.push_str(&"=".repeat(snapshot.name.len()));
    out.push_str("\n\nAn archival technical report collecting the most recent versions of\n");
    out.push_str("all examples in the repository, with all authors and reviewers named.\n\n");

    out.push_str("Contributing authors:\n");
    for a in &authors {
        out.push_str(&format!("  - {a}\n"));
    }
    out.push_str("\nReviewers:\n");
    if reviewers.is_empty() {
        out.push_str("  (none yet)\n");
    } else {
        for r in &reviewers {
            out.push_str(&format!("  - {r}\n"));
        }
    }
    out.push_str(&format!(
        "\nCanonical citation: {}\n",
        cite_repository(&snapshot.name)
    ));
    out.push_str(&format!("\nContents ({} entries):\n", entries.len()));
    for (_, e) in &entries {
        out.push_str(&format!("  - {} (version {})\n", e.title, e.version));
    }
    out.push_str("\n----\n\n");

    for (_, e) in &entries {
        out.push_str(&render_entry(e));
        out.push_str("----\n\n");
    }

    out.push_str("Appendix: BibTeX records\n\n");
    for (id, e) in &entries {
        out.push_str(&bibtex_record(&snapshot.name, id, e));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::principal::{Principal, Role};
    use crate::repo::Repository;
    use crate::template::{ExampleEntry, ExampleType};

    fn repo() -> Repository {
        let r = Repository::found(
            "The Bx Examples Repository",
            vec![Principal::curator("cur")],
        );
        r.register(Principal::member("alice")).unwrap();
        r.register(Principal::member("rev")).unwrap();
        r.grant_role("cur", "rev", Role::Reviewer).unwrap();
        for title in ["COMPOSERS", "UML2RDBMS"] {
            let e = ExampleEntry::builder(title)
                .of_type(ExampleType::Precise)
                .overview("O.")
                .models("M.")
                .consistency("C.")
                .restoration("F.", "B.")
                .discussion("D.")
                .author("alice")
                .build()
                .unwrap();
            r.contribute("alice", e).unwrap();
        }
        r
    }

    #[test]
    fn manuscript_names_everyone_and_lists_entries() {
        let r = repo();
        let text = export_manuscript(&r.snapshot(), ManuscriptOptions::default());
        assert!(text.contains("The Bx Examples Repository"));
        assert!(text.contains("- alice"));
        assert!(text.contains("(none yet)"));
        assert!(text.contains("Contents (2 entries):"));
        assert!(text.contains("++ COMPOSERS"));
        assert!(text.contains("++ UML2RDBMS"));
        assert!(text.contains("@misc{bx-composers-0-1,"));
    }

    #[test]
    fn reviewed_only_filters() {
        let r = repo();
        let id = crate::repo::EntryId("composers".to_string());
        r.request_review("alice", &id).unwrap();
        r.approve("rev", &id).unwrap();
        let text = export_manuscript(
            &r.snapshot(),
            ManuscriptOptions {
                reviewed_only: true,
            },
        );
        assert!(text.contains("Contents (1 entries):"));
        assert!(text.contains("++ COMPOSERS"));
        assert!(!text.contains("++ UML2RDBMS"));
        assert!(text.contains("- rev"), "reviewer named");
    }
}
