//! Citation formats (§5.2: "it seems like a good idea to recommend a
//! format for citations to examples (including versions) or to the
//! repository itself").

use crate::error::RepoError;
use crate::repo::{EntryId, Repository, RepositorySnapshot};
use crate::template::ExampleEntry;
use crate::version::Version;

/// The canonical base URL of the repository (the Bx wiki examples area).
pub const REPOSITORY_URL: &str = "http://bx-community.wikidot.com/examples:home";

/// The recommended in-text citation for a specific entry version, e.g.
///
/// `COMPOSERS, version 0.1. In: The Bx Examples Repository.
/// http://bx-community.wikidot.com/examples:composers`
pub fn cite_entry(repo_name: &str, entry: &ExampleEntry) -> String {
    cite_record(repo_name, &EntryId::from_title(&entry.title), entry)
}

/// [`cite_entry`] with the record id supplied explicitly rather than
/// derived from the title — required when the id is not the title's slug,
/// as for the source-namespaced records of a
/// [`crate::replica::Federation`] (`eu/composers`).
pub fn cite_record(repo_name: &str, id: &EntryId, entry: &ExampleEntry) -> String {
    format!(
        "{}, version {}. In: {}. http://bx-community.wikidot.com/{}",
        entry.title,
        entry.version,
        repo_name,
        id.page_name()
    )
}

/// Citation for an entry in a live repository, latest or pinned version.
pub fn cite(
    repo: &Repository,
    id: &EntryId,
    version: Option<Version>,
) -> Result<String, RepoError> {
    let entry = match version {
        None => repo.latest(id)?,
        Some(v) => repo.at_version(id, v)?,
    };
    Ok(cite_entry(repo.name(), &entry))
}

/// Citation for an entry in a *snapshot* — the replica/federation serving
/// path, where no live [`Repository`] exists. Latest version by default,
/// or a pinned one.
pub fn cite_in(
    snapshot: &RepositorySnapshot,
    id: &EntryId,
    version: Option<Version>,
) -> Result<String, RepoError> {
    let record = snapshot
        .records
        .get(id)
        .ok_or_else(|| RepoError::UnknownEntry(id.to_string()))?;
    let entry = match version {
        None => record.latest(),
        Some(v) => record
            .history
            .iter()
            .find(|e| e.version == v)
            .ok_or_else(|| RepoError::UnknownVersion {
                entry: id.to_string(),
                version: v.to_string(),
            })?,
    };
    Ok(cite_record(&snapshot.name, id, entry))
}

/// The recommended citations for every entry's latest version, in id
/// order — the "how to cite what this node serves" listing a replica or
/// federation exposes.
pub fn citations(snapshot: &RepositorySnapshot) -> Vec<String> {
    snapshot
        .records
        .iter()
        .map(|(id, record)| cite_record(&snapshot.name, id, record.latest()))
        .collect()
}

/// A BibTeX record for an entry version (for the archival manuscript and
/// for papers that prefer BibTeX).
pub fn bibtex(repo_name: &str, entry: &ExampleEntry) -> String {
    bibtex_record(repo_name, &EntryId::from_title(&entry.title), entry)
}

/// [`bibtex`] with the record id supplied explicitly. The BibTeX key
/// derives from the id, so two federated sources contributing entries
/// with the same title still get distinct keys
/// (`bx-eu-composers-0-1` vs `bx-us-composers-0-1`).
pub fn bibtex_record(repo_name: &str, id: &EntryId, entry: &ExampleEntry) -> String {
    let key = format!("bx-{}-{}", id.as_str(), entry.version).replace(['.', '/'], "-");
    let mut out = String::with_capacity(256);
    out.push_str(&format!("@misc{{{key},\n"));
    out.push_str(&format!(
        "  title        = {{{{{}}} (version {})}},\n",
        entry.title, entry.version
    ));
    out.push_str(&format!(
        "  author       = {{{}}},\n",
        entry.authors.join(" and ")
    ));
    out.push_str(&format!("  howpublished = {{{repo_name}}},\n"));
    out.push_str(&format!(
        "  url          = {{http://bx-community.wikidot.com/{}}},\n",
        id.page_name()
    ));
    if !entry.reviewers.is_empty() {
        out.push_str(&format!(
            "  note         = {{reviewed by {}}},\n",
            entry.reviewers.join(", ")
        ));
    }
    out.push_str("}\n");
    out
}

/// The recommended citation for the repository as a whole.
pub fn cite_repository(repo_name: &str) -> String {
    format!("{repo_name}. The Bx community. {REPOSITORY_URL}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::principal::Principal;
    use crate::template::ExampleType;

    fn entry() -> ExampleEntry {
        ExampleEntry::builder("COMPOSERS")
            .of_type(ExampleType::Precise)
            .overview("O.")
            .models("M.")
            .consistency("C.")
            .restoration("F.", "B.")
            .discussion("D.")
            .author("Perdita Stevens")
            .author("James McKinna")
            .build()
            .unwrap()
    }

    #[test]
    fn entry_citation_includes_version_and_url() {
        let c = cite_entry("The Bx Examples Repository", &entry());
        assert!(c.contains("COMPOSERS, version 0.1"));
        assert!(c.contains("examples:composers"));
        assert!(c.contains("The Bx Examples Repository"));
    }

    #[test]
    fn live_citation_pins_versions() {
        let r = Repository::found("The Bx Examples Repository", vec![Principal::curator("c")]);
        r.register(Principal::member("Perdita Stevens")).unwrap();
        let id = r.contribute("Perdita Stevens", entry()).unwrap();
        let latest = cite(&r, &id, None).unwrap();
        assert!(latest.contains("version 0.1"));
        let pinned = cite(&r, &id, Some(crate::version::Version::new(0, 1))).unwrap();
        assert_eq!(latest, pinned);
        assert!(cite(&r, &id, Some(crate::version::Version::new(9, 9))).is_err());
    }

    #[test]
    fn bibtex_is_well_formed() {
        let b = bibtex("The Bx Examples Repository", &entry());
        assert!(b.starts_with("@misc{bx-composers-0-1,"));
        assert!(b.contains("Perdita Stevens and James McKinna"));
        assert!(b.trim_end().ends_with('}'));
        assert!(
            !b.contains("note"),
            "unreviewed entries carry no reviewer note"
        );
    }

    #[test]
    fn bibtex_notes_reviewers() {
        let mut e = entry();
        e.reviewers.push("Jeremy Gibbons".to_string());
        let b = bibtex("R", &e);
        assert!(b.contains("reviewed by Jeremy Gibbons"));
    }

    #[test]
    fn snapshot_citations_serve_without_a_live_repository() {
        let r = Repository::found("R", vec![Principal::curator("c")]);
        r.register(Principal::member("Perdita Stevens")).unwrap();
        let id = r.contribute("Perdita Stevens", entry()).unwrap();
        let snap = r.snapshot();
        assert_eq!(
            cite_in(&snap, &id, None).unwrap(),
            cite(&r, &id, None).unwrap()
        );
        assert_eq!(
            cite_in(&snap, &id, Some(Version::new(0, 1))).unwrap(),
            cite(&r, &id, None).unwrap()
        );
        assert!(matches!(
            cite_in(&snap, &id, Some(Version::new(9, 9))),
            Err(RepoError::UnknownVersion { .. })
        ));
        assert!(matches!(
            cite_in(&snap, &EntryId("ghost".into()), None),
            Err(RepoError::UnknownEntry(_))
        ));
        let all = citations(&snap);
        assert_eq!(all, vec![cite(&r, &id, None).unwrap()]);
    }

    #[test]
    fn record_citation_honours_a_namespaced_id() {
        // A federated record's key is not its title slug: the citation
        // URL and BibTeX key must follow the *record id*.
        let id = EntryId("eu/composers".to_string());
        let c = cite_record("Fed", &id, &entry());
        assert!(c.contains("examples:eu/composers"));
        let b = bibtex_record("Fed", &id, &entry());
        assert!(b.starts_with("@misc{bx-eu-composers-0-1,"), "{b}");
    }

    #[test]
    fn repository_citation() {
        let c = cite_repository("The Bx Examples Repository");
        assert!(c.contains(REPOSITORY_URL));
    }
}
