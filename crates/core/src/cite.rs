//! Citation formats (§5.2: "it seems like a good idea to recommend a
//! format for citations to examples (including versions) or to the
//! repository itself").

use crate::error::RepoError;
use crate::repo::{EntryId, Repository};
use crate::template::ExampleEntry;
use crate::version::Version;

/// The canonical base URL of the repository (the Bx wiki examples area).
pub const REPOSITORY_URL: &str = "http://bx-community.wikidot.com/examples:home";

/// The recommended in-text citation for a specific entry version, e.g.
///
/// `COMPOSERS, version 0.1. In: The Bx Examples Repository.
/// http://bx-community.wikidot.com/examples:composers`
pub fn cite_entry(repo_name: &str, entry: &ExampleEntry) -> String {
    let id = EntryId::from_title(&entry.title);
    format!(
        "{}, version {}. In: {}. http://bx-community.wikidot.com/{}",
        entry.title,
        entry.version,
        repo_name,
        id.page_name()
    )
}

/// Citation for an entry in a live repository, latest or pinned version.
pub fn cite(
    repo: &Repository,
    id: &EntryId,
    version: Option<Version>,
) -> Result<String, RepoError> {
    let entry = match version {
        None => repo.latest(id)?,
        Some(v) => repo.at_version(id, v)?,
    };
    Ok(cite_entry(repo.name(), &entry))
}

/// A BibTeX record for an entry version (for the archival manuscript and
/// for papers that prefer BibTeX).
pub fn bibtex(repo_name: &str, entry: &ExampleEntry) -> String {
    let id = EntryId::from_title(&entry.title);
    let key = format!("bx-{}-{}", id.as_str(), entry.version).replace('.', "-");
    let mut out = String::with_capacity(256);
    out.push_str(&format!("@misc{{{key},\n"));
    out.push_str(&format!(
        "  title        = {{{{{}}} (version {})}},\n",
        entry.title, entry.version
    ));
    out.push_str(&format!(
        "  author       = {{{}}},\n",
        entry.authors.join(" and ")
    ));
    out.push_str(&format!("  howpublished = {{{repo_name}}},\n"));
    out.push_str(&format!(
        "  url          = {{http://bx-community.wikidot.com/{}}},\n",
        id.page_name()
    ));
    if !entry.reviewers.is_empty() {
        out.push_str(&format!(
            "  note         = {{reviewed by {}}},\n",
            entry.reviewers.join(", ")
        ));
    }
    out.push_str("}\n");
    out
}

/// The recommended citation for the repository as a whole.
pub fn cite_repository(repo_name: &str) -> String {
    format!("{repo_name}. The Bx community. {REPOSITORY_URL}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::principal::Principal;
    use crate::template::ExampleType;

    fn entry() -> ExampleEntry {
        ExampleEntry::builder("COMPOSERS")
            .of_type(ExampleType::Precise)
            .overview("O.")
            .models("M.")
            .consistency("C.")
            .restoration("F.", "B.")
            .discussion("D.")
            .author("Perdita Stevens")
            .author("James McKinna")
            .build()
            .unwrap()
    }

    #[test]
    fn entry_citation_includes_version_and_url() {
        let c = cite_entry("The Bx Examples Repository", &entry());
        assert!(c.contains("COMPOSERS, version 0.1"));
        assert!(c.contains("examples:composers"));
        assert!(c.contains("The Bx Examples Repository"));
    }

    #[test]
    fn live_citation_pins_versions() {
        let r = Repository::found("The Bx Examples Repository", vec![Principal::curator("c")]);
        r.register(Principal::member("Perdita Stevens")).unwrap();
        let id = r.contribute("Perdita Stevens", entry()).unwrap();
        let latest = cite(&r, &id, None).unwrap();
        assert!(latest.contains("version 0.1"));
        let pinned = cite(&r, &id, Some(crate::version::Version::new(0, 1))).unwrap();
        assert_eq!(latest, pinned);
        assert!(cite(&r, &id, Some(crate::version::Version::new(9, 9))).is_err());
    }

    #[test]
    fn bibtex_is_well_formed() {
        let b = bibtex("The Bx Examples Repository", &entry());
        assert!(b.starts_with("@misc{bx-composers-0-1,"));
        assert!(b.contains("Perdita Stevens and James McKinna"));
        assert!(b.trim_end().ends_with('}'));
        assert!(
            !b.contains("note"),
            "unreviewed entries carry no reviewer note"
        );
    }

    #[test]
    fn bibtex_notes_reviewers() {
        let mut e = entry();
        e.reviewers.push("Jeremy Gibbons".to_string());
        let b = bibtex("R", &e);
        assert!(b.contains("reviewed by Jeremy Gibbons"));
    }

    #[test]
    fn repository_citation() {
        let c = cite_repository("The Bx Examples Repository");
        assert!(c.contains(REPOSITORY_URL));
    }
}
