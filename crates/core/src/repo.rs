//! The repository: stable identifiers, version history, permission-checked
//! curation workflows.
//!
//! Storage is a lock-striped sharded store: entries are partitioned across
//! N shards by a hash of their [`EntryId`], each shard behind its own
//! `RwLock`, with accounts behind a separate lock — so mutations of
//! distinct entries proceed in parallel instead of serialising on one
//! global lock.
//!
//! Every successful mutation is additionally **pushed**, at commit time,
//! to every subscribed [`EventSink`] — the event bus downstream
//! materializations hang off (incremental index maintenance, dirty-tracked
//! wiki sync, the background durability pipeline, read replicas). The
//! legacy pull API survives as the built-in *journal sink*: a bounded
//! buffer [`Repository::drain_events`] empties. See the
//! "drain-or-subscribe contract" on [`Repository::drain_events`].

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use serde::{Deserialize, Serialize};

use crate::curation::EntryStatus;
use crate::error::RepoError;
use crate::event::{
    Commented, EntryDelta, EntryRef, EventSink, Founded, Registered, RepoEvent, RoleGranted,
};
use crate::principal::{Principal, Role};
use crate::template::{Comment, ExampleEntry};
use crate::version::Version;

/// A stable entry identifier (the slug of the entry's title). "We need …
/// a stable reference for each example … so that it can be referenced in
/// a paper with some hope that that reference will persist."
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EntryId(pub String);

impl EntryId {
    /// Derive from a title.
    pub fn from_title(title: &str) -> EntryId {
        EntryId(crate::template::slug_of(title))
    }

    /// The slug text.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The wiki page name for this entry ("examples:composers").
    pub fn page_name(&self) -> String {
        format!("examples:{}", self.0)
    }
}

impl fmt::Display for EntryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One entry's full record: status plus every version ever published.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EntryRecord {
    /// Workflow status.
    pub status: EntryStatus,
    /// All versions, oldest first; "keep old versions of examples
    /// available, so that old references can still be followed".
    pub history: Vec<ExampleEntry>,
}

impl EntryRecord {
    /// The latest version.
    pub fn latest(&self) -> &ExampleEntry {
        self.history
            .last()
            .expect("records always hold at least one version")
    }
}

/// A point-in-time, lock-free copy of the repository contents — the unit
/// the wiki bx, the manuscript export and persistence all work over.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepositorySnapshot {
    /// Repository name.
    pub name: String,
    /// All records, keyed by id.
    pub records: BTreeMap<EntryId, EntryRecord>,
    /// All registered accounts, keyed by name.
    pub accounts: BTreeMap<String, Principal>,
}

impl Default for RepositorySnapshot {
    fn default() -> Self {
        RepositorySnapshot::empty("")
    }
}

impl RepositorySnapshot {
    /// An empty snapshot — the base state event replay starts from.
    pub fn empty(name: &str) -> RepositorySnapshot {
        RepositorySnapshot {
            name: name.to_string(),
            records: BTreeMap::new(),
            accounts: BTreeMap::new(),
        }
    }
}

/// Default shard count: enough stripes that concurrent curation on
/// distinct entries rarely contends, small enough that a full snapshot
/// still just walks a handful of maps.
pub const DEFAULT_SHARD_COUNT: usize = 16;

#[derive(Debug, Default)]
struct Shard {
    records: BTreeMap<EntryId, EntryRecord>,
}

/// FNV-1a over the slug bytes: stable across runs (no `RandomState`), so
/// shard placement is deterministic and tests/benches are reproducible.
fn shard_index(id: &EntryId, shard_count: usize) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in id.0.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % shard_count as u64) as usize
}

/// Default capacity of the built-in journal sink: generous enough that a
/// workload which drains at any reasonable cadence never hits it, small
/// enough that a repository whose owner *never* drains stops accumulating
/// memory (and starts counting overflow) instead of growing forever.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 65_536;

/// The built-in bounded journal: the [`EventSink`] behind
/// [`Repository::drain_events`]. When the buffer is full, incoming events
/// are *discarded* (newest-dropped), a warning is printed once, and the
/// overflow counter ticks — so an owner who forgot to drain loses tail
/// events from the *journal* (never from the repository itself or from
/// other sinks) and can detect it via [`Repository::journal_overflow`].
struct JournalSink {
    buf: Mutex<Vec<RepoEvent>>,
    capacity: AtomicUsize,
    /// Lifetime total of discarded events (diagnostic).
    overflow: AtomicU64,
    /// Discarded events since the last drain — what tells a drain
    /// consumer whether *this* batch is gapped. Reset by the drain.
    overflow_since_drain: AtomicU64,
}

impl JournalSink {
    fn new(capacity: usize) -> JournalSink {
        JournalSink {
            buf: Mutex::new(Vec::new()),
            capacity: AtomicUsize::new(capacity),
            overflow: AtomicU64::new(0),
            overflow_since_drain: AtomicU64::new(0),
        }
    }
}

impl EventSink for JournalSink {
    fn accept(&self, event: &RepoEvent) {
        let capacity = self.capacity.load(Ordering::Relaxed);
        if capacity == 0 {
            // Journal disabled (push-only deployment): no clone, no
            // buffering, no overflow accounting, no warning.
            return;
        }
        let mut buf = self.buf.lock();
        if buf.len() < capacity {
            buf.push(event.clone());
        } else {
            // Both counters tick under the buf lock, so a concurrent
            // drain observes buffer and counters consistently.
            let prior = self.overflow.fetch_add(1, Ordering::Relaxed);
            self.overflow_since_drain.fetch_add(1, Ordering::Relaxed);
            drop(buf);
            if prior == 0 {
                eprintln!(
                    "bx-core: journal sink overflow — events are being dropped; \
                     drain_events() more often, raise set_journal_capacity(), \
                     or subscribe() a push sink (see Repository::drain_events)"
                );
            }
        }
    }
}

/// The curated repository. Thread-safe: entry records live in lock-striped
/// shards keyed by [`EntryId`] hash, accounts behind their own lock.
/// Lock order is always accounts → shard → sinks, so the paths cannot
/// deadlock (sinks must not call back into the repository — see
/// [`EventSink`]).
pub struct Repository {
    name: String,
    accounts: RwLock<BTreeMap<String, Principal>>,
    shards: Box<[RwLock<Shard>]>,
    /// The built-in bounded journal (also present in `sinks`); kept
    /// separately so `drain_events` can reach it concretely.
    journal: Arc<JournalSink>,
    /// Every subscribed sink, the journal first. Events are delivered to
    /// all of them at commit time, in subscription order.
    sinks: RwLock<Vec<Arc<dyn EventSink>>>,
}

impl fmt::Debug for Repository {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Repository")
            .field("name", &self.name)
            .field("shards", &self.shards.len())
            .field("entries", &self.len())
            .finish()
    }
}

/// Guard pair returned by `Repository::checked_shard`: the accounts read
/// guard (kept alive so the role check stays valid) plus the target
/// shard's write guard.
type CheckedShard<'a> = (
    RwLockReadGuard<'a, BTreeMap<String, Principal>>,
    RwLockWriteGuard<'a, Shard>,
);

fn empty_shards(count: usize) -> Box<[RwLock<Shard>]> {
    (0..count.max(1))
        .map(|_| RwLock::new(Shard::default()))
        .collect()
}

impl Repository {
    /// Found a repository with its initial curators ("overall editorial
    /// control … is the responsibility of a small group of curators,
    /// initially ourselves").
    pub fn found(name: &str, curators: Vec<Principal>) -> Repository {
        Repository::with_shards(name, curators, DEFAULT_SHARD_COUNT)
    }

    /// Found a repository with an explicit shard count (`found` uses
    /// [`DEFAULT_SHARD_COUNT`]). A count of 1 degenerates to the old
    /// single-lock layout; behaviour is identical for every count.
    pub fn with_shards(name: &str, curators: Vec<Principal>, shard_count: usize) -> Repository {
        let mut accounts = BTreeMap::new();
        for mut c in curators {
            c.role = Role::Curator;
            accounts.insert(c.name.clone(), c);
        }
        let founded = RepoEvent::Founded(Founded {
            name: name.to_string(),
            curators: accounts.values().cloned().collect(),
        });
        let journal = Arc::new(JournalSink::new(DEFAULT_JOURNAL_CAPACITY));
        let repo = Repository {
            name: name.to_string(),
            accounts: RwLock::new(accounts),
            shards: empty_shards(shard_count),
            journal: journal.clone(),
            sinks: RwLock::new(vec![journal]),
        };
        repo.record(founded);
        repo
    }

    /// The repository's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// How many lock stripes the entry store uses.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard guarding `id`. Same id → same shard, so per-entry
    /// operations (including duplicate checks) need exactly one stripe.
    fn shard_for(&self, id: &EntryId) -> &RwLock<Shard> {
        &self.shards[shard_index(id, self.shards.len())]
    }

    /// Record a delta: push it to every subscribed sink. Called while the
    /// mutated shard's (or the account map's) write guard is still held,
    /// so each sink observes events in the per-entry (and per-account)
    /// application order.
    fn record(&self, event: RepoEvent) {
        for sink in self.sinks.read().iter() {
            sink.accept(&event);
        }
    }

    /// Subscribe a push-mode event sink: from this call on, every
    /// committed mutation is delivered to `sink` at commit time (see
    /// [`EventSink`] for the delivery contract — no re-entrancy, delivery
    /// blocks the mutating caller).
    ///
    /// Subscription is *forward-only*: the sink sees no past events. To
    /// also hand the sink the pending (not-yet-drained) history in one
    /// race-free step, use [`Repository::subscribe_with_backfill`]; to
    /// seed a durability sink with the *full* history instead, checkpoint
    /// [`Repository::snapshot`] into its backend before subscribing.
    pub fn subscribe(&self, sink: Arc<dyn EventSink>) {
        self.sinks.write().push(sink);
    }

    /// Subscribe `sink` and, atomically with the subscription, deliver it
    /// a copy of every event still pending in the journal — so no event
    /// can fall between "backfill" and "first push". The handoff holds
    /// the sink registry's write lock, which every committing mutation
    /// takes for reading: a concurrent mutation either completes first
    /// (its event is in the backfilled journal copy) or blocks until the
    /// new sink is registered (its event is pushed). The journal itself
    /// is *not* drained — its consumer keeps its own batch. Returns how
    /// many events were backfilled.
    ///
    /// Caveat: the journal is bounded, so if [`Repository::journal_overflow`]
    /// is non-zero the pending buffer is missing dropped events — seed
    /// the sink from [`Repository::snapshot`] instead.
    pub fn subscribe_with_backfill(&self, sink: Arc<dyn EventSink>) -> usize {
        let mut sinks = self.sinks.write();
        let pending = self.journal.buf.lock().clone();
        for event in &pending {
            sink.accept(event);
        }
        sinks.push(sink);
        pending.len()
    }

    /// Remove a previously subscribed sink, releasing the bus's `Arc` so
    /// a dropped subscriber is actually freed (sinks otherwise live as
    /// long as the repository). Identity is by `Arc` pointer — pass a
    /// clone of the same `Arc` that was handed to
    /// [`Repository::subscribe`]. Returns whether a sink was removed;
    /// events committed after the call are no longer delivered to it.
    /// The built-in journal sink cannot be unsubscribed this way (its
    /// `Arc` is never exposed); disable it with
    /// [`Repository::set_journal_capacity`]`(0)` instead.
    pub fn unsubscribe(&self, sink: &Arc<dyn EventSink>) -> bool {
        let mut sinks = self.sinks.write();
        let before = sinks.len();
        // Compare data-pointer identity (`Arc::ptr_eq` on `dyn` fat
        // pointers also compares vtables, which can differ spuriously
        // across codegen units).
        let target = Arc::as_ptr(sink) as *const ();
        sinks.retain(|s| Arc::as_ptr(s) as *const () != target);
        before != sinks.len()
    }

    /// How many sinks are subscribed (the built-in journal included).
    pub fn sink_count(&self) -> usize {
        self.sinks.read().len()
    }

    /// Take all pending change events from the built-in journal sink,
    /// oldest first. Each event is delivered exactly once; feed them to
    /// `SearchIndex::apply`, `WikiBx::sync_changed` (via
    /// [`crate::event::dirty_set`]) or a
    /// [`crate::storage::StorageBackend`].
    ///
    /// ## The drain-or-subscribe contract
    ///
    /// Every consumer must choose one of two modes. **Drain**: call this
    /// at a reasonable cadence; the journal buffers at most
    /// [`DEFAULT_JOURNAL_CAPACITY`] events (tune with
    /// [`Repository::set_journal_capacity`]) and *discards* newer events
    /// beyond that — so a forgotten drain costs bounded memory, not
    /// unbounded growth. Use [`Repository::drain_events_with_overflow`]
    /// to learn, per batch, whether anything was dropped since the last
    /// drain; a batch with a non-zero drop count is gapped, and the
    /// consumer must rebuild from [`Repository::snapshot`] instead of
    /// applying it. **Subscribe**: register an [`EventSink`] and ignore
    /// the journal entirely; push delivery never drops events
    /// (backpressure blocks the writer instead).
    ///
    /// When pairing a batch with a [`Repository::snapshot`] under
    /// concurrent mutation, **drain first, snapshot second**: a mutation
    /// landing between the two calls is then visible in the snapshot and
    /// its event simply arrives in the next batch. The reverse order can
    /// consume an event whose effect the snapshot does not yet show, and
    /// a consumer like `sync_changed` would render the touched entry from
    /// the stale snapshot and leave it stale until it is next touched.
    pub fn drain_events(&self) -> Vec<RepoEvent> {
        self.drain_events_with_overflow().0
    }

    /// [`Repository::drain_events`], plus how many events were discarded
    /// to overflow **since the previous drain** — i.e. whether this batch
    /// is gapped. The counter resets with each drain, so one historical
    /// overflow does not condemn every future batch: after a gapped
    /// batch, rebuild from [`Repository::snapshot`] once and resume
    /// normal incremental consumption.
    pub fn drain_events_with_overflow(&self) -> (Vec<RepoEvent>, u64) {
        let mut buf = self.journal.buf.lock();
        let events = std::mem::take(&mut *buf);
        // Swapped under the buf lock, which `accept` holds while counting
        // a drop — batch and counter stay consistent.
        let dropped = self.journal.overflow_since_drain.swap(0, Ordering::Relaxed);
        (events, dropped)
    }

    /// Lifetime total of events the bounded journal sink has *discarded*
    /// because nobody drained it in time (a diagnostic; for the per-batch
    /// gap signal use [`Repository::drain_events_with_overflow`]). Push
    /// sinks ([`Repository::subscribe`]) are unaffected by overflow.
    pub fn journal_overflow(&self) -> u64 {
        self.journal.overflow.load(Ordering::Relaxed)
    }

    /// Events currently buffered in the journal sink.
    pub fn journal_len(&self) -> usize {
        self.journal.buf.lock().len()
    }

    /// Change the journal sink's capacity (applies to future events; an
    /// already-over-full buffer is not truncated). A capacity of **0
    /// disables the journal entirely** — the right setting for push-only
    /// deployments that subscribe sinks and never drain: no per-mutation
    /// clone, no retained buffer, no overflow warning.
    pub fn set_journal_capacity(&self, capacity: usize) {
        self.journal.capacity.store(capacity, Ordering::Relaxed);
    }

    fn require_role(
        accounts: &BTreeMap<String, Principal>,
        who: &str,
        needs: Role,
        action: &str,
    ) -> Result<(), RepoError> {
        let p = accounts
            .get(who)
            .ok_or_else(|| RepoError::UnknownAccount(who.to_string()))?;
        if p.role.at_least(needs) {
            Ok(())
        } else {
            Err(RepoError::PermissionDenied {
                who: who.to_string(),
                action: action.to_string(),
                needs: needs.to_string(),
            })
        }
    }

    /// Self-registration: anyone may obtain a member account (the
    /// barrier-to-entry is registration itself).
    pub fn register(&self, principal: Principal) -> Result<(), RepoError> {
        let mut accounts = self.accounts.write();
        if accounts.contains_key(&principal.name) {
            return Err(RepoError::DuplicateAccount(principal.name));
        }
        // Self-registration grants Member regardless of the requested role;
        // higher roles come from curators via `grant_role`.
        let stored = Principal {
            role: Role::Member,
            ..principal
        };
        accounts.insert(stored.name.clone(), stored.clone());
        self.record(RepoEvent::Registered(Registered { principal: stored }));
        Ok(())
    }

    /// A curator grants a role to an existing account.
    pub fn grant_role(&self, curator: &str, account: &str, role: Role) -> Result<(), RepoError> {
        let mut accounts = self.accounts.write();
        Self::require_role(&accounts, curator, Role::Curator, "grant roles")?;
        let p = accounts
            .get_mut(account)
            .ok_or_else(|| RepoError::UnknownAccount(account.to_string()))?;
        p.role = role;
        self.record(RepoEvent::RoleGranted(RoleGranted {
            account: account.to_string(),
            role,
        }));
        Ok(())
    }

    /// Look up an account.
    pub fn account(&self, name: &str) -> Result<Principal, RepoError> {
        self.accounts
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| RepoError::UnknownAccount(name.to_string()))
    }

    /// Role-check `who`, then hand back the write guard for `id`'s shard
    /// *together with* the accounts read guard: the check and the
    /// mutation must be atomic, or a concurrent role downgrade could race
    /// an in-flight privileged action past its permission check. Follows
    /// the documented accounts → shard lock order.
    fn checked_shard(
        &self,
        who: &str,
        needs: Role,
        action: &str,
        id: &EntryId,
    ) -> Result<CheckedShard<'_>, RepoError> {
        let accounts = self.accounts.read();
        Self::require_role(&accounts, who, needs, action)?;
        let shard = self.shard_for(id).write();
        Ok((accounts, shard))
    }

    /// Contribute a new entry. The contributor must be registered; the
    /// entry must validate; the title must be fresh. The entry starts
    /// provisional at version 0.1 regardless of what the draft said.
    pub fn contribute(&self, who: &str, mut entry: ExampleEntry) -> Result<EntryId, RepoError> {
        // Hold the accounts guard until the mutation lands (see
        // `checked_shard` on why check-and-mutate must be atomic).
        let accounts = self.accounts.read();
        Self::require_role(&accounts, who, Role::Member, "contribute entries")?;
        let problems = entry.validate();
        if !problems.is_empty() {
            return Err(RepoError::InvalidEntry(problems));
        }
        let id = EntryId::from_title(&entry.title);
        let mut shard = self.shard_for(&id).write();
        if shard.records.contains_key(&id) {
            return Err(RepoError::DuplicateEntry(entry.title));
        }
        entry.version = Version::initial();
        entry.reviewers.clear();
        shard.records.insert(
            id.clone(),
            EntryRecord {
                status: EntryStatus::Provisional,
                history: vec![entry.clone()],
            },
        );
        self.record(RepoEvent::Contributed(EntryDelta {
            id: id.clone(),
            entry,
        }));
        Ok(id)
    }

    /// Revise an entry: publishes a new version (minor bump) and returns
    /// to provisional status. "We do not wish to have uncontrolled
    /// editing": only the entry's authors or a curator may revise.
    pub fn revise(
        &self,
        who: &str,
        id: &EntryId,
        mut entry: ExampleEntry,
    ) -> Result<Version, RepoError> {
        // Held until the mutation lands (see `checked_shard`).
        let accounts = self.accounts.read();
        Self::require_role(&accounts, who, Role::Member, "revise entries")?;
        let is_curator = accounts
            .get(who)
            .is_some_and(|p| p.role.at_least(Role::Curator));
        let mut shard = self.shard_for(id).write();
        let record = shard
            .records
            .get_mut(id)
            .ok_or_else(|| RepoError::UnknownEntry(id.to_string()))?;
        let latest = record.latest();
        if !is_curator && !latest.authors.iter().any(|a| a == who) {
            return Err(RepoError::PermissionDenied {
                who: who.to_string(),
                action: format!("revise `{id}`"),
                needs: "authorship or Curator".to_string(),
            });
        }
        let new_version = latest.version.next_revision();
        entry.version = new_version;
        // Comments accumulate across versions, and reviewers-of-record stay
        // attached for traceability; carry both forward.
        entry.comments = latest.comments.clone();
        entry.reviewers = latest.reviewers.clone();
        let problems = entry.validate();
        if !problems.is_empty() {
            return Err(RepoError::InvalidEntry(problems));
        }
        record.history.push(entry.clone());
        record.status = EntryStatus::Provisional;
        self.record(RepoEvent::Revised(EntryDelta {
            id: id.clone(),
            entry,
        }));
        Ok(new_version)
    }

    /// Any registered member may comment on an entry; comments attach to
    /// the latest version and guide the next one.
    pub fn comment(
        &self,
        who: &str,
        id: &EntryId,
        date: &str,
        text: &str,
    ) -> Result<(), RepoError> {
        let (_accounts, mut shard) = self.checked_shard(who, Role::Member, "comment", id)?;
        let record = shard
            .records
            .get_mut(id)
            .ok_or_else(|| RepoError::UnknownEntry(id.to_string()))?;
        let latest = record.history.last_mut().expect("non-empty history");
        let comment = Comment {
            author: who.to_string(),
            date: date.to_string(),
            text: text.to_string(),
        };
        latest.comments.push(comment.clone());
        self.record(RepoEvent::Commented(Commented {
            id: id.clone(),
            comment,
        }));
        Ok(())
    }

    /// Ask for review (any member; typically an author).
    pub fn request_review(&self, who: &str, id: &EntryId) -> Result<(), RepoError> {
        let (_accounts, mut shard) = self.checked_shard(who, Role::Member, "request review", id)?;
        let record = shard
            .records
            .get_mut(id)
            .ok_or_else(|| RepoError::UnknownEntry(id.to_string()))?;
        if !record.status.can_move_to(EntryStatus::UnderReview) {
            return Err(RepoError::PermissionDenied {
                who: who.to_string(),
                action: format!("request review of `{id}` ({} already)", record.status),
                needs: "provisional status".to_string(),
            });
        }
        record.status = EntryStatus::UnderReview;
        self.record(RepoEvent::ReviewRequested(EntryRef { id: id.clone() }));
        Ok(())
    }

    /// A reviewer approves the entry: the version is promoted (0.x → 1.0,
    /// 1.x → 2.0) and the reviewer's name is recorded "in the interest of
    /// traceability and credit".
    pub fn approve(&self, reviewer: &str, id: &EntryId) -> Result<Version, RepoError> {
        let (_accounts, mut shard) =
            self.checked_shard(reviewer, Role::Reviewer, "approve entries", id)?;
        let record = shard
            .records
            .get_mut(id)
            .ok_or_else(|| RepoError::UnknownEntry(id.to_string()))?;
        if !record.status.can_move_to(EntryStatus::Approved) {
            return Err(RepoError::PermissionDenied {
                who: reviewer.to_string(),
                action: format!("approve `{id}` ({})", record.status),
                needs: "under-review status".to_string(),
            });
        }
        let latest = record.latest();
        if latest.authors.iter().any(|a| a == reviewer) {
            return Err(RepoError::PermissionDenied {
                who: reviewer.to_string(),
                action: format!("approve own entry `{id}`"),
                needs: "an independent reviewer".to_string(),
            });
        }
        let mut approved = latest.clone();
        approved.version = latest.version.promoted();
        if !approved.reviewers.iter().any(|r| r == reviewer) {
            approved.reviewers.push(reviewer.to_string());
        }
        let version = approved.version;
        record.history.push(approved.clone());
        record.status = EntryStatus::Approved;
        self.record(RepoEvent::Approved(EntryDelta {
            id: id.clone(),
            entry: approved,
        }));
        Ok(version)
    }

    /// A reviewer sends the entry back for changes.
    pub fn request_changes(&self, reviewer: &str, id: &EntryId) -> Result<(), RepoError> {
        let (_accounts, mut shard) =
            self.checked_shard(reviewer, Role::Reviewer, "request changes", id)?;
        let record = shard
            .records
            .get_mut(id)
            .ok_or_else(|| RepoError::UnknownEntry(id.to_string()))?;
        if record.status != EntryStatus::UnderReview {
            return Err(RepoError::PermissionDenied {
                who: reviewer.to_string(),
                action: format!("request changes on `{id}` ({})", record.status),
                needs: "under-review status".to_string(),
            });
        }
        record.status = EntryStatus::Provisional;
        self.record(RepoEvent::ChangesRequested(EntryRef { id: id.clone() }));
        Ok(())
    }

    /// The latest version of an entry.
    pub fn latest(&self, id: &EntryId) -> Result<ExampleEntry, RepoError> {
        self.shard_for(id)
            .read()
            .records
            .get(id)
            .map(|r| r.latest().clone())
            .ok_or_else(|| RepoError::UnknownEntry(id.to_string()))
    }

    /// A specific version of an entry (old references must keep working).
    pub fn at_version(&self, id: &EntryId, version: Version) -> Result<ExampleEntry, RepoError> {
        let shard = self.shard_for(id).read();
        let record = shard
            .records
            .get(id)
            .ok_or_else(|| RepoError::UnknownEntry(id.to_string()))?;
        record
            .history
            .iter()
            .find(|e| e.version == version)
            .cloned()
            .ok_or_else(|| RepoError::UnknownVersion {
                entry: id.to_string(),
                version: version.to_string(),
            })
    }

    /// All versions an entry has had, oldest first.
    pub fn versions(&self, id: &EntryId) -> Result<Vec<Version>, RepoError> {
        self.shard_for(id)
            .read()
            .records
            .get(id)
            .map(|r| r.history.iter().map(|e| e.version).collect())
            .ok_or_else(|| RepoError::UnknownEntry(id.to_string()))
    }

    /// Current workflow status.
    pub fn status(&self, id: &EntryId) -> Result<EntryStatus, RepoError> {
        self.shard_for(id)
            .read()
            .records
            .get(id)
            .map(|r| r.status)
            .ok_or_else(|| RepoError::UnknownEntry(id.to_string()))
    }

    /// All entry ids, sorted.
    pub fn ids(&self) -> Vec<EntryId> {
        let mut ids: Vec<EntryId> = self
            .shards
            .iter()
            .flat_map(|s| s.read().records.keys().cloned().collect::<Vec<_>>())
            .collect();
        ids.sort();
        ids
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().records.len()).sum()
    }

    /// True when the repository has no entries.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().records.is_empty())
    }

    /// A full point-in-time copy. All shard read guards are taken before
    /// any map is copied, so the snapshot is consistent even under
    /// concurrent mutation.
    pub fn snapshot(&self) -> RepositorySnapshot {
        let accounts = self.accounts.read();
        let guards: Vec<_> = self.shards.iter().map(|s| s.read()).collect();
        let mut records = BTreeMap::new();
        for guard in &guards {
            for (id, record) in &guard.records {
                records.insert(id.clone(), record.clone());
            }
        }
        RepositorySnapshot {
            name: self.name.clone(),
            records,
            accounts: accounts.clone(),
        }
    }

    /// Rebuild a repository from a snapshot (the restore direction of the
    /// persistence story). The journal starts empty: a restored repository
    /// owes downstream consumers only the deltas made *after* the restore.
    pub fn from_snapshot(snapshot: RepositorySnapshot) -> Repository {
        let shards = empty_shards(DEFAULT_SHARD_COUNT);
        for (id, record) in snapshot.records {
            let index = shard_index(&id, shards.len());
            shards[index].write().records.insert(id, record);
        }
        let journal = Arc::new(JournalSink::new(DEFAULT_JOURNAL_CAPACITY));
        Repository {
            name: snapshot.name,
            accounts: RwLock::new(snapshot.accounts),
            shards,
            journal: journal.clone(),
            sinks: RwLock::new(vec![journal]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::ExampleType;

    fn entry(title: &str, author: &str) -> ExampleEntry {
        ExampleEntry::builder(title)
            .of_type(ExampleType::Precise)
            .overview("An overview. Short.")
            .models("Models described here.")
            .consistency("Consistency described here.")
            .restoration("Forward fix.", "Backward fix.")
            .discussion("Some discussion.")
            .author(author)
            .build()
            .expect("valid entry")
    }

    fn repo() -> Repository {
        let r = Repository::found("bx-examples", vec![Principal::curator("curator")]);
        r.register(Principal::member("alice")).unwrap();
        r.register(Principal::member("bob")).unwrap();
        r.grant_role("curator", "bob", Role::Reviewer).unwrap();
        r
    }

    #[test]
    fn contribute_and_fetch() {
        let r = repo();
        let id = r.contribute("alice", entry("COMPOSERS", "alice")).unwrap();
        assert_eq!(id.as_str(), "composers");
        assert_eq!(id.page_name(), "examples:composers");
        let e = r.latest(&id).unwrap();
        assert_eq!(e.version, Version::initial());
        assert_eq!(r.status(&id).unwrap(), EntryStatus::Provisional);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn unregistered_cannot_contribute() {
        let r = repo();
        let e = r.contribute("mallory", entry("X Y", "mallory"));
        assert!(matches!(e, Err(RepoError::UnknownAccount(_))));
    }

    #[test]
    fn duplicate_titles_rejected() {
        let r = repo();
        r.contribute("alice", entry("COMPOSERS", "alice")).unwrap();
        let e = r.contribute("bob", entry("Composers", "bob"));
        assert!(
            matches!(e, Err(RepoError::DuplicateEntry(_))),
            "same slug must collide"
        );
    }

    #[test]
    fn invalid_entries_rejected_with_reasons() {
        let r = repo();
        let draft = ExampleEntry::builder("BAD").build_unchecked();
        match r.contribute("alice", draft) {
            Err(RepoError::InvalidEntry(problems)) => assert!(problems.len() >= 5),
            other => panic!("expected InvalidEntry, got {other:?}"),
        }
    }

    #[test]
    fn revision_bumps_version_and_keeps_history() {
        let r = repo();
        let id = r.contribute("alice", entry("COMPOSERS", "alice")).unwrap();
        let mut e2 = entry("COMPOSERS", "alice");
        e2.discussion = "Expanded discussion.".to_string();
        let v2 = r.revise("alice", &id, e2).unwrap();
        assert_eq!(v2, Version::new(0, 2));
        assert_eq!(
            r.versions(&id).unwrap(),
            vec![Version::new(0, 1), Version::new(0, 2)]
        );
        // The old version is still fetchable.
        let old = r.at_version(&id, Version::new(0, 1)).unwrap();
        assert_eq!(old.discussion, "Some discussion.");
    }

    #[test]
    fn only_authors_or_curators_revise() {
        let r = repo();
        let id = r.contribute("alice", entry("COMPOSERS", "alice")).unwrap();
        let e = r.revise("bob", &id, entry("COMPOSERS", "alice"));
        assert!(matches!(e, Err(RepoError::PermissionDenied { .. })));
        // Curators may.
        assert!(r
            .revise("curator", &id, entry("COMPOSERS", "alice"))
            .is_ok());
    }

    #[test]
    fn comments_accumulate_across_versions() {
        let r = repo();
        let id = r.contribute("alice", entry("COMPOSERS", "alice")).unwrap();
        r.comment("bob", &id, "2014-03-28", "What about name keys?")
            .unwrap();
        r.revise("alice", &id, entry("COMPOSERS", "alice")).unwrap();
        let latest = r.latest(&id).unwrap();
        assert_eq!(latest.comments.len(), 1);
        assert_eq!(latest.comments[0].author, "bob");
    }

    #[test]
    fn full_review_workflow() {
        let r = repo();
        let id = r.contribute("alice", entry("COMPOSERS", "alice")).unwrap();
        // Cannot approve before review requested.
        assert!(r.approve("bob", &id).is_err());
        r.request_review("alice", &id).unwrap();
        assert_eq!(r.status(&id).unwrap(), EntryStatus::UnderReview);
        let v = r.approve("bob", &id).unwrap();
        assert_eq!(v, Version::new(1, 0));
        assert_eq!(r.status(&id).unwrap(), EntryStatus::Approved);
        let e = r.latest(&id).unwrap();
        assert!(e.version.is_reviewed());
        assert_eq!(e.reviewers, vec!["bob".to_string()]);
        // Old provisional version still available.
        assert!(r.at_version(&id, Version::new(0, 1)).is_ok());
    }

    #[test]
    fn members_cannot_approve() {
        let r = repo();
        let id = r.contribute("alice", entry("COMPOSERS", "alice")).unwrap();
        r.request_review("alice", &id).unwrap();
        let e = r.approve("alice", &id);
        assert!(matches!(e, Err(RepoError::PermissionDenied { .. })));
    }

    #[test]
    fn authors_cannot_review_own_entries() {
        let r = repo();
        r.register(Principal::member("carol")).unwrap();
        r.grant_role("curator", "carol", Role::Reviewer).unwrap();
        let id = r.contribute("carol", entry("SELFIE", "carol")).unwrap();
        r.request_review("carol", &id).unwrap();
        let e = r.approve("carol", &id);
        assert!(matches!(e, Err(RepoError::PermissionDenied { .. })));
    }

    #[test]
    fn request_changes_returns_to_provisional() {
        let r = repo();
        let id = r.contribute("alice", entry("COMPOSERS", "alice")).unwrap();
        r.request_review("alice", &id).unwrap();
        r.request_changes("bob", &id).unwrap();
        assert_eq!(r.status(&id).unwrap(), EntryStatus::Provisional);
    }

    #[test]
    fn self_registration_is_member_only() {
        let r = repo();
        r.register(Principal::curator("sneaky")).unwrap();
        assert_eq!(r.account("sneaky").unwrap().role, Role::Member);
    }

    #[test]
    fn only_curators_grant_roles() {
        let r = repo();
        let e = r.grant_role("bob", "alice", Role::Reviewer);
        assert!(matches!(e, Err(RepoError::PermissionDenied { .. })));
    }

    #[test]
    fn snapshot_roundtrip() {
        let r = repo();
        let id = r.contribute("alice", entry("COMPOSERS", "alice")).unwrap();
        let snap = r.snapshot();
        let r2 = Repository::from_snapshot(snap.clone());
        assert_eq!(r2.latest(&id).unwrap(), r.latest(&id).unwrap());
        assert_eq!(r2.snapshot(), snap);
    }

    #[test]
    fn approval_after_re_review_promotes_major() {
        let r = repo();
        let id = r.contribute("alice", entry("COMPOSERS", "alice")).unwrap();
        r.request_review("alice", &id).unwrap();
        r.approve("bob", &id).unwrap(); // 1.0
        let mut e2 = entry("COMPOSERS", "alice");
        e2.discussion = "Post-1.0 revision.".to_string();
        let v = r.revise("alice", &id, e2).unwrap();
        assert_eq!(v, Version::new(1, 1));
        r.request_review("alice", &id).unwrap();
        let v = r.approve("bob", &id).unwrap();
        assert_eq!(v, Version::new(2, 0));
    }

    #[test]
    fn shard_count_does_not_change_behaviour() {
        for shards in [1, 3, 16, 64] {
            let r = Repository::with_shards("bx", vec![Principal::curator("curator")], shards);
            assert_eq!(r.shard_count(), shards);
            r.register(Principal::member("alice")).unwrap();
            let mut ids = Vec::new();
            for i in 0..20 {
                ids.push(
                    r.contribute("alice", entry(&format!("ENTRY {i}"), "alice"))
                        .unwrap(),
                );
            }
            assert_eq!(r.len(), 20);
            assert_eq!(r.ids(), {
                let mut sorted = ids.clone();
                sorted.sort();
                sorted
            });
            // The snapshot merges shards back into one ordered map.
            let snap = r.snapshot();
            assert_eq!(snap.records.len(), 20);
            assert!(snap.records.keys().zip(r.ids().iter()).all(|(a, b)| a == b));
        }
    }

    /// A sink that records everything it is pushed, for bus tests.
    struct Tape(Mutex<Vec<RepoEvent>>);

    impl EventSink for Tape {
        fn accept(&self, event: &RepoEvent) {
            self.0.lock().push(event.clone());
        }
    }

    #[test]
    fn subscribed_sinks_receive_events_at_commit_time() {
        let r = repo();
        let before = r.drain_events();
        assert!(before.len() >= 4, "founding + cast events were journaled");
        let tape = Arc::new(Tape(Mutex::new(Vec::new())));
        assert_eq!(r.sink_count(), 1, "journal only");
        r.subscribe(tape.clone());
        assert_eq!(r.sink_count(), 2);

        let id = r.contribute("alice", entry("COMPOSERS", "alice")).unwrap();
        r.comment("bob", &id, "2014-03-28", "pushed?").unwrap();
        // Failed mutations must push nothing.
        assert!(r.contribute("ghost", entry("X Y", "ghost")).is_err());

        let pushed = tape.0.lock().clone();
        let drained = r.drain_events();
        assert_eq!(pushed.len(), 2, "subscription is forward-only");
        assert_eq!(pushed, drained, "journal and push sink agree");
    }

    #[test]
    fn unsubscribe_stops_delivery_and_releases_the_sink() {
        let r = repo();
        r.drain_events();
        let tape = Arc::new(Tape(Mutex::new(Vec::new())));
        let sink: Arc<dyn EventSink> = tape.clone();
        r.subscribe(sink.clone());
        assert_eq!(r.sink_count(), 2);
        assert_eq!(Arc::strong_count(&tape), 3, "caller ×2 + bus");

        let id = r.contribute("alice", entry("COMPOSERS", "alice")).unwrap();
        assert_eq!(tape.0.lock().len(), 1);

        assert!(r.unsubscribe(&sink), "the sink was subscribed");
        assert_eq!(r.sink_count(), 1, "journal only");
        assert_eq!(
            Arc::strong_count(&tape),
            2,
            "the bus released its Arc — no leak"
        );
        // A dropped subscriber stops receiving events.
        r.comment("bob", &id, "2014-03-28", "after unsubscribe")
            .unwrap();
        assert_eq!(tape.0.lock().len(), 1, "no delivery after unsubscribe");
        // Unsubscribing again (or a never-subscribed sink) is a no-op.
        assert!(!r.unsubscribe(&sink));
        let stranger: Arc<dyn EventSink> = Arc::new(Tape(Mutex::new(Vec::new())));
        assert!(!r.unsubscribe(&stranger));
        drop(sink);
        assert_eq!(Arc::strong_count(&tape), 1, "only the test holds it now");
    }

    #[test]
    fn journal_is_bounded_and_counts_overflow() {
        let r = repo();
        r.drain_events();
        r.set_journal_capacity(3);
        let id = r.contribute("alice", entry("COMPOSERS", "alice")).unwrap();
        for i in 0..5 {
            r.comment("bob", &id, "2014-03-28", &format!("c{i}"))
                .unwrap();
        }
        assert_eq!(r.journal_len(), 3, "buffer capped");
        assert_eq!(r.journal_overflow(), 3, "1 contribute + 5 comments, 3 kept");
        // The repository itself lost nothing — only the journal tail.
        assert_eq!(r.latest(&id).unwrap().comments.len(), 5);
        // Push sinks are not subject to the journal cap.
        let tape = Arc::new(Tape(Mutex::new(Vec::new())));
        r.subscribe(tape.clone());
        r.comment("bob", &id, "2014-03-28", "late").unwrap();
        assert_eq!(tape.0.lock().len(), 1);
        assert_eq!(r.journal_overflow(), 4);
        // Draining surfaces the per-batch gap signal and resets it, while
        // the lifetime diagnostic keeps counting.
        let (batch, dropped) = r.drain_events_with_overflow();
        assert_eq!(batch.len(), 3);
        assert_eq!(dropped, 4, "this batch is gapped");
        assert_eq!(r.journal_len(), 0);
        assert_eq!(r.journal_overflow(), 4, "lifetime total unaffected");
        // The next batch is clean: one overflow does not condemn forever.
        r.comment("bob", &id, "2014-03-29", "clean").unwrap();
        let (batch, dropped) = r.drain_events_with_overflow();
        assert_eq!((batch.len(), dropped), (1, 0));
    }

    #[test]
    fn capacity_zero_disables_the_journal_for_push_only_use() {
        let r = repo();
        r.drain_events();
        r.set_journal_capacity(0);
        let tape = Arc::new(Tape(Mutex::new(Vec::new())));
        r.subscribe(tape.clone());
        let id = r.contribute("alice", entry("COMPOSERS", "alice")).unwrap();
        r.comment("bob", &id, "2014-03-28", "push-only").unwrap();
        // Push sinks get everything; the journal buffers nothing and a
        // disabled journal is not "overflowing" — no spurious warning
        // or gap accounting for a documented push-only deployment.
        assert_eq!(tape.0.lock().len(), 2);
        assert_eq!(r.journal_len(), 0);
        assert_eq!(r.journal_overflow(), 0);
        assert_eq!(r.drain_events_with_overflow(), (Vec::new(), 0));
    }

    #[test]
    fn subscribe_with_backfill_delivers_pending_history_exactly_once() {
        let r = repo();
        let id = r.contribute("alice", entry("COMPOSERS", "alice")).unwrap();
        let pending = r.journal_len();
        assert!(pending >= 5, "founding + cast + contribute are pending");

        let tape = Arc::new(Tape(Mutex::new(Vec::new())));
        let backfilled = r.subscribe_with_backfill(tape.clone());
        assert_eq!(backfilled, pending);
        // The journal was copied, not drained: its consumer still gets
        // the same batch.
        assert_eq!(r.journal_len(), pending);

        // Post-subscription events flow once; together with the backfill
        // the tape holds exactly the full journal history.
        r.comment("bob", &id, "2014-03-28", "after").unwrap();
        let drained = r.drain_events();
        assert_eq!(tape.0.lock().clone(), drained);
        // Replaying the tape reconstructs the live state — nothing was
        // missed or double-delivered.
        let replayed = crate::event::replay(RepositorySnapshot::empty(""), &tape.0.lock());
        assert_eq!(replayed, r.snapshot());
    }

    #[test]
    fn concurrent_contributions_land_on_distinct_shards() {
        let r = std::sync::Arc::new(Repository::found("bx", vec![Principal::curator("curator")]));
        r.register(Principal::member("alice")).unwrap();
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for i in 0..16 {
                        r.contribute("alice", entry(&format!("T{t} N{i}"), "alice"))
                            .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.len(), 8 * 16);
        // Replaying the concurrent journal reproduces the live state:
        // events on distinct entries commute, per-entry order is preserved.
        let events = r.drain_events();
        let replayed = crate::event::replay(RepositorySnapshot::empty(""), &events);
        assert_eq!(replayed, r.snapshot());
    }
}
