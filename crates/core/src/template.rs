//! The standard entry template (§3 of the paper).
//!
//! Fields and their order follow the paper exactly; optional fields
//! (marked `?` in the paper) may be empty. [`ExampleEntry::validate`]
//! enforces the paper's side conditions: required fields "should be
//! present, even if brief", the Overview is "not more than two or three
//! sentences", and PRECISE and SKETCH "should be mutually exclusive" while
//! either "might be combined with INDUSTRIAL".

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

use bx_theory::Claim;

use crate::version::Version;

/// The class an example belongs to ("Type" in the template). The paper
/// names PRECISE, INDUSTRIAL and SKETCH and, following Anjorin et al.
/// (BenchmarX, same volume), treats benchmarks as a distinct class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ExampleType {
    /// Small, defined precisely, formalism-independent.
    Precise,
    /// Industrial-scale, explained through its artefacts.
    Industrial,
    /// A situation where a bx would clearly apply, details not worked out.
    Sketch,
    /// A benchmark in the BenchmarX sense.
    Benchmark,
}

impl ExampleType {
    /// All types, in display order.
    pub const ALL: [ExampleType; 4] = [
        ExampleType::Precise,
        ExampleType::Industrial,
        ExampleType::Sketch,
        ExampleType::Benchmark,
    ];
}

impl fmt::Display for ExampleType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ExampleType::Precise => "PRECISE",
            ExampleType::Industrial => "INDUSTRIAL",
            ExampleType::Sketch => "SKETCH",
            ExampleType::Benchmark => "BENCHMARK",
        };
        write!(f, "{s}")
    }
}

impl FromStr for ExampleType {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_uppercase().as_str() {
            "PRECISE" => Ok(ExampleType::Precise),
            "INDUSTRIAL" => Ok(ExampleType::Industrial),
            "SKETCH" => Ok(ExampleType::Sketch),
            "BENCHMARK" => Ok(ExampleType::Benchmark),
            other => Err(format!("unknown example type `{other}`")),
        }
    }
}

/// Forward/backward halves of the Consistency Restoration field.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RestorationSpec {
    /// How forward restoration repairs the target model.
    pub forward: String,
    /// How backward restoration repairs the source model.
    pub backward: String,
}

/// A variation point (the Variants? field): a place where more than one
/// choice is reasonable; the base example fixes one, variants are
/// described here.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VariantPoint {
    /// A short name for the choice point.
    pub name: String,
    /// The choices and their consequences.
    pub description: String,
}

/// A bibliographic reference (the References? field).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Reference {
    /// Free-form citation text.
    pub citation: String,
    /// DOI, if known.
    pub doi: Option<String>,
}

/// The kind of an attached artefact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArtefactKind {
    /// Executable code.
    Code,
    /// A diagram suitable for papers and talks.
    Diagram,
    /// Sample inputs and outputs.
    SampleData,
    /// A machine-checked proof script.
    ProofScript,
    /// A virtual machine instance.
    VmImage,
    /// Anything else.
    Other,
}

impl fmt::Display for ArtefactKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArtefactKind::Code => "code",
            ArtefactKind::Diagram => "diagram",
            ArtefactKind::SampleData => "sample-data",
            ArtefactKind::ProofScript => "proof-script",
            ArtefactKind::VmImage => "vm-image",
            ArtefactKind::Other => "other",
        };
        write!(f, "{s}")
    }
}

impl FromStr for ArtefactKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "code" => Ok(ArtefactKind::Code),
            "diagram" => Ok(ArtefactKind::Diagram),
            "sample-data" => Ok(ArtefactKind::SampleData),
            "proof-script" => Ok(ArtefactKind::ProofScript),
            "vm-image" => Ok(ArtefactKind::VmImage),
            "other" => Ok(ArtefactKind::Other),
            other => Err(format!("unknown artefact kind `{other}`")),
        }
    }
}

/// An attached artefact (the Artefacts? field).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Artefact {
    /// Short name.
    pub name: String,
    /// What it is.
    pub kind: ArtefactKind,
    /// Where it lives (path, URL, or module path for executable entries).
    pub location: String,
}

/// A community comment (the Comments field; any wiki member may add one).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Comment {
    /// The commenting account.
    pub author: String,
    /// ISO date the comment was made.
    pub date: String,
    /// Comment text.
    pub text: String,
}

/// A complete repository entry, following the §3 template field-for-field.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExampleEntry {
    /// Title — "a descriptive name, such as COMPOSERS".
    pub title: String,
    /// Version — 0.x for unreviewed examples.
    pub version: Version,
    /// Type(s) — PRECISE, INDUSTRIAL, SKETCH, BENCHMARK.
    pub types: Vec<ExampleType>,
    /// Overview — a thumbnail description, two or three sentences.
    pub overview: String,
    /// Models — descriptions of the model classes.
    pub models: String,
    /// Consistency — the consistency relation, at least in English.
    pub consistency: String,
    /// Consistency Restoration — how inconsistencies are repaired.
    pub restoration: RestorationSpec,
    /// Properties? — claims linking to the glossary.
    pub properties: Vec<Claim>,
    /// Variants? — variation points of the base example.
    pub variants: Vec<VariantPoint>,
    /// Discussion — origin, utility, interest, related examples.
    pub discussion: String,
    /// References? — bibliographic data.
    pub references: Vec<Reference>,
    /// Authors — contributing author(s) of the entry.
    pub authors: Vec<String>,
    /// Reviewers? — named reviewers once reviewed.
    pub reviewers: Vec<String>,
    /// Comments — community commentary.
    pub comments: Vec<Comment>,
    /// Artefacts? — attached formal descriptions, code, diagrams.
    pub artefacts: Vec<Artefact>,
}

impl ExampleEntry {
    /// Start building an entry.
    pub fn builder(title: &str) -> EntryBuilder {
        EntryBuilder {
            entry: ExampleEntry {
                title: title.to_string(),
                version: Version::initial(),
                types: Vec::new(),
                overview: String::new(),
                models: String::new(),
                consistency: String::new(),
                restoration: RestorationSpec::default(),
                properties: Vec::new(),
                variants: Vec::new(),
                discussion: String::new(),
                references: Vec::new(),
                authors: Vec::new(),
                reviewers: Vec::new(),
                comments: Vec::new(),
                artefacts: Vec::new(),
            },
        }
    }

    /// Validate against the template's side conditions. Returns every
    /// problem found (empty = valid).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.title.trim().is_empty() {
            problems.push("title must be present".to_string());
        }
        if self.types.is_empty() {
            problems.push("at least one Type is required".to_string());
        }
        if self.types.contains(&ExampleType::Precise) && self.types.contains(&ExampleType::Sketch) {
            problems.push("PRECISE and SKETCH are mutually exclusive".to_string());
        }
        if self.overview.trim().is_empty() {
            problems.push("overview must be present, even if brief".to_string());
        }
        // "not more than two or three sentences": flag clearly oversized
        // overviews (sentence counting is approximate by design).
        let sentences = self.overview.matches(['.', '!', '?']).count();
        if sentences > 5 {
            problems.push(format!(
                "overview should be a thumbnail (two or three sentences), found ~{sentences}"
            ));
        }
        if self.models.trim().is_empty() {
            problems.push("models description must be present".to_string());
        }
        if self.consistency.trim().is_empty() {
            problems.push("consistency description must be present".to_string());
        }
        if self.restoration.forward.trim().is_empty() && self.restoration.backward.trim().is_empty()
        {
            problems.push("consistency restoration must be described".to_string());
        }
        if self.discussion.trim().is_empty() {
            problems.push("discussion must be present".to_string());
        }
        if self.authors.is_empty() {
            problems.push("at least one author is required".to_string());
        }
        if self.version.is_reviewed() && self.reviewers.is_empty() {
            problems.push("reviewed versions (>= 1.0) must name their reviewers".to_string());
        }
        problems
    }

    /// The stable identifier derived from the title: lowercase, runs of
    /// non-alphanumerics collapsed to `-`.
    pub fn slug(&self) -> String {
        slug_of(&self.title)
    }
}

/// Derive a stable slug from a title.
pub fn slug_of(title: &str) -> String {
    let mut out = String::with_capacity(title.len());
    let mut dash_pending = false;
    for c in title.chars() {
        if c.is_ascii_alphanumeric() {
            if dash_pending && !out.is_empty() {
                out.push('-');
            }
            dash_pending = false;
            out.push(c.to_ascii_lowercase());
        } else {
            dash_pending = true;
        }
    }
    out
}

/// Fluent builder for [`ExampleEntry`].
pub struct EntryBuilder {
    entry: ExampleEntry,
}

impl EntryBuilder {
    /// Add a Type.
    pub fn of_type(mut self, t: ExampleType) -> Self {
        self.entry.types.push(t);
        self
    }

    /// Set the Overview.
    pub fn overview(mut self, text: &str) -> Self {
        self.entry.overview = text.to_string();
        self
    }

    /// Set the Models description.
    pub fn models(mut self, text: &str) -> Self {
        self.entry.models = text.to_string();
        self
    }

    /// Set the Consistency description.
    pub fn consistency(mut self, text: &str) -> Self {
        self.entry.consistency = text.to_string();
        self
    }

    /// Set the restoration descriptions.
    pub fn restoration(mut self, forward: &str, backward: &str) -> Self {
        self.entry.restoration = RestorationSpec {
            forward: forward.to_string(),
            backward: backward.to_string(),
        };
        self
    }

    /// Add a property claim.
    pub fn property(mut self, claim: Claim) -> Self {
        self.entry.properties.push(claim);
        self
    }

    /// Add a variation point.
    pub fn variant(mut self, name: &str, description: &str) -> Self {
        self.entry.variants.push(VariantPoint {
            name: name.to_string(),
            description: description.to_string(),
        });
        self
    }

    /// Set the Discussion.
    pub fn discussion(mut self, text: &str) -> Self {
        self.entry.discussion = text.to_string();
        self
    }

    /// Add a reference.
    pub fn reference(mut self, citation: &str, doi: Option<&str>) -> Self {
        self.entry.references.push(Reference {
            citation: citation.to_string(),
            doi: doi.map(str::to_string),
        });
        self
    }

    /// Add an author.
    pub fn author(mut self, name: &str) -> Self {
        self.entry.authors.push(name.to_string());
        self
    }

    /// Attach an artefact.
    pub fn artefact(mut self, name: &str, kind: ArtefactKind, location: &str) -> Self {
        self.entry.artefacts.push(Artefact {
            name: name.to_string(),
            kind,
            location: location.to_string(),
        });
        self
    }

    /// Finish, validating the template side conditions.
    pub fn build(self) -> Result<ExampleEntry, crate::error::RepoError> {
        let problems = self.entry.validate();
        if problems.is_empty() {
            Ok(self.entry)
        } else {
            Err(crate::error::RepoError::InvalidEntry(problems))
        }
    }

    /// Finish without validation (for deliberately incomplete drafts and
    /// for tests of the validator itself).
    pub fn build_unchecked(self) -> ExampleEntry {
        self.entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bx_theory::Property;

    fn minimal() -> EntryBuilder {
        ExampleEntry::builder("COMPOSERS")
            .of_type(ExampleType::Precise)
            .overview(
                "Two representations of composers. Consistency is easy; restoration has choices.",
            )
            .models("A set of composers vs an ordered list of (name, nationality) pairs.")
            .consistency("Same set of (name, nationality) pairs on both sides.")
            .restoration(
                "Delete stale entries, append missing pairs.",
                "Delete stale composers, add new ones with unknown dates.",
            )
            .discussion("Classic witness that undoability is too strong.")
            .author("Perdita Stevens")
    }

    #[test]
    fn valid_entry_builds() {
        let e = minimal().build().expect("minimal entry is valid");
        assert_eq!(e.title, "COMPOSERS");
        assert_eq!(e.version, Version::initial());
        assert!(e.validate().is_empty());
    }

    #[test]
    fn missing_fields_all_reported() {
        let e = ExampleEntry::builder("X").build_unchecked();
        let problems = e.validate();
        assert!(problems.iter().any(|p| p.contains("Type")));
        assert!(problems.iter().any(|p| p.contains("overview")));
        assert!(problems.iter().any(|p| p.contains("models")));
        assert!(problems.iter().any(|p| p.contains("consistency")));
        assert!(problems.iter().any(|p| p.contains("restoration")));
        assert!(problems.iter().any(|p| p.contains("discussion")));
        assert!(problems.iter().any(|p| p.contains("author")));
    }

    #[test]
    fn precise_and_sketch_exclusive() {
        let e = minimal().of_type(ExampleType::Sketch).build_unchecked();
        assert!(e
            .validate()
            .iter()
            .any(|p| p.contains("mutually exclusive")));
        // But PRECISE + INDUSTRIAL is fine.
        let e = minimal().of_type(ExampleType::Industrial).build_unchecked();
        assert!(e.validate().is_empty());
    }

    #[test]
    fn oversized_overview_flagged() {
        let long = "Sentence. ".repeat(10);
        let e = minimal().overview(&long).build_unchecked();
        assert!(e.validate().iter().any(|p| p.contains("thumbnail")));
    }

    #[test]
    fn reviewed_needs_reviewers() {
        let mut e = minimal().build().unwrap();
        e.version = Version::new(1, 0);
        assert!(e.validate().iter().any(|p| p.contains("reviewers")));
        e.reviewers.push("James Cheney".to_string());
        assert!(e.validate().is_empty());
    }

    #[test]
    fn slugs_are_stable_identifiers() {
        assert_eq!(slug_of("COMPOSERS"), "composers");
        assert_eq!(slug_of("UML to RDBMS"), "uml-to-rdbms");
        assert_eq!(slug_of("  Weird -- Title!! "), "weird-title");
        let e = minimal().build().unwrap();
        assert_eq!(e.slug(), "composers");
    }

    #[test]
    fn type_and_artefact_kind_roundtrip() {
        for t in ExampleType::ALL {
            assert_eq!(t.to_string().parse::<ExampleType>().unwrap(), t);
        }
        for k in [
            ArtefactKind::Code,
            ArtefactKind::Diagram,
            ArtefactKind::SampleData,
            ArtefactKind::ProofScript,
            ArtefactKind::VmImage,
            ArtefactKind::Other,
        ] {
            assert_eq!(k.to_string().parse::<ArtefactKind>().unwrap(), k);
        }
        assert!("NONSENSE".parse::<ExampleType>().is_err());
    }

    #[test]
    fn builder_populates_optional_fields() {
        let e = minimal()
            .property(Claim::holds(Property::Correct))
            .variant("insert position", "beginning or end of the list")
            .reference("Stevens 2008", Some("10.1007/978-3-540-75209-7_1"))
            .artefact("rust impl", ArtefactKind::Code, "bx_examples::composers")
            .build()
            .unwrap();
        assert_eq!(e.properties.len(), 1);
        assert_eq!(e.variants.len(), 1);
        assert_eq!(e.references.len(), 1);
        assert_eq!(e.artefacts.len(), 1);
    }
}
