//! # bx-core — the curated repository of bx examples
//!
//! An executable realisation of Cheney, McKinna, Stevens & Gibbons,
//! *"Towards a Repository of Bx Examples"* (BX 2014): the repository
//! itself, as a library.
//!
//! * [`template`] — the standard entry template of §3 (Title, Version,
//!   Type, Overview, Models, Consistency, Consistency Restoration,
//!   Properties?, Variants?, Discussion, References?, Authors,
//!   Reviewers?, Comments, Artefacts?), with validation of the paper's
//!   side conditions (e.g. PRECISE and SKETCH are mutually exclusive);
//! * [`version`] — linear version numbering: `0.x` while provisional,
//!   `≥ 1.0` once reviewed; old versions are never discarded;
//! * [`principal`] / [`curation`] — the three-level curatorial structure
//!   of §5.1: registered members may comment, named reviewers approve,
//!   curators control the repository;
//! * [`repo`] — the repository: stable identifiers, full version history,
//!   permission-checked workflows over a lock-striped sharded store;
//! * [`event`] — the typed change-event stream every mutation records,
//!   pushed at commit time to every subscribed [`event::EventSink`];
//!   downstream layers consume these deltas instead of whole snapshots;
//! * [`pipeline`] — the background durability pipeline: a writer thread
//!   behind a bounded channel drains events into any storage backend,
//!   with explicit flush and drop-shutdown semantics;
//! * [`replica`] — read replicas that tail a shipped event-log directory
//!   and incrementally maintain their own snapshot, search index and
//!   wiki site; [`replica::Federation`] fans N independent primaries into
//!   one namespaced merged node, and [`replica::ReplicaDaemon`] polls it
//!   on a background thread with clean start/stop and lag stats;
//! * [`runtime`] — the shared worker pool behind the parallel restore
//!   pipeline (chunked decode, sharded replay, parallel derived-state
//!   rebuild), sized by the machine's available parallelism;
//! * [`cite`] — citation formats for entries and the repository (§5.2);
//! * [`index`] — keyword search with type/property filters (§5.2
//!   findability);
//! * [`wiki`] — the wiki hosting model: pages with retained revisions,
//!   rendering entries to wiki markup and parsing them back;
//! * [`wiki_bx`] — §5.4 dogfooded: consistency between the structured
//!   repository and its wiki rendering maintained by a bidirectional
//!   transformation built on `bx-theory`;
//! * [`manuscript`] — the archival "citable technical report" export of
//!   §5.2;
//! * [`persist`] — the wiki-markup-independent persistent form (JSON);
//! * [`storage`] — pluggable persistence behind [`storage::StorageBackend`]:
//!   in-memory, legacy JSON file, and an append-only event log with
//!   snapshot+replay recovery;
//! * [`supervise`] — per-source fault supervision for the federation:
//!   circuit-breaker health states, deterministic retry/backoff, and
//!   quarantine-and-salvage recovery from corruption.

pub mod binlog;
pub mod cite;
pub mod curation;
pub mod error;
pub mod event;
pub mod index;
pub mod manuscript;
pub mod persist;
pub mod pipeline;
pub mod principal;
pub mod replica;
pub mod repo;
pub mod runtime;
pub mod storage;
pub mod supervise;
pub mod template;
pub mod version;
pub mod wiki;
pub mod wiki_bx;

pub use binlog::BinaryLogBackend;
pub use curation::EntryStatus;
pub use error::RepoError;
pub use event::{EventSink, RepoEvent};
pub use manuscript::{export_manuscript, ManuscriptOptions};
pub use pipeline::{BackgroundWriter, HealthSink, PipelineConfig, PipelineHealth, PipelineStats};
pub use principal::{Principal, Role};
pub use replica::{
    federate_snapshots, DaemonConfig, DaemonStats, Federation, Replica, ReplicaDaemon, SourceId,
};
pub use repo::{EntryId, Repository};
pub use runtime::{
    ComponentHealth, HealthReport, HealthSink as RuntimeHealthSink, PoolStats, RestoreOptions,
    Runtime, RuntimeHealth, SerialTask, TimerTask, WeakSerialTask, WorkerPool,
};
pub use storage::{
    AutoCompactingBinaryLog, AutoCompactingEventLog, CompactionPolicy, DurabilityMode,
    EventLogBackend, FsyncStats, GenerationLog, JsonFileBackend, MemoryBackend, StorageBackend,
    TailRepaired,
};
pub use supervise::{RecoveryPolicy, RetryPolicy, SalvageReport, SourceHealth, SourceStatus};
pub use template::{
    Artefact, ArtefactKind, Comment, EntryBuilder, ExampleEntry, ExampleType, Reference,
    RestorationSpec, VariantPoint,
};
pub use version::Version;
pub use wiki::WikiSite;

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared helpers for bx-core's own unit tests.

    use std::path::PathBuf;

    /// A fresh, pre-cleaned, per-process-and-call temp directory (not
    /// created — the backends under test create it themselves). Mirrors
    /// `bx_testkit::ops::unique_temp_dir`, which unit tests here cannot
    /// use because bx-testkit depends on bx-core.
    pub(crate) fn unique_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "bx-core-test-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }
}
