//! The background durability pipeline: a writer thread fed by a bounded
//! channel, draining committed [`RepoEvent`]s into any
//! [`StorageBackend`].
//!
//! [`BackgroundWriter`] is an [`EventSink`]: subscribe it to a
//! [`crate::repo::Repository`] and persistence leaves the mutating
//! caller's thread — `contribute`/`revise`/… return as soon as the event
//! is *enqueued*; the writer thread batches queued events and calls
//! `StorageBackend::record` off to the side. Three properties define the
//! pipeline:
//!
//! * **Bounded, with backpressure.** The channel holds at most
//!   [`PipelineConfig::channel_capacity`] events. When it is full,
//!   `accept` blocks the mutating caller until the writer catches up —
//!   durability lag is bounded by the channel, never unbounded memory.
//!   Every such stall is counted ([`PipelineStats::backpressure_waits`]).
//! * **Explicit flush.** [`BackgroundWriter::flush`] blocks until every
//!   event enqueued before the call is durably recorded (or the writer
//!   has failed), surfacing any backend error. Write errors are sticky:
//!   after one, subsequent events are discarded (counted in
//!   [`PipelineStats::dropped`]) rather than blocking writers forever,
//!   and every later `flush`/`shutdown` keeps returning the error.
//! * **Drop-shutdown.** Dropping the writer (or calling
//!   [`BackgroundWriter::shutdown`]) drains the queue to the backend and
//!   joins the thread, so a scope exit cannot lose acknowledged events.
//!
//! The backend is moved into the writer thread. For the scaling backend
//! ([`crate::storage::EventLogBackend`]), wrap it in
//! [`crate::storage::AutoCompactingEventLog`] first and the pipeline
//! checkpoints/prunes as it writes.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::error::RepoError;
use crate::event::{EventSink, RepoEvent};
use crate::storage::StorageBackend;

/// Default bound on the writer's input channel, in events.
pub const DEFAULT_CHANNEL_CAPACITY: usize = 1024;

/// Default maximum events handed to one `StorageBackend::record` call.
pub const DEFAULT_WRITE_BATCH: usize = 256;

/// Tuning knobs for a [`BackgroundWriter`].
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Channel bound: how many events may sit between the writers and the
    /// backend before `accept` applies backpressure.
    pub channel_capacity: usize,
    /// Largest batch handed to a single `record` call (amortises per-call
    /// fsync cost without starving flush waiters).
    pub write_batch: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            channel_capacity: DEFAULT_CHANNEL_CAPACITY,
            write_batch: DEFAULT_WRITE_BATCH,
        }
    }
}

/// Backpressure and progress accounting, readable at any time via
/// [`BackgroundWriter::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Events accepted into the channel.
    pub enqueued: u64,
    /// Events durably recorded by the backend.
    pub durable: u64,
    /// Events discarded because the writer had already failed.
    pub dropped: u64,
    /// How many times an `accept` blocked on a full channel.
    pub backpressure_waits: u64,
}

/// Everything the producer side and the writer thread share.
struct Shared {
    state: Mutex<State>,
    /// Signalled when queue space frees up.
    not_full: Condvar,
    /// Signalled when events arrive (or shutdown is requested).
    not_empty: Condvar,
    /// Signalled when `durable` advances or the writer fails.
    progress: Condvar,
}

struct State {
    queue: VecDeque<RepoEvent>,
    capacity: usize,
    shutdown: bool,
    /// First backend error, stringified; sticky once set.
    error: Option<String>,
    stats: PipelineStats,
}

/// The background durability pipeline's front end; see the module docs.
pub struct BackgroundWriter {
    shared: Arc<Shared>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for BackgroundWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("BackgroundWriter")
            .field("stats", &stats)
            .finish()
    }
}

fn lock(shared: &Shared) -> std::sync::MutexGuard<'_, State> {
    shared.state.lock().unwrap_or_else(|e| e.into_inner())
}

impl BackgroundWriter {
    /// Spawn a writer thread around `backend` with default tuning.
    pub fn spawn<B: StorageBackend + Send + 'static>(backend: B) -> BackgroundWriter {
        BackgroundWriter::with_config(backend, PipelineConfig::default())
    }

    /// Spawn a writer thread around `backend` with explicit tuning.
    pub fn with_config<B: StorageBackend + Send + 'static>(
        backend: B,
        config: PipelineConfig,
    ) -> BackgroundWriter {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                capacity: config.channel_capacity.max(1),
                shutdown: false,
                error: None,
                stats: PipelineStats::default(),
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            progress: Condvar::new(),
        });
        let thread_shared = shared.clone();
        let batch_max = config.write_batch.max(1);
        let handle = std::thread::Builder::new()
            .name("bx-durability".to_string())
            .spawn(move || writer_loop(thread_shared, backend, batch_max))
            .expect("the durability writer thread spawns");
        BackgroundWriter {
            shared,
            handle: Mutex::new(Some(handle)),
        }
    }

    /// Enqueue a batch directly — the backfill path for events that
    /// happened *before* the writer was subscribed (e.g. the output of
    /// [`crate::repo::Repository::drain_events`]). Same backpressure and
    /// error semantics as sink delivery.
    pub fn enqueue(&self, events: &[RepoEvent]) {
        for event in events {
            self.accept(event);
        }
    }

    /// Block until every event enqueued before this call is durably
    /// recorded, then report the writer's health. Any discarded event
    /// fails the flush: a backend error and a post-shutdown delivery
    /// both plant a sticky error, so `Ok(())` really means "everything
    /// accepted so far is on the backend".
    pub fn flush(&self) -> Result<(), RepoError> {
        let mut state = lock(&self.shared);
        let target = state.stats.enqueued;
        while state.error.is_none() && state.stats.durable + state.stats.dropped < target {
            state = self
                .shared
                .progress
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
        match &state.error {
            Some(e) => Err(RepoError::Persist(e.clone())),
            None => Ok(()),
        }
    }

    /// Drain the queue, stop the writer thread and join it, returning the
    /// writer's final health. Idempotent; also run (result ignored) by
    /// `Drop`.
    pub fn shutdown(&self) -> Result<(), RepoError> {
        {
            let mut state = lock(&self.shared);
            state.shutdown = true;
            self.shared.not_empty.notify_all();
            self.shared.not_full.notify_all();
        }
        let handle = self.handle.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
        match &lock(&self.shared).error {
            Some(e) => Err(RepoError::Persist(e.clone())),
            None => Ok(()),
        }
    }

    /// Current progress/backpressure counters.
    pub fn stats(&self) -> PipelineStats {
        lock(&self.shared).stats
    }

    /// Events accepted but not yet durably recorded.
    pub fn lag(&self) -> u64 {
        let state = lock(&self.shared);
        state.stats.enqueued - state.stats.durable - state.stats.dropped
    }
}

impl EventSink for BackgroundWriter {
    fn accept(&self, event: &RepoEvent) {
        let mut state = lock(&self.shared);
        // One stall = one count, however many condvar wake-ups it takes
        // (notify_all wakes every blocked producer; most loop again).
        if state.queue.len() >= state.capacity && state.error.is_none() && !state.shutdown {
            state.stats.backpressure_waits += 1;
        }
        while state.queue.len() >= state.capacity && state.error.is_none() && !state.shutdown {
            state = self
                .shared
                .not_full
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
        state.stats.enqueued += 1;
        if state.error.is_some() || state.shutdown {
            // A dead writer must not block its producers forever; the loss
            // is counted, and flush()/shutdown() must report it — so a
            // drop after a *clean* shutdown plants the sticky error too
            // (a crashed writer already has one).
            state.stats.dropped += 1;
            if state.error.is_none() {
                state.error = Some("event discarded: writer was already shut down".to_string());
            }
            self.shared.progress.notify_all();
            return;
        }
        state.queue.push_back(event.clone());
        self.shared.not_empty.notify_one();
    }
}

impl Drop for BackgroundWriter {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

/// The writer thread: pop a batch, record it, account for it; on error,
/// stash the error, discard the queue, and idle until shutdown.
fn writer_loop<B: StorageBackend>(shared: Arc<Shared>, mut backend: B, batch_max: usize) {
    loop {
        let batch: Vec<RepoEvent> = {
            let mut state = lock(&shared);
            while state.queue.is_empty() && !state.shutdown {
                state = shared
                    .not_empty
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
            if state.queue.is_empty() {
                return; // shutdown with an empty queue: orderly exit
            }
            let n = state.queue.len().min(batch_max);
            let batch = state.queue.drain(..n).collect();
            shared.not_full.notify_all();
            batch
        };
        let outcome = backend.record(&batch);
        let mut state = lock(&shared);
        match outcome {
            Ok(()) => state.stats.durable += batch.len() as u64,
            Err(e) => {
                // The failed batch and everything still queued are lost to
                // the backend (a durable *prefix* of the batch may exist on
                // disk; recovery reconciles via the primary's journal).
                state.stats.dropped += batch.len() as u64;
                state.stats.dropped += state.queue.len() as u64;
                state.queue.clear();
                if state.error.is_none() {
                    state.error = Some(e.to_string());
                }
                shared.not_full.notify_all();
            }
        }
        shared.progress.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::principal::Principal;
    use crate::repo::Repository;
    use crate::storage::MemoryBackend;
    use crate::template::{ExampleEntry, ExampleType};

    /// A backend whose state outlives the writer thread, so tests can
    /// inspect what was durably recorded.
    #[derive(Clone, Default)]
    struct SharedMemory(Arc<Mutex<MemoryBackend>>);

    impl StorageBackend for SharedMemory {
        fn kind(&self) -> &'static str {
            "shared-memory"
        }
        fn record(&mut self, events: &[RepoEvent]) -> Result<(), RepoError> {
            self.0.lock().unwrap().record(events)
        }
        fn checkpoint(
            &mut self,
            snapshot: &crate::repo::RepositorySnapshot,
        ) -> Result<(), RepoError> {
            self.0.lock().unwrap().checkpoint(snapshot)
        }
        fn restore(&self) -> Result<crate::repo::RepositorySnapshot, RepoError> {
            self.0.lock().unwrap().restore()
        }
    }

    /// A backend that fails every write, for sticky-error tests.
    struct BrokenBackend;

    impl StorageBackend for BrokenBackend {
        fn kind(&self) -> &'static str {
            "broken"
        }
        fn record(&mut self, _events: &[RepoEvent]) -> Result<(), RepoError> {
            Err(RepoError::Persist("disk on fire".to_string()))
        }
        fn checkpoint(
            &mut self,
            _snapshot: &crate::repo::RepositorySnapshot,
        ) -> Result<(), RepoError> {
            Err(RepoError::Persist("disk on fire".to_string()))
        }
        fn restore(&self) -> Result<crate::repo::RepositorySnapshot, RepoError> {
            Err(RepoError::Persist("disk on fire".to_string()))
        }
    }

    fn entry(title: &str) -> ExampleEntry {
        ExampleEntry::builder(title)
            .of_type(ExampleType::Precise)
            .overview("O.")
            .models("M.")
            .consistency("C.")
            .restoration("F.", "B.")
            .discussion("D.")
            .author("alice")
            .build()
            .unwrap()
    }

    #[test]
    fn subscribed_writer_persists_the_live_state() {
        let storage = SharedMemory::default();
        let writer = Arc::new(BackgroundWriter::spawn(storage.clone()));
        let repo = Repository::found("bx", vec![Principal::curator("c")]);
        // Backfill the founding event, then go push-mode.
        writer.enqueue(&repo.drain_events());
        repo.subscribe(writer.clone());
        repo.register(Principal::member("alice")).unwrap();
        let id = repo.contribute("alice", entry("COMPOSERS")).unwrap();
        repo.comment("alice", &id, "2014-03-28", "bg").unwrap();

        writer.flush().unwrap();
        assert_eq!(
            storage.0.lock().unwrap().restore().unwrap(),
            repo.snapshot()
        );
        let stats = writer.stats();
        assert_eq!(stats.enqueued, 4);
        assert_eq!(stats.durable, 4);
        assert_eq!(stats.dropped, 0);
        assert_eq!(writer.lag(), 0);
        writer.shutdown().unwrap();
    }

    #[test]
    fn drop_drains_the_queue() {
        let storage = SharedMemory::default();
        let repo = Repository::found("bx", vec![Principal::curator("c")]);
        repo.register(Principal::member("alice")).unwrap();
        repo.contribute("alice", entry("COMPOSERS")).unwrap();
        {
            let writer = BackgroundWriter::with_config(
                storage.clone(),
                PipelineConfig {
                    channel_capacity: 2, // force backpressure on the way in
                    write_batch: 1,
                },
            );
            writer.enqueue(&repo.drain_events());
            // No flush: Drop must drain.
        }
        assert_eq!(
            storage.0.lock().unwrap().restore().unwrap(),
            repo.snapshot()
        );
    }

    #[test]
    fn backend_errors_are_sticky_and_do_not_block_producers() {
        let writer = Arc::new(BackgroundWriter::with_config(
            BrokenBackend,
            PipelineConfig {
                channel_capacity: 2,
                write_batch: 8,
            },
        ));
        let repo = Repository::found("bx", vec![Principal::curator("c")]);
        repo.subscribe(writer.clone());
        repo.register(Principal::member("alice")).unwrap();
        // Far more events than the channel holds: if the dead writer kept
        // blocking, this loop would hang.
        let id = repo.contribute("alice", entry("COMPOSERS")).unwrap();
        for i in 0..16 {
            repo.comment("alice", &id, "2014-03-28", &format!("c{i}"))
                .unwrap();
        }
        let err = writer.flush().unwrap_err();
        assert!(matches!(err, RepoError::Persist(ref m) if m.contains("disk on fire")));
        let stats = writer.stats();
        assert_eq!(stats.durable, 0);
        assert!(stats.dropped > 0);
        assert_eq!(stats.enqueued, stats.dropped);
        assert!(writer.shutdown().is_err(), "the error stays sticky");
    }

    #[test]
    fn events_after_shutdown_fail_the_next_flush() {
        let storage = SharedMemory::default();
        let writer = Arc::new(BackgroundWriter::spawn(storage.clone()));
        let repo = Repository::found("bx", vec![Principal::curator("c")]);
        writer.enqueue(&repo.drain_events());
        repo.subscribe(writer.clone());
        writer.shutdown().unwrap();
        // The repository still holds the sink; this event can no longer
        // reach the backend and flush must say so rather than lie Ok.
        repo.register(Principal::member("late")).unwrap();
        let err = writer.flush().unwrap_err();
        assert!(matches!(err, RepoError::Persist(ref m) if m.contains("shut down")));
        assert_eq!(writer.stats().dropped, 1);
    }

    #[test]
    fn flush_then_more_events_then_flush_again() {
        let storage = SharedMemory::default();
        let writer = Arc::new(BackgroundWriter::spawn(storage.clone()));
        let repo = Repository::found("bx", vec![Principal::curator("c")]);
        writer.enqueue(&repo.drain_events());
        repo.subscribe(writer.clone());
        repo.register(Principal::member("alice")).unwrap();
        writer.flush().unwrap();
        let mid = storage.0.lock().unwrap().restore().unwrap();
        assert_eq!(mid, repo.snapshot());
        repo.contribute("alice", entry("DATES")).unwrap();
        writer.flush().unwrap();
        assert_eq!(
            storage.0.lock().unwrap().restore().unwrap(),
            repo.snapshot()
        );
    }
}
