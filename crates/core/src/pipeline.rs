//! The background durability pipeline: a writer task fed by a bounded
//! channel, draining committed [`RepoEvent`]s into any
//! [`StorageBackend`].
//!
//! [`BackgroundWriter`] is an [`EventSink`]: subscribe it to a
//! [`crate::repo::Repository`] and persistence leaves the mutating
//! caller's thread — `contribute`/`revise`/… return as soon as the event
//! is *enqueued*; the writer batches queued events and calls
//! `StorageBackend::record` off to the side. The writer is a
//! [`crate::runtime::SerialTask`] tenant on a [`Runtime`]:
//! [`BackgroundWriter::spawn`]/[`BackgroundWriter::with_config`] give it
//! a private single-worker runtime (`bx-durability-0`, the drop-in
//! equivalent of the old dedicated thread), while
//! [`BackgroundWriter::on_runtime`] lets many writers share one bounded
//! pool — a federation's per-source writers run as N serialized tasks
//! on a handful of threads, with group-commit window closes arriving as
//! timer-wheel one-shots instead of per-writer sleeps. Four properties
//! define the pipeline:
//!
//! * **Bounded, with backpressure.** The channel holds at most
//!   [`PipelineConfig::channel_capacity`] events. When it is full,
//!   `accept` blocks the mutating caller until the writer catches up —
//!   durability lag is bounded by the channel, never unbounded memory.
//!   Every such stall is counted ([`PipelineStats::backpressure_waits`]).
//! * **Explicit flush.** [`BackgroundWriter::flush`] blocks until every
//!   event enqueued before the call is durably recorded (or the writer
//!   has failed), surfacing any backend error. Write errors are sticky:
//!   after one, subsequent events are discarded (counted in
//!   [`PipelineStats::dropped`]) rather than blocking writers forever,
//!   and every later `flush`/`shutdown` keeps returning the error.
//! * **Group commit.** With [`PipelineConfig::group_commit_window`] set,
//!   the writer holds an fsync window open: it drains *everything*
//!   concurrent producers queue, appends it through the backend's staged
//!   (`DurabilityMode::GroupCommit`) path, and issues **one**
//!   `flush_durable` when the window closes — on the window timer, at
//!   [`PipelineConfig::max_group_events`], at shutdown, or early when a
//!   `flush` caller is waiting. One fsync then acknowledges every
//!   producer in the window ([`PipelineStats::fsyncs`] vs
//!   [`PipelineStats::group_commits`] make the amortisation observable).
//!   Without a window (the default), every `record` batch fsyncs on its
//!   own, exactly as before.
//! * **Drop-shutdown.** Dropping the writer (or calling
//!   [`BackgroundWriter::shutdown`]) drains the queue to the backend —
//!   closing any open group-commit window with its fsync — and waits for
//!   the writer task to confirm, so a scope exit cannot lose
//!   acknowledged events.
//!
//! The backend is moved into the writer task. For the scaling backend
//! ([`crate::storage::EventLogBackend`]), wrap it in
//! [`crate::storage::AutoCompactingEventLog`] first and the pipeline
//! checkpoints/prunes as it writes.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::{Duration, Instant};

use crate::error::RepoError;
use crate::event::{EventSink, RepoEvent};
use crate::runtime::{HealthReport, Runtime, RuntimeHealth, SerialTask, WeakSerialTask};
use crate::storage::{DurabilityMode, StorageBackend};

/// Default bound on the writer's input channel, in events.
pub const DEFAULT_CHANNEL_CAPACITY: usize = 1024;

/// Default maximum events handed to one `StorageBackend::record` call.
pub const DEFAULT_WRITE_BATCH: usize = 256;

/// Default cap on how many events one group-commit window may cover
/// before it is forced closed (bounds both ack latency and the clean
/// suffix a crash inside the window can lose).
pub const DEFAULT_MAX_GROUP_EVENTS: usize = 4096;

/// How many periodic [`PipelineHealth`] reports the writer retains before
/// dropping the oldest.
const HEALTH_BACKLOG: usize = 64;

/// Tuning knobs for a [`BackgroundWriter`].
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Channel bound: how many events may sit between the writers and the
    /// backend before `accept` applies backpressure.
    pub channel_capacity: usize,
    /// Largest batch handed to a single `record` call in per-batch mode
    /// (amortises per-call fsync cost without starving flush waiters).
    pub write_batch: usize,
    /// When `Some(window)`, the writer runs in group-commit mode: the
    /// backend is switched to `DurabilityMode::GroupCommit` and one
    /// fsync per window replaces one per batch. `None` (the default)
    /// keeps the one-call-durable per-batch behaviour.
    pub group_commit_window: Option<Duration>,
    /// Most events one group-commit window may cover before its fsync is
    /// forced (≥ 1; ignored in per-batch mode).
    pub max_group_events: usize,
    /// When true (and a group-commit window is set), the window adapts to
    /// load: [`PipelineConfig::group_commit_window`] becomes the *ceiling*
    /// and the writer halves the window toward zero whenever a window
    /// closes nearly empty (light load → per-event latency approaches a
    /// bare fsync) and doubles it back toward the ceiling whenever a
    /// window fills a quarter of [`PipelineConfig::max_group_events`]
    /// (saturation → maximum fsync amortisation). The window currently in
    /// force is observable as [`PipelineStats::window_micros`].
    pub adaptive_window: bool,
    /// Every `health_every` successful commits (record batches in
    /// per-batch mode, windows in group-commit mode) the writer thread
    /// snapshots a [`PipelineHealth`] report, drainable via
    /// [`BackgroundWriter::drain_health_reports`]. `0` (the default)
    /// disables periodic reporting; [`BackgroundWriter::health`] always
    /// works on demand.
    pub health_every: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            channel_capacity: DEFAULT_CHANNEL_CAPACITY,
            write_batch: DEFAULT_WRITE_BATCH,
            group_commit_window: None,
            max_group_events: DEFAULT_MAX_GROUP_EVENTS,
            health_every: 0,
            adaptive_window: false,
        }
    }
}

impl PipelineConfig {
    /// The default configuration with a group-commit window of `window`.
    pub fn group_commit(window: Duration) -> PipelineConfig {
        PipelineConfig {
            group_commit_window: Some(window),
            ..PipelineConfig::default()
        }
    }

    /// Group commit with an adaptive window: `max_window` is the ceiling,
    /// and the writer sizes the actual window to the observed load (see
    /// [`PipelineConfig::adaptive_window`]). The first window opens at
    /// the ceiling — the safe choice for throughput — and shrinks within
    /// a few light windows.
    pub fn adaptive_group_commit(max_window: Duration) -> PipelineConfig {
        PipelineConfig {
            adaptive_window: true,
            ..PipelineConfig::group_commit(max_window)
        }
    }
}

/// Backpressure and progress accounting, readable at any time via
/// [`BackgroundWriter::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Events accepted into the channel.
    pub enqueued: u64,
    /// Events durably recorded by the backend (past its fsync point).
    pub durable: u64,
    /// Events discarded because the writer had already failed.
    pub dropped: u64,
    /// How many times an `accept` blocked on a full channel.
    pub backpressure_waits: u64,
    /// Durability commit points the writer has issued: one per `record`
    /// batch in per-batch mode, one per window in group-commit mode.
    /// (Real `sync_all` calls on file-backed backends; commit points on
    /// memory ones.)
    pub fsyncs: u64,
    /// Group-commit windows closed. Always 0 in per-batch mode;
    /// `durable / group_commits` is the realised amortisation factor.
    pub group_commits: u64,
    /// The group-commit window in force after the most recent window
    /// close, in microseconds: the configured window in fixed mode, the
    /// load-adapted value under [`PipelineConfig::adaptive_window`], and
    /// 0 in per-batch mode (or before the first window has closed).
    pub window_micros: u64,
}

/// A point-in-time health snapshot of the pipeline: the counters plus the
/// queue state and the sticky error, if any. Taken on demand by
/// [`BackgroundWriter::health`] and periodically by the writer thread
/// when [`PipelineConfig::health_every`] is non-zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineHealth {
    /// The counters at snapshot time.
    pub stats: PipelineStats,
    /// Events sitting in the channel, not yet handed to the backend.
    pub queue_depth: usize,
    /// Events accepted but not yet durable (includes `queue_depth` and
    /// any open group-commit window's staged events).
    pub lag: u64,
    /// The sticky writer error, if the pipeline has failed.
    pub error: Option<String>,
}

impl PipelineHealth {
    /// No sticky error: every accepted event has reached, or will reach,
    /// the backend.
    pub fn healthy(&self) -> bool {
        self.error.is_none()
    }

    fn of(state: &State) -> PipelineHealth {
        PipelineHealth {
            stats: state.stats,
            queue_depth: state.queue.len(),
            lag: state.stats.enqueued - state.stats.durable - state.stats.dropped,
            error: state.error.clone(),
        }
    }
}

/// A push target for [`PipelineHealth`] reports; see
/// [`BackgroundWriter::set_health_sink`].
pub type HealthSink = Arc<dyn Fn(PipelineHealth) + Send + Sync>;

/// Everything the producer side and the writer task share.
struct Shared {
    state: Mutex<State>,
    /// Signalled when queue space frees up.
    not_full: Condvar,
    /// Signalled when `durable` advances, the writer fails, or the
    /// shutdown drain completes (`State::closed`).
    progress: Condvar,
    /// When the writer was placed on a shared runtime via
    /// [`BackgroundWriter::on_runtime`], every commit point and failure
    /// also publishes a [`HealthReport::Pipeline`] on the runtime's
    /// unified channel under this component name.
    runtime_channel: Option<(Arc<RuntimeHealth>, String)>,
}

struct State {
    queue: VecDeque<RepoEvent>,
    capacity: usize,
    shutdown: bool,
    /// The shutdown drain has completed: every accepted event is durable
    /// (or the error is sticky) and the writer task will do no more work.
    closed: bool,
    /// A `flush` caller is waiting: an open group-commit window should
    /// close at the next opportunity instead of running out its timer.
    flush_requested: bool,
    /// Events staged on the backend (recorded in `GroupCommit` mode) but
    /// not yet covered by a `flush_durable`. Always 0 in per-batch mode.
    staged: usize,
    /// When the open group-commit window times out; `None` when no
    /// window is open. The close is driven by a timer-wheel one-shot
    /// re-notifying the writer task, not by a sleeping thread.
    window_deadline: Option<Instant>,
    /// The group-commit window currently in force: the configured value
    /// in fixed mode, the load-adapted value in adaptive mode.
    current_window: Duration,
    /// First backend error, stringified; sticky once set.
    error: Option<String>,
    stats: PipelineStats,
    /// Successful commits (record batches / windows), for the periodic
    /// health cadence.
    commits: u64,
    /// [`PipelineConfig::health_every`]; 0 disables periodic reports.
    health_every: usize,
    /// Periodic health reports (bounded; oldest dropped first).
    health: VecDeque<PipelineHealth>,
    /// Push target: called with a fresh report after every commit point
    /// and on failure. Invoked strictly *outside* the state lock.
    health_sink: Option<HealthSink>,
}

impl State {
    /// Account a successful commit and, on the configured cadence, file a
    /// health report — under the same lock that advanced `durable`, so a
    /// flusher woken by this commit already sees its report.
    fn committed(&mut self) {
        self.commits += 1;
        if self.health_every > 0 && self.commits.is_multiple_of(self.health_every as u64) {
            if self.health.len() >= HEALTH_BACKLOG {
                self.health.pop_front();
            }
            let report = PipelineHealth::of(self);
            self.health.push_back(report);
        }
    }

    /// The push sink (if one is set) paired with a fresh report. The
    /// caller hands both to [`publish`] only after releasing the state
    /// lock, so a sink is free to call back into the writer (`stats`,
    /// `health`, …) without deadlocking.
    fn pending_push(&self) -> (Option<HealthSink>, PipelineHealth) {
        (self.health_sink.clone(), PipelineHealth::of(self))
    }
}

/// Deliver one commit-point (or failure) report to the per-writer push
/// sink and, for writers on a shared runtime, to the unified
/// [`RuntimeHealth`] channel. Called strictly outside the state lock.
fn publish(shared: &Shared, sink: Option<HealthSink>, report: PipelineHealth) {
    if let Some((health, component)) = &shared.runtime_channel {
        health.report(
            component,
            HealthReport::Pipeline {
                enqueued: report.stats.enqueued,
                durable: report.stats.durable,
                dropped: report.stats.dropped,
                backpressure_waits: report.stats.backpressure_waits,
                fsyncs: report.stats.fsyncs,
                group_commits: report.stats.group_commits,
                window_micros: report.stats.window_micros,
                queue_len: report.queue_depth,
                error: report.error.clone(),
            },
        );
    }
    if let Some(sink) = sink {
        sink(report);
    }
}

/// The writer task's self-handle, filled in after the task exists so
/// the drive closure (and its window-close timers) can re-notify it.
type TaskSlot = Arc<Mutex<Option<WeakSerialTask>>>;

/// Schedule another writer pass, if the task is still alive.
fn poke(slot: &TaskSlot) {
    if let Some(task) = slot.lock().unwrap_or_else(|e| e.into_inner()).as_ref() {
        task.notify();
    }
}

/// The background durability pipeline's front end; see the module docs.
pub struct BackgroundWriter {
    shared: Arc<Shared>,
    task: SerialTask,
    /// The private runtime backing `spawn`/`with_config` writers; `None`
    /// for tenants of a shared runtime ([`BackgroundWriter::on_runtime`]).
    _runtime: Option<Arc<Runtime>>,
}

impl std::fmt::Debug for BackgroundWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("BackgroundWriter")
            .field("stats", &stats)
            .finish()
    }
}

fn lock(shared: &Shared) -> std::sync::MutexGuard<'_, State> {
    shared.state.lock().unwrap_or_else(|e| e.into_inner())
}

impl BackgroundWriter {
    /// Spawn a writer around `backend` with default tuning, on a private
    /// single-worker runtime (`bx-durability-0`).
    pub fn spawn<B: StorageBackend + Send + 'static>(backend: B) -> BackgroundWriter {
        BackgroundWriter::with_config(backend, PipelineConfig::default())
    }

    /// Spawn a writer around `backend` with explicit tuning, on a
    /// private single-worker runtime. A
    /// [`PipelineConfig::group_commit_window`] switches the backend to
    /// `DurabilityMode::GroupCommit` before the task starts, so staging
    /// and the window's single fsync line up automatically.
    pub fn with_config<B: StorageBackend + Send + 'static>(
        backend: B,
        config: PipelineConfig,
    ) -> BackgroundWriter {
        let runtime = Runtime::named("bx-durability", 1);
        let mut writer = BackgroundWriter::build(backend, config, &runtime, None);
        writer._runtime = Some(runtime);
        writer
    }

    /// Place a writer on a *shared* [`Runtime`]: the writer becomes one
    /// serialized task among the runtime's tenants instead of owning a
    /// thread, and every commit point (and failure) publishes a
    /// [`HealthReport::Pipeline`] under `component` on the runtime's
    /// unified health channel. The runtime must outlive the writer's
    /// shutdown (callers keep their own `Arc`).
    pub fn on_runtime<B: StorageBackend + Send + 'static>(
        backend: B,
        config: PipelineConfig,
        runtime: &Arc<Runtime>,
        component: &str,
    ) -> BackgroundWriter {
        BackgroundWriter::build(backend, config, runtime, Some(component))
    }

    fn build<B: StorageBackend + Send + 'static>(
        mut backend: B,
        config: PipelineConfig,
        runtime: &Arc<Runtime>,
        component: Option<&str>,
    ) -> BackgroundWriter {
        if config.group_commit_window.is_some() {
            backend.set_durability(DurabilityMode::GroupCommit);
        }
        // A backend that repaired a torn tail when it opened says so on
        // the unified channel — the repair predates this writer, but this
        // is the first observer that can publish it.
        if let (Some(component), Some(repair)) = (component, backend.tail_repaired()) {
            runtime.health().report(
                component,
                HealthReport::TailRepaired {
                    file: repair.file,
                    bytes_dropped: repair.bytes_dropped,
                },
            );
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                capacity: config.channel_capacity.max(1),
                shutdown: false,
                closed: false,
                flush_requested: false,
                staged: 0,
                window_deadline: None,
                current_window: config.group_commit_window.unwrap_or(Duration::ZERO),
                error: None,
                stats: PipelineStats::default(),
                commits: 0,
                health_every: config.health_every,
                health: VecDeque::new(),
                health_sink: None,
            }),
            not_full: Condvar::new(),
            progress: Condvar::new(),
            runtime_channel: component.map(|name| (Arc::clone(runtime.health()), name.to_string())),
        });
        let tuning = WriterTuning {
            batch_max: config.write_batch.max(1),
            window: config.group_commit_window,
            group_max: config.max_group_events.max(1),
            adaptive: config.adaptive_window,
        };
        let slot: TaskSlot = Arc::default();
        let drive_shared = Arc::clone(&shared);
        let drive_slot = Arc::clone(&slot);
        let drive_runtime = Arc::downgrade(runtime);
        let task = runtime.serial_task(move || {
            drive(
                &drive_shared,
                &mut backend,
                tuning,
                &drive_runtime,
                &drive_slot,
            )
        });
        *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(task.downgrade());
        BackgroundWriter {
            shared,
            task,
            _runtime: None,
        }
    }

    /// Enqueue a batch directly — the backfill path for events that
    /// happened *before* the writer was subscribed (e.g. the output of
    /// [`crate::repo::Repository::drain_events`]). Same backpressure and
    /// error semantics as sink delivery.
    pub fn enqueue(&self, events: &[RepoEvent]) {
        for event in events {
            self.accept(event);
        }
    }

    /// Block until every event enqueued before this call is durably
    /// recorded, then report the writer's health. An open group-commit
    /// window closes early for a waiting flush, so acknowledgement
    /// latency is bounded by the in-flight fsync, not the window timer.
    /// Any discarded event fails the flush: a backend error and a
    /// post-shutdown delivery both plant a sticky error, so `Ok(())`
    /// really means "everything accepted so far is on the backend".
    pub fn flush(&self) -> Result<(), RepoError> {
        let target = lock(&self.shared).stats.enqueued;
        let mut state = lock(&self.shared);
        while state.error.is_none() && state.stats.durable + state.stats.dropped < target {
            // Re-asserted on every wake-up, not just once: each window
            // fsync clears the flag, and a window that closed on its
            // group budget (or covered only events enqueued before ours)
            // may leave this flusher unacknowledged — without re-arming,
            // the next window would wait out its full timer.
            state.flush_requested = true;
            drop(state);
            self.task.notify();
            state = lock(&self.shared);
            if !(state.error.is_none() && state.stats.durable + state.stats.dropped < target) {
                break;
            }
            state = self
                .shared
                .progress
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
        match &state.error {
            Some(e) => Err(RepoError::Persist(e.clone())),
            None => Ok(()),
        }
    }

    /// Drain the queue, close any open window with its fsync, and wait
    /// for the writer task to confirm it is done, returning the writer's
    /// final health. Idempotent; also run (result ignored) by `Drop`.
    pub fn shutdown(&self) -> Result<(), RepoError> {
        {
            let mut state = lock(&self.shared);
            state.shutdown = true;
            self.shared.not_full.notify_all();
        }
        self.task.notify();
        let mut state = lock(&self.shared);
        while !state.closed && state.error.is_none() {
            state = self
                .shared
                .progress
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
            if !state.closed && state.error.is_none() {
                // A pass may have gone idle between our notify and the
                // shutdown flag landing; make sure another one runs.
                drop(state);
                self.task.notify();
                state = lock(&self.shared);
            }
        }
        let result = match &state.error {
            Some(e) => Err(RepoError::Persist(e.clone())),
            None => Ok(()),
        };
        drop(state);
        // Wait out any in-flight pass so its health pushes (including a
        // failure report) have landed — the task-world equivalent of
        // joining the old writer thread.
        self.task.wait_idle();
        result
    }

    /// Current progress/backpressure counters.
    pub fn stats(&self) -> PipelineStats {
        lock(&self.shared).stats
    }

    /// A point-in-time [`PipelineHealth`] snapshot, on demand.
    pub fn health(&self) -> PipelineHealth {
        PipelineHealth::of(&lock(&self.shared))
    }

    /// Take the periodic health reports accumulated since the last drain
    /// (oldest first). Empty unless [`PipelineConfig::health_every`] was
    /// set. A bounded backlog (64 reports) is retained between drains;
    /// older ones are dropped.
    pub fn drain_health_reports(&self) -> Vec<PipelineHealth> {
        lock(&self.shared).health.drain(..).collect()
    }

    /// Push health reports instead of (only) pulling them: `sink` is
    /// called with a fresh [`PipelineHealth`] after every commit point
    /// (one `record` batch in per-batch mode, one window in group-commit
    /// mode) and once when the writer fails. Reports arrive on the writer
    /// thread, outside the pipeline's internal lock — a sink may call
    /// back into the writer, but should return quickly since it delays
    /// the next commit. Replaces any previously set sink; independent of
    /// the pull-side [`PipelineConfig::health_every`] cadence.
    pub fn set_health_sink(&self, sink: HealthSink) {
        lock(&self.shared).health_sink = Some(sink);
    }

    /// Events accepted but not yet durably recorded.
    pub fn lag(&self) -> u64 {
        let state = lock(&self.shared);
        state.stats.enqueued - state.stats.durable - state.stats.dropped
    }
}

impl EventSink for BackgroundWriter {
    fn accept(&self, event: &RepoEvent) {
        {
            let mut state = lock(&self.shared);
            // One stall = one count, however many condvar wake-ups it
            // takes (notify_all wakes every blocked producer; most loop
            // again).
            if state.queue.len() >= state.capacity && state.error.is_none() && !state.shutdown {
                state.stats.backpressure_waits += 1;
            }
            while state.queue.len() >= state.capacity && state.error.is_none() && !state.shutdown {
                state = self
                    .shared
                    .not_full
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
            state.stats.enqueued += 1;
            if state.error.is_some() || state.shutdown {
                // A dead writer must not block its producers forever; the
                // loss is counted, and flush()/shutdown() must report it —
                // so a drop after a *clean* shutdown plants the sticky
                // error too (a crashed writer already has one).
                state.stats.dropped += 1;
                if state.error.is_none() {
                    state.error = Some("event discarded: writer was already shut down".to_string());
                }
                self.shared.progress.notify_all();
                return;
            }
            state.queue.push_back(event.clone());
        }
        self.task.notify();
    }
}

impl Drop for BackgroundWriter {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

/// The writer task's resolved knobs.
#[derive(Clone, Copy)]
struct WriterTuning {
    batch_max: usize,
    /// The configured window — the fixed value, or the adaptive ceiling.
    window: Option<Duration>,
    group_max: usize,
    adaptive: bool,
}

/// One pass of the writer task. Never blocks waiting for work or for a
/// window timer — producers (`accept`), flush/shutdown callers and
/// window-close one-shots all re-notify the task instead — and does one
/// bounded step per pass (one record batch, or one stage-and-maybe-
/// close round), re-notifying itself while work remains so sibling
/// tenants on a shared runtime are never starved.
fn drive<B: StorageBackend>(
    shared: &Arc<Shared>,
    backend: &mut B,
    tuning: WriterTuning,
    runtime: &Weak<Runtime>,
    slot: &TaskSlot,
) {
    if tuning.window.is_none() {
        drive_batch(shared, backend, tuning.batch_max, slot);
    } else {
        drive_group(shared, backend, tuning, runtime, slot);
    }
}

/// Mark the shutdown drain complete (nothing queued, nothing staged)
/// and wake shutdown waiters. Caller holds the state lock.
fn confirm_closed(shared: &Shared, state: &mut State) {
    if state.shutdown && !state.closed {
        state.closed = true;
        shared.progress.notify_all();
    }
}

/// Per-batch mode: pop one bounded batch, record it (the backend fsyncs
/// inside `record`), account for it; re-notify while events remain.
fn drive_batch<B: StorageBackend>(
    shared: &Arc<Shared>,
    backend: &mut B,
    batch_max: usize,
    slot: &TaskSlot,
) {
    let batch: Vec<RepoEvent> = {
        let mut state = lock(shared);
        if state.error.is_some() || state.queue.is_empty() {
            confirm_closed(shared, &mut state);
            return;
        }
        let n = state.queue.len().min(batch_max);
        let batch = state.queue.drain(..n).collect();
        shared.not_full.notify_all();
        batch
    };
    match backend.record(&batch) {
        Ok(()) => {
            let (sink, report) = {
                let mut state = lock(shared);
                state.stats.durable += batch.len() as u64;
                state.stats.fsyncs += 1;
                state.flush_requested = false;
                state.committed();
                shared.progress.notify_all();
                state.pending_push()
            };
            publish(shared, sink, report);
        }
        Err(e) => {
            fail(shared, batch.len(), e);
            return;
        }
    }
    let more = {
        let state = lock(shared);
        !state.queue.is_empty() || (state.shutdown && !state.closed)
    };
    if more {
        poke(slot);
    }
}

/// Group-commit mode: stage whatever is queued (up to the group
/// budget), open a window (arming a timer-wheel one-shot for its
/// deadline) and close it — with the one `flush_durable` that makes
/// every staged batch durable at once — when the budget fills, the
/// deadline passes, shutdown begins, or a flush caller is waiting on a
/// drained queue.
fn drive_group<B: StorageBackend>(
    shared: &Arc<Shared>,
    backend: &mut B,
    tuning: WriterTuning,
    runtime: &Weak<Runtime>,
    slot: &TaskSlot,
) {
    let max_window = tuning.window.expect("group mode has a window");
    let (batch, staged_before) = {
        let mut state = lock(shared);
        if state.error.is_some() {
            confirm_closed(shared, &mut state);
            return;
        }
        if state.queue.is_empty() && state.staged == 0 {
            confirm_closed(shared, &mut state);
            return;
        }
        let room = tuning.group_max - state.staged;
        let n = state.queue.len().min(room);
        let batch: Vec<RepoEvent> = state.queue.drain(..n).collect();
        if n > 0 {
            shared.not_full.notify_all();
        }
        (batch, state.staged)
    };
    if !batch.is_empty() {
        // Staged, not yet durable: `durable` only advances at the fsync
        // below, so flush waiters cannot be acknowledged early.
        if let Err(e) = backend.record(&batch) {
            fail(shared, staged_before + batch.len(), e);
            return;
        }
    }
    let mut state = lock(shared);
    state.staged += batch.len();
    if state.staged > 0 && state.window_deadline.is_none() && !state.current_window.is_zero() {
        // Open the window: deadline first, then the timer — the wheel
        // measures its own delay from *after* the deadline was fixed,
        // so the one-shot can never fire before the deadline check
        // passes and strand the window open.
        let delay = state.current_window;
        state.window_deadline = Some(Instant::now() + delay);
        drop(state);
        let timer_slot = Arc::clone(slot);
        if let Some(runtime) = runtime.upgrade() {
            runtime.schedule_once(delay, move || poke(&timer_slot));
        }
        state = lock(shared);
    }
    let deadline_passed = state
        .window_deadline
        .is_some_and(|deadline| Instant::now() >= deadline);
    let close = state.staged > 0
        && (state.staged >= tuning.group_max
            || state.shutdown
            || (state.flush_requested && state.queue.is_empty())
            || deadline_passed
            || state.current_window.is_zero());
    if close {
        let staged = state.staged;
        // Decide the next window before the commit lock so flush
        // waiters see stats (including `window_micros`) fully settled
        // when they wake.
        let next_window = if tuning.adaptive {
            adapt_window(state.current_window, max_window, staged, tuning.group_max)
        } else {
            state.current_window
        };
        drop(state);
        // The window's single fsync point, covering every staged batch.
        match backend.flush_durable() {
            Ok(()) => {
                let (sink, report) = {
                    let mut state = lock(shared);
                    state.stats.durable += staged as u64;
                    state.stats.fsyncs += 1;
                    state.stats.group_commits += 1;
                    state.stats.window_micros = next_window.as_micros() as u64;
                    state.staged = 0;
                    state.window_deadline = None;
                    state.current_window = next_window;
                    state.flush_requested = false;
                    state.committed();
                    shared.progress.notify_all();
                    state.pending_push()
                };
                publish(shared, sink, report);
            }
            Err(e) => {
                fail(shared, staged, e);
                return;
            }
        }
    } else {
        drop(state);
    }
    let more = {
        let state = lock(shared);
        state.error.is_none() && (!state.queue.is_empty() || (state.shutdown && !state.closed))
    };
    if more {
        poke(slot);
    }
}

/// Size the next group-commit window from how the one that just closed
/// went. `staged` near the group budget means producers are saturating
/// the writer: double the window (more amortisation per fsync), up to the
/// configured ceiling. A window that closed nearly empty means load is
/// light: halve it (down to zero — drain-and-fsync immediately) so a lone
/// producer's ack latency is one fsync, not one timer. The growth floor
/// is a small quantum of the ceiling so recovery from zero is geometric,
/// not stuck.
fn adapt_window(
    current: Duration,
    max_window: Duration,
    staged: usize,
    group_max: usize,
) -> Duration {
    let quantum = (max_window / 16)
        .max(Duration::from_micros(50))
        .min(max_window);
    if staged.saturating_mul(4) >= group_max {
        return current.saturating_mul(2).clamp(quantum, max_window);
    }
    if staged <= 1 {
        return if current <= quantum {
            Duration::ZERO
        } else {
            current / 2
        };
    }
    current
}

/// The writer failed with `in_flight` events handed to the backend but
/// not durable (a durable *prefix* of them may exist on disk; recovery
/// reconciles via the primary's journal). They and everything still
/// queued are lost and counted; the error turns sticky.
fn fail(shared: &Shared, in_flight: usize, e: RepoError) {
    let (sink, report) = {
        let mut state = lock(shared);
        state.stats.dropped += in_flight as u64;
        state.stats.dropped += state.queue.len() as u64;
        state.queue.clear();
        if state.error.is_none() {
            state.error = Some(e.to_string());
        }
        state.flush_requested = false;
        state.staged = 0;
        state.window_deadline = None;
        shared.not_full.notify_all();
        shared.progress.notify_all();
        state.pending_push()
    };
    // The sinks hear about the failure too — pushed outside the lock.
    publish(shared, sink, report);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::principal::Principal;
    use crate::repo::Repository;
    use crate::storage::MemoryBackend;
    use crate::template::{ExampleEntry, ExampleType};

    /// A backend whose state outlives the writer thread, so tests can
    /// inspect what was durably recorded.
    #[derive(Clone, Default)]
    struct SharedMemory(Arc<Mutex<MemoryBackend>>);

    impl StorageBackend for SharedMemory {
        fn kind(&self) -> &'static str {
            "shared-memory"
        }
        fn record(&mut self, events: &[RepoEvent]) -> Result<(), RepoError> {
            self.0.lock().unwrap().record(events)
        }
        fn checkpoint(
            &mut self,
            snapshot: &crate::repo::RepositorySnapshot,
        ) -> Result<(), RepoError> {
            self.0.lock().unwrap().checkpoint(snapshot)
        }
        fn restore(&self) -> Result<crate::repo::RepositorySnapshot, RepoError> {
            self.0.lock().unwrap().restore()
        }
    }

    /// A backend that fails every write, for sticky-error tests.
    struct BrokenBackend;

    impl StorageBackend for BrokenBackend {
        fn kind(&self) -> &'static str {
            "broken"
        }
        fn record(&mut self, _events: &[RepoEvent]) -> Result<(), RepoError> {
            Err(RepoError::Persist("disk on fire".to_string()))
        }
        fn checkpoint(
            &mut self,
            _snapshot: &crate::repo::RepositorySnapshot,
        ) -> Result<(), RepoError> {
            Err(RepoError::Persist("disk on fire".to_string()))
        }
        fn restore(&self) -> Result<crate::repo::RepositorySnapshot, RepoError> {
            Err(RepoError::Persist("disk on fire".to_string()))
        }
    }

    fn entry(title: &str) -> ExampleEntry {
        ExampleEntry::builder(title)
            .of_type(ExampleType::Precise)
            .overview("O.")
            .models("M.")
            .consistency("C.")
            .restoration("F.", "B.")
            .discussion("D.")
            .author("alice")
            .build()
            .unwrap()
    }

    #[test]
    fn subscribed_writer_persists_the_live_state() {
        let storage = SharedMemory::default();
        let writer = Arc::new(BackgroundWriter::spawn(storage.clone()));
        let repo = Repository::found("bx", vec![Principal::curator("c")]);
        // Backfill the founding event, then go push-mode.
        writer.enqueue(&repo.drain_events());
        repo.subscribe(writer.clone());
        repo.register(Principal::member("alice")).unwrap();
        let id = repo.contribute("alice", entry("COMPOSERS")).unwrap();
        repo.comment("alice", &id, "2014-03-28", "bg").unwrap();

        writer.flush().unwrap();
        assert_eq!(
            storage.0.lock().unwrap().restore().unwrap(),
            repo.snapshot()
        );
        let stats = writer.stats();
        assert_eq!(stats.enqueued, 4);
        assert_eq!(stats.durable, 4);
        assert_eq!(stats.dropped, 0);
        // Per-batch mode: one commit point per record batch, no windows.
        assert!(stats.fsyncs >= 1);
        assert_eq!(stats.group_commits, 0);
        assert_eq!(writer.lag(), 0);
        writer.shutdown().unwrap();
    }

    #[test]
    fn drop_drains_the_queue() {
        let storage = SharedMemory::default();
        let repo = Repository::found("bx", vec![Principal::curator("c")]);
        repo.register(Principal::member("alice")).unwrap();
        repo.contribute("alice", entry("COMPOSERS")).unwrap();
        {
            let writer = BackgroundWriter::with_config(
                storage.clone(),
                PipelineConfig {
                    channel_capacity: 2, // force backpressure on the way in
                    write_batch: 1,
                    ..PipelineConfig::default()
                },
            );
            writer.enqueue(&repo.drain_events());
            // No flush: Drop must drain.
        }
        assert_eq!(
            storage.0.lock().unwrap().restore().unwrap(),
            repo.snapshot()
        );
    }

    #[test]
    fn backend_errors_are_sticky_and_do_not_block_producers() {
        let writer = Arc::new(BackgroundWriter::with_config(
            BrokenBackend,
            PipelineConfig {
                channel_capacity: 2,
                write_batch: 8,
                ..PipelineConfig::default()
            },
        ));
        let repo = Repository::found("bx", vec![Principal::curator("c")]);
        repo.subscribe(writer.clone());
        repo.register(Principal::member("alice")).unwrap();
        // Far more events than the channel holds: if the dead writer kept
        // blocking, this loop would hang.
        let id = repo.contribute("alice", entry("COMPOSERS")).unwrap();
        for i in 0..16 {
            repo.comment("alice", &id, "2014-03-28", &format!("c{i}"))
                .unwrap();
        }
        let err = writer.flush().unwrap_err();
        assert!(matches!(err, RepoError::Persist(ref m) if m.contains("disk on fire")));
        let stats = writer.stats();
        assert_eq!(stats.durable, 0);
        assert!(stats.dropped > 0);
        assert_eq!(stats.enqueued, stats.dropped);
        assert!(writer.shutdown().is_err(), "the error stays sticky");
    }

    #[test]
    fn events_after_shutdown_fail_the_next_flush() {
        let storage = SharedMemory::default();
        let writer = Arc::new(BackgroundWriter::spawn(storage.clone()));
        let repo = Repository::found("bx", vec![Principal::curator("c")]);
        writer.enqueue(&repo.drain_events());
        repo.subscribe(writer.clone());
        writer.shutdown().unwrap();
        // The repository still holds the sink; this event can no longer
        // reach the backend and flush must say so rather than lie Ok.
        repo.register(Principal::member("late")).unwrap();
        let err = writer.flush().unwrap_err();
        assert!(matches!(err, RepoError::Persist(ref m) if m.contains("shut down")));
        assert_eq!(writer.stats().dropped, 1);
    }

    #[test]
    fn flush_then_more_events_then_flush_again() {
        let storage = SharedMemory::default();
        let writer = Arc::new(BackgroundWriter::spawn(storage.clone()));
        let repo = Repository::found("bx", vec![Principal::curator("c")]);
        writer.enqueue(&repo.drain_events());
        repo.subscribe(writer.clone());
        repo.register(Principal::member("alice")).unwrap();
        writer.flush().unwrap();
        let mid = storage.0.lock().unwrap().restore().unwrap();
        assert_eq!(mid, repo.snapshot());
        repo.contribute("alice", entry("DATES")).unwrap();
        writer.flush().unwrap();
        assert_eq!(
            storage.0.lock().unwrap().restore().unwrap(),
            repo.snapshot()
        );
    }

    #[test]
    fn group_commit_coalesces_commit_points() {
        let storage = SharedMemory::default();
        let writer = Arc::new(BackgroundWriter::with_config(
            storage.clone(),
            PipelineConfig::group_commit(Duration::from_millis(5)),
        ));
        let repo = Repository::found("bx", vec![Principal::curator("c")]);
        writer.enqueue(&repo.drain_events());
        repo.subscribe(writer.clone());
        repo.register(Principal::member("alice")).unwrap();
        let id = repo.contribute("alice", entry("COMPOSERS")).unwrap();
        for i in 0..20 {
            repo.comment("alice", &id, "2014-03-28", &format!("g{i}"))
                .unwrap();
        }
        writer.flush().unwrap();
        let stats = writer.stats();
        assert_eq!(stats.durable, stats.enqueued);
        assert!(stats.group_commits >= 1);
        assert_eq!(stats.fsyncs, stats.group_commits);
        assert!(
            stats.fsyncs < stats.durable,
            "windows amortise: {} fsyncs for {} events",
            stats.fsyncs,
            stats.durable
        );
        assert_eq!(
            storage.0.lock().unwrap().restore().unwrap(),
            repo.snapshot()
        );
        writer.shutdown().unwrap();
    }

    #[test]
    fn adaptive_window_shrinks_to_zero_under_light_load() {
        let storage = SharedMemory::default();
        let writer = Arc::new(BackgroundWriter::with_config(
            storage.clone(),
            PipelineConfig::adaptive_group_commit(Duration::from_millis(4)),
        ));
        let repo = Repository::found("bx", vec![Principal::curator("c")]);
        writer.enqueue(&repo.drain_events());
        repo.subscribe(writer.clone());
        repo.register(Principal::member("alice")).unwrap();
        let id = repo.contribute("alice", entry("COMPOSERS")).unwrap();
        // One event per flush: every window closes with staged ≤ 1, so
        // from the 4ms ceiling the window halves to the quantum and then
        // to zero within a handful of rounds.
        for i in 0..10 {
            repo.comment("alice", &id, "2014-03-28", &format!("solo{i}"))
                .unwrap();
            writer.flush().unwrap();
        }
        let stats = writer.stats();
        assert_eq!(stats.window_micros, 0, "light load shrinks to zero");
        assert_eq!(stats.durable, stats.enqueued);
        assert_eq!(
            storage.0.lock().unwrap().restore().unwrap(),
            repo.snapshot()
        );
        writer.shutdown().unwrap();
    }

    #[test]
    fn adaptive_window_grows_back_under_saturation() {
        let storage = SharedMemory::default();
        let writer = Arc::new(BackgroundWriter::with_config(
            storage.clone(),
            PipelineConfig {
                // A tiny group budget so a burst saturates many windows
                // in a row (growth needs staged*4 >= group_max).
                max_group_events: 8,
                ..PipelineConfig::adaptive_group_commit(Duration::from_millis(4))
            },
        ));
        let repo = Repository::found("bx", vec![Principal::curator("c")]);
        writer.enqueue(&repo.drain_events());
        repo.subscribe(writer.clone());
        repo.register(Principal::member("alice")).unwrap();
        let id = repo.contribute("alice", entry("COMPOSERS")).unwrap();
        // Shrink first: sparse singles take the window to zero.
        for i in 0..10 {
            repo.comment("alice", &id, "2014-03-28", &format!("s{i}"))
                .unwrap();
            writer.flush().unwrap();
        }
        assert_eq!(writer.stats().window_micros, 0);
        // Then saturate: a 64-event burst fills windows to the 8-event
        // budget back to back, doubling the window from the quantum.
        for i in 0..64 {
            repo.comment("alice", &id, "2014-03-28", &format!("burst{i}"))
                .unwrap();
        }
        writer.flush().unwrap();
        let stats = writer.stats();
        assert!(
            stats.window_micros > 0,
            "saturation must grow the window back (got {} µs)",
            stats.window_micros
        );
        assert!(
            stats.window_micros <= 4_000,
            "the configured ceiling caps growth (got {} µs)",
            stats.window_micros
        );
        assert_eq!(stats.durable, stats.enqueued);
        assert_eq!(
            storage.0.lock().unwrap().restore().unwrap(),
            repo.snapshot()
        );
        writer.shutdown().unwrap();
    }

    #[test]
    fn fixed_window_reports_its_configured_size() {
        let storage = SharedMemory::default();
        let writer = Arc::new(BackgroundWriter::with_config(
            storage.clone(),
            PipelineConfig::group_commit(Duration::from_millis(2)),
        ));
        let repo = Repository::found("bx", vec![Principal::curator("c")]);
        writer.enqueue(&repo.drain_events());
        writer.flush().unwrap();
        assert_eq!(writer.stats().window_micros, 2_000);
        writer.shutdown().unwrap();
    }

    #[test]
    fn flush_closes_an_open_window_early() {
        let storage = SharedMemory::default();
        // A window far longer than any test timeout: only the
        // flush-requested path can acknowledge promptly.
        let writer = Arc::new(BackgroundWriter::with_config(
            storage.clone(),
            PipelineConfig::group_commit(Duration::from_secs(600)),
        ));
        let repo = Repository::found("bx", vec![Principal::curator("c")]);
        writer.enqueue(&repo.drain_events());
        let started = Instant::now();
        writer.flush().unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(60),
            "flush must not wait out the window timer"
        );
        assert_eq!(
            storage.0.lock().unwrap().restore().unwrap(),
            repo.snapshot()
        );
        writer.shutdown().unwrap();
    }

    #[test]
    fn flush_spanning_multiple_group_budgets_is_not_stranded() {
        let storage = SharedMemory::default();
        // A tiny group budget forces the flusher's events across several
        // windows; each window fsync clears `flush_requested`, so the
        // flusher must re-arm it or the last window waits out the 600 s
        // timer and this test hangs.
        let writer = Arc::new(BackgroundWriter::with_config(
            storage.clone(),
            PipelineConfig {
                max_group_events: 4,
                ..PipelineConfig::group_commit(Duration::from_secs(600))
            },
        ));
        let repo = Repository::found("bx", vec![Principal::curator("c")]);
        repo.register(Principal::member("alice")).unwrap();
        let id = repo.contribute("alice", entry("COMPOSERS")).unwrap();
        for i in 0..7 {
            repo.comment("alice", &id, "2014-03-28", &format!("s{i}"))
                .unwrap();
        }
        writer.enqueue(&repo.drain_events()); // 10 events > 2 budgets
        let started = Instant::now();
        writer.flush().unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(60),
            "flush must not wait out any window timer"
        );
        let stats = writer.stats();
        assert_eq!(stats.durable, 10);
        assert!(
            stats.group_commits >= 3,
            "a 4-event budget splits 10 events over ≥ 3 windows, got {}",
            stats.group_commits
        );
        assert_eq!(
            storage.0.lock().unwrap().restore().unwrap(),
            repo.snapshot()
        );
        writer.shutdown().unwrap();
    }

    #[test]
    fn shutdown_fsyncs_an_open_window() {
        let storage = SharedMemory::default();
        let repo = Repository::found("bx", vec![Principal::curator("c")]);
        repo.register(Principal::member("alice")).unwrap();
        {
            let writer = BackgroundWriter::with_config(
                storage.clone(),
                PipelineConfig::group_commit(Duration::from_secs(600)),
            );
            writer.enqueue(&repo.drain_events());
            // No flush: Drop's shutdown must close the window durably.
        }
        assert_eq!(
            storage.0.lock().unwrap().restore().unwrap(),
            repo.snapshot()
        );
    }

    #[test]
    fn periodic_health_reports_accumulate_and_drain() {
        let storage = SharedMemory::default();
        let writer = Arc::new(BackgroundWriter::with_config(
            storage.clone(),
            PipelineConfig {
                health_every: 1,
                ..PipelineConfig::group_commit(Duration::from_millis(2))
            },
        ));
        let repo = Repository::found("bx", vec![Principal::curator("c")]);
        writer.enqueue(&repo.drain_events());
        repo.subscribe(writer.clone());
        repo.register(Principal::member("alice")).unwrap();
        repo.contribute("alice", entry("COMPOSERS")).unwrap();
        writer.flush().unwrap();

        let reports = writer.drain_health_reports();
        assert!(!reports.is_empty(), "health_every=1 reports every commit");
        assert!(reports.iter().all(PipelineHealth::healthy));
        // Reports are ordered: durable never regresses.
        for pair in reports.windows(2) {
            assert!(pair[0].stats.durable <= pair[1].stats.durable);
        }
        assert!(writer.drain_health_reports().is_empty(), "drain empties");

        // The on-demand snapshot agrees with the counters.
        let health = writer.health();
        assert!(health.healthy());
        assert_eq!(health.stats, writer.stats());
        assert_eq!(health.lag, 0);
        assert_eq!(health.queue_depth, 0);
        writer.shutdown().unwrap();
    }

    #[test]
    fn health_sink_pushes_reports_per_commit_and_on_failure() {
        let storage = SharedMemory::default();
        let writer = Arc::new(BackgroundWriter::with_config(
            storage.clone(),
            PipelineConfig::group_commit(Duration::from_millis(2)),
        ));
        let seen: Arc<Mutex<Vec<PipelineHealth>>> = Arc::default();
        let sink_seen = seen.clone();
        writer.set_health_sink(Arc::new(move |report| {
            sink_seen.lock().unwrap().push(report);
        }));
        let repo = Repository::found("bx", vec![Principal::curator("c")]);
        writer.enqueue(&repo.drain_events());
        repo.subscribe(writer.clone());
        repo.register(Principal::member("alice")).unwrap();
        repo.contribute("alice", entry("COMPOSERS")).unwrap();
        writer.flush().unwrap();
        // Join the writer thread first: the push happens outside the
        // pipeline lock, so it may trail the flush acknowledgement.
        writer.shutdown().unwrap();
        {
            let reports = seen.lock().unwrap();
            assert!(!reports.is_empty(), "each window pushes a report");
            assert!(reports.iter().all(PipelineHealth::healthy));
            for pair in reports.windows(2) {
                assert!(pair[0].stats.durable <= pair[1].stats.durable);
            }
        }

        // A failing backend pushes an unhealthy report.
        let broken = Arc::new(BackgroundWriter::spawn(BrokenBackend));
        let failures: Arc<Mutex<Vec<PipelineHealth>>> = Arc::default();
        let sink_failures = failures.clone();
        broken.set_health_sink(Arc::new(move |report| {
            sink_failures.lock().unwrap().push(report);
        }));
        let repo = Repository::found("bx", vec![Principal::curator("c")]);
        broken.enqueue(&repo.drain_events());
        assert!(broken.flush().is_err());
        assert!(broken.shutdown().is_err(), "the error stays sticky");
        let failures = failures.lock().unwrap();
        assert!(failures.iter().any(|r| !r.healthy()));
    }

    #[test]
    fn writers_on_a_shared_runtime_report_into_the_unified_channel() {
        let runtime = Runtime::new(2);
        let storages: Vec<SharedMemory> = (0..4).map(|_| SharedMemory::default()).collect();
        let writers: Vec<BackgroundWriter> = storages
            .iter()
            .enumerate()
            .map(|(i, storage)| {
                BackgroundWriter::on_runtime(
                    storage.clone(),
                    PipelineConfig::group_commit(Duration::from_millis(2)),
                    &runtime,
                    &format!("writer:s{i}"),
                )
            })
            .collect();
        let repo = Repository::found("bx", vec![Principal::curator("c")]);
        let events = repo.drain_events();
        for writer in &writers {
            writer.enqueue(&events);
            writer.flush().unwrap();
        }
        for (writer, storage) in writers.iter().zip(&storages) {
            assert_eq!(
                storage.0.lock().unwrap().restore().unwrap(),
                repo.snapshot()
            );
            writer.shutdown().unwrap();
        }
        // Every writer reported per-component on the one channel.
        for i in 0..4 {
            let latest = runtime
                .health()
                .latest(&format!("writer:s{i}"))
                .expect("each writer reported");
            match latest.report {
                HealthReport::Pipeline { durable, error, .. } => {
                    assert_eq!(durable, events.len() as u64);
                    assert_eq!(error, None);
                }
                ref other => panic!("unexpected report {other:?}"),
            }
        }
        // And the shared pool stayed at its configured width the whole
        // time: tasks, not threads, per writer.
        assert_eq!(runtime.pool_stats().threads, 2);
    }

    #[test]
    fn a_tail_repair_at_open_is_published_on_the_unified_channel() {
        use std::io::Write as _;
        let dir = crate::test_support::unique_dir("pipe-torn");
        {
            let mut backend = crate::storage::EventLogBackend::open(&dir).unwrap();
            let repo = Repository::found("bx", vec![Principal::curator("c")]);
            backend.record(&repo.drain_events()).unwrap();
        }
        let torn = b"{\"Commented\":{\"id\":\"co";
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("events-0.jsonl"))
            .unwrap();
        file.write_all(torn).unwrap();
        drop(file);

        let runtime = Runtime::new(2);
        let backend = crate::storage::EventLogBackend::open(&dir).unwrap();
        let writer =
            BackgroundWriter::on_runtime(backend, PipelineConfig::default(), &runtime, "writer");
        let repaired = runtime.health().drain().into_iter().any(|entry| {
            entry.component == "writer"
                && matches!(
                    entry.report,
                    HealthReport::TailRepaired { ref file, bytes_dropped }
                        if file == "events-0.jsonl" && bytes_dropped == torn.len() as u64
                )
        });
        assert!(repaired, "the open-time repair reaches the unified channel");
        writer.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_surfaces_backend_errors_via_flush() {
        let writer = Arc::new(BackgroundWriter::with_config(
            BrokenBackend,
            PipelineConfig::group_commit(Duration::from_millis(2)),
        ));
        let repo = Repository::found("bx", vec![Principal::curator("c")]);
        writer.enqueue(&repo.drain_events());
        let err = writer.flush().unwrap_err();
        assert!(matches!(err, RepoError::Persist(ref m) if m.contains("disk on fire")));
        let health = writer.health();
        assert!(!health.healthy());
        assert!(writer.shutdown().is_err());
    }
}
