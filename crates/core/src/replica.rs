//! Read replicas: replication by shipping the event log.
//!
//! A [`Replica`] tails the directory an [`EventLogBackend`] writes —
//! locally, over a network file system, or rsynced from the primary —
//! and incrementally maintains three read-side materializations:
//!
//! * a [`RepositorySnapshot`] (the folded state, via
//!   [`crate::event::apply_event`]),
//! * a [`SearchIndex`] (via [`SearchIndex::apply`]), and
//! * the entry pages of a [`WikiSite`] (via [`WikiBx::sync_changed`]
//!   over the tailed events' dirty set),
//!
//! so a fleet of replicas can serve search and wiki reads while the
//! primary alone takes writes. [`Replica::catch_up`] is cheap to call in
//! a loop: within a log generation it applies only the events appended
//! since the last call; when the primary has checkpointed (the manifest
//! names a new generation), it *re-bases* — adopts the checkpoint state
//! and patches the index and site for exactly the records that differ.
//!
//! The replica is read-only and crash-tolerant the same way recovery is:
//! a torn final append in the tailed log is ignored until the primary's
//! next durable write, and a replica that read the log mid-checkpoint
//! simply re-bases on its next `catch_up`. Convergence with the primary
//! (snapshot, search results, rendered pages) is property-tested in
//! `tests/replica_convergence.rs` over random mutation scripts,
//! including across a simulated writer crash.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use bx_theory::Bx;

use crate::error::RepoError;
use crate::event::{apply_event, RepoEvent};
use crate::index::SearchIndex;
use crate::repo::{EntryId, RepositorySnapshot};
use crate::storage::EventLogBackend;
use crate::wiki::WikiSite;
use crate::wiki_bx::WikiBx;

/// What one [`Replica::catch_up`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CatchUp {
    /// Events applied from the tailed generation.
    pub events_applied: usize,
    /// Whether the replica re-based onto a new checkpoint generation.
    pub rebased: bool,
}

/// A read replica of an event-log directory; see the module docs.
pub struct Replica {
    dir: PathBuf,
    bx: WikiBx,
    snapshot: RepositorySnapshot,
    index: SearchIndex,
    site: WikiSite,
    /// The log generation currently being tailed.
    generation: String,
    /// Intact events of that generation already applied.
    applied: usize,
    /// Byte offset just past the last applied intact line — where the
    /// next `catch_up` starts reading, so polling an unchanged log costs
    /// a metadata check + empty read, not a re-parse of the whole file.
    offset: u64,
    /// (mtime, len) of `checkpoint.json` when it was last parsed — the
    /// manifest embeds a whole snapshot, so polls skip re-parsing it
    /// until this stamp moves.
    manifest_stamp: Option<(std::time::SystemTime, u64)>,
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("dir", &self.dir)
            .field("generation", &self.generation)
            .field("applied", &self.applied)
            .field("entries", &self.snapshot.records.len())
            .finish()
    }
}

impl Replica {
    /// Open a replica over `dir` and catch up to the log's current end.
    /// The directory may be empty (a primary that has not written yet).
    pub fn open(dir: impl Into<PathBuf>) -> Result<Replica, RepoError> {
        let dir = dir.into();
        // Stamp before parse: a checkpoint racing this open makes the
        // first catch_up conservatively re-parse, never go stale.
        let manifest_stamp = Self::stat_manifest(&dir);
        let (base, generation) = Self::read_base(&dir)?;
        let bx = WikiBx::new();
        let index = SearchIndex::build(&base);
        let site = bx.fwd(&base, &WikiSite::new());
        let mut replica = Replica {
            dir,
            bx,
            snapshot: base,
            index,
            site,
            generation,
            applied: 0,
            offset: 0,
            manifest_stamp,
        };
        replica.catch_up()?;
        Ok(replica)
    }

    fn read_base(dir: &Path) -> Result<(RepositorySnapshot, String), RepoError> {
        Ok(match EventLogBackend::read_manifest_in(dir)? {
            Some(manifest) => (manifest.state, manifest.log),
            None => (RepositorySnapshot::empty(""), "events-0.jsonl".to_string()),
        })
    }

    /// Cheap manifest change detector: `checkpoint.json`'s (mtime, len),
    /// or `None` when it is absent or unstatable. Two checkpoints inside
    /// one mtime tick with byte-identical length could in principle alias
    /// — an fsynced write + rename per checkpoint makes that window
    /// unrealistic, and the cost of a miss is one stale poll, repaired by
    /// the next manifest change.
    fn stat_manifest(dir: &Path) -> Option<(std::time::SystemTime, u64)> {
        let meta = std::fs::metadata(dir.join("checkpoint.json")).ok()?;
        Some((meta.modified().ok()?, meta.len()))
    }

    /// The intact events at or after byte `offset` in `path`, plus the
    /// offset just past the last complete line consumed (a torn trailing
    /// fragment stays unconsumed for a later call). `offset` always sits
    /// on a line boundary because it only ever advances past complete
    /// lines. `Ok(None)` means the file shrank below `offset` (foreign
    /// truncation) and the caller must re-base.
    fn read_tail(path: &Path, offset: u64) -> Result<Option<(Vec<RepoEvent>, u64)>, RepoError> {
        use std::io::{Read, Seek, SeekFrom};
        let io = |e: std::io::Error| RepoError::Persist(e.to_string());
        let mut file = match std::fs::File::open(path) {
            Ok(file) => file,
            // Absent file: an unwritten generation (fine at offset 0) or
            // a truncation (if we had already read past 0).
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok((offset == 0).then(|| (Vec::new(), 0)));
            }
            Err(e) => return Err(io(e)),
        };
        if file.metadata().map_err(io)?.len() < offset {
            return Ok(None);
        }
        file.seek(SeekFrom::Start(offset)).map_err(io)?;
        let mut text = String::new();
        file.read_to_string(&mut text).map_err(io)?;
        let intact_end = text.rfind('\n').map(|i| i + 1).unwrap_or(0);
        let mut events = Vec::new();
        for line in text[..intact_end].lines().filter(|l| !l.trim().is_empty()) {
            events.push(
                serde_json::from_str::<RepoEvent>(line)
                    .map_err(|e| RepoError::Persist(format!("corrupt event log line: {e}")))?,
            );
        }
        Ok(Some((events, offset + intact_end as u64)))
    }

    /// Pull the replica up to the log's current durable end. Within a
    /// generation this reads and applies only the bytes appended since
    /// the last call (polling an unchanged log is a metadata check);
    /// across a checkpoint it re-bases first. Safe to call at any
    /// cadence.
    pub fn catch_up(&mut self) -> Result<CatchUp, RepoError> {
        let mut progress = CatchUp::default();
        // Only re-parse the manifest (it embeds a whole snapshot) when
        // its stamp moved; the stamp is taken before the parse so a
        // racing checkpoint costs one conservative re-parse, never a
        // stale skip.
        let stamp = Self::stat_manifest(&self.dir);
        if stamp != self.manifest_stamp {
            let (base, generation) = Self::read_base(&self.dir)?;
            self.manifest_stamp = stamp;
            if generation != self.generation {
                // The primary checkpointed: adopt the manifest state,
                // patch the read-side materializations for what changed,
                // and start tailing the new generation from its
                // beginning.
                self.rebase(base);
                self.generation = generation;
                self.applied = 0;
                self.offset = 0;
                progress.rebased = true;
            }
        }
        let path = self.dir.join(&self.generation);
        let (events, new_offset) = match Self::read_tail(&path, self.offset)? {
            Some(tail) => tail,
            None => {
                // The tailed file shrank under us (a foreign truncation
                // beyond torn-tail repair). Rolling individual events
                // back is not possible; re-base onto what the directory
                // actually holds.
                let (all, end) = Self::read_tail(&path, 0)?.unwrap_or((Vec::new(), 0));
                let (base, _) = Self::read_base(&self.dir)?;
                self.applied = all.len();
                self.offset = end;
                self.rebase(crate::event::replay(base, &all));
                progress.rebased = true;
                return Ok(progress);
            }
        };
        let mut dirty: BTreeSet<EntryId> = BTreeSet::new();
        for event in &events {
            apply_event(&mut self.snapshot, event);
            self.index.apply(event);
            if event.changes_rendered_page() {
                if let Some(id) = event.touched() {
                    dirty.insert(id.clone());
                }
            }
            progress.events_applied += 1;
        }
        self.applied += events.len();
        self.offset = new_offset;
        if !dirty.is_empty() {
            self.bx.sync_changed(&self.snapshot, &mut self.site, &dirty);
        }
        Ok(progress)
    }

    /// Adopt `target` as the replica state, updating the index and site
    /// for exactly the records that differ from the current snapshot.
    fn rebase(&mut self, target: RepositorySnapshot) {
        let mut dirty: BTreeSet<EntryId> = BTreeSet::new();
        for (id, record) in &target.records {
            if self.snapshot.records.get(id) != Some(record) {
                self.index.upsert_entry(id, record.latest());
                dirty.insert(id.clone());
            }
        }
        // Records the target no longer has (impossible through the
        // curation API, which never deletes, but a foreign log might).
        for id in self.snapshot.records.keys() {
            if !target.records.contains_key(id) {
                self.index.remove_entry(id);
                dirty.insert(id.clone());
            }
        }
        self.snapshot = target;
        if !dirty.is_empty() {
            self.bx.sync_changed(&self.snapshot, &mut self.site, &dirty);
        }
    }

    /// The replicated state (equals the primary's snapshot after the
    /// primary flushed and this replica caught up).
    pub fn snapshot(&self) -> &RepositorySnapshot {
        &self.snapshot
    }

    /// The incrementally maintained search index.
    pub fn index(&self) -> &SearchIndex {
        &self.index
    }

    /// Conjunctive keyword search served from the replica.
    pub fn query(&self, terms: &[&str]) -> Vec<(EntryId, u32)> {
        self.index.query(terms)
    }

    /// The incrementally maintained wiki site (entry pages).
    pub fn site(&self) -> &WikiSite {
        &self.site
    }

    /// The directory being tailed.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Tail position: (current generation file, events applied from it).
    pub fn position(&self) -> (&str, usize) {
        (&self.generation, self.applied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::principal::Principal;
    use crate::repo::Repository;
    use crate::storage::{AutoCompactingEventLog, CompactionPolicy, StorageBackend};
    use crate::template::{ExampleEntry, ExampleType};
    use bx_theory::Bx;

    use crate::test_support::unique_dir;

    fn entry(title: &str) -> ExampleEntry {
        ExampleEntry::builder(title)
            .of_type(ExampleType::Precise)
            .overview("O.")
            .models("M.")
            .consistency("C.")
            .restoration("F.", "B.")
            .discussion("D.")
            .author("alice")
            .build()
            .unwrap()
    }

    #[test]
    fn replica_tails_within_a_generation() {
        let dir = unique_dir("tail");
        let r = Repository::found("bx", vec![Principal::curator("c")]);
        r.register(Principal::member("alice")).unwrap();
        let mut backend = crate::storage::EventLogBackend::open(&dir).unwrap();
        backend.record(&r.drain_events()).unwrap();

        let mut replica = Replica::open(&dir).unwrap();
        assert_eq!(replica.snapshot(), &r.snapshot());
        assert!(replica.query(&["composers"]).is_empty());

        let id = r.contribute("alice", entry("COMPOSERS")).unwrap();
        r.comment("alice", &id, "2014-03-28", "tailed").unwrap();
        backend.record(&r.drain_events()).unwrap();

        let progress = replica.catch_up().unwrap();
        assert_eq!(progress.events_applied, 2);
        assert!(!progress.rebased);
        assert_eq!(replica.snapshot(), &r.snapshot());
        assert_eq!(replica.query(&["composers"]).len(), 1);
        assert!(replica.bx.consistent(replica.snapshot(), replica.site()));
        // Idempotent when nothing new arrived.
        assert_eq!(replica.catch_up().unwrap(), CatchUp::default());
    }

    #[test]
    fn replica_rebases_across_a_checkpoint() {
        let dir = unique_dir("rebase");
        let r = Repository::found("bx", vec![Principal::curator("c")]);
        r.register(Principal::member("alice")).unwrap();
        let mut backend = AutoCompactingEventLog::open(
            &dir,
            CompactionPolicy {
                checkpoint_every: 1_000_000, // manual checkpoints only
            },
        )
        .unwrap();
        backend.record(&r.drain_events()).unwrap();
        let mut replica = Replica::open(&dir).unwrap();

        // Mutations + a checkpoint the replica has not seen yet.
        let id = r.contribute("alice", entry("COMPOSERS")).unwrap();
        backend.record(&r.drain_events()).unwrap();
        backend.checkpoint(&r.snapshot()).unwrap();
        r.comment("alice", &id, "2014-03-28", "post-checkpoint")
            .unwrap();
        backend.record(&r.drain_events()).unwrap();

        let progress = replica.catch_up().unwrap();
        assert!(progress.rebased, "the manifest moved to a new generation");
        assert_eq!(progress.events_applied, 1, "only the post-checkpoint tail");
        assert_eq!(replica.snapshot(), &r.snapshot());
        assert_eq!(replica.index(), &SearchIndex::build(&r.snapshot()));
        assert!(replica.bx.consistent(replica.snapshot(), replica.site()));
    }

    #[test]
    fn replica_rebases_when_the_log_shrinks_under_it() {
        let dir = unique_dir("shrink");
        let r = Repository::found("bx", vec![Principal::curator("c")]);
        r.register(Principal::member("alice")).unwrap();
        r.contribute("alice", entry("COMPOSERS")).unwrap();
        r.contribute("alice", entry("DATES")).unwrap();
        let mut backend = crate::storage::EventLogBackend::open(&dir).unwrap();
        let events = r.drain_events();
        backend.record(&events).unwrap();
        let mut replica = Replica::open(&dir).unwrap();
        assert_eq!(replica.snapshot(), &r.snapshot());

        // A foreign hand truncates the log to its first three lines.
        let log = dir.join("events-0.jsonl");
        let text = std::fs::read_to_string(&log).unwrap();
        let keep: String = text.lines().take(3).map(|l| format!("{l}\n")).collect();
        std::fs::write(&log, &keep).unwrap();

        let progress = replica.catch_up().unwrap();
        assert!(progress.rebased, "a shrunken log forces a re-base");
        let expected = crate::event::replay(RepositorySnapshot::empty(""), &events[..3]);
        assert_eq!(replica.snapshot(), &expected);
        assert_eq!(replica.index(), &SearchIndex::build(&expected));
        assert!(replica.bx.consistent(replica.snapshot(), replica.site()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replica_ignores_a_torn_tail_until_it_heals() {
        let dir = unique_dir("torn");
        let r = Repository::found("bx", vec![Principal::curator("c")]);
        r.register(Principal::member("alice")).unwrap();
        r.contribute("alice", entry("COMPOSERS")).unwrap();
        let mut backend = crate::storage::EventLogBackend::open(&dir).unwrap();
        let events = r.drain_events();
        backend.record(&events).unwrap();
        // A torn append lands after the intact events.
        let log = dir.join("events-0.jsonl");
        let mut text = std::fs::read_to_string(&log).unwrap();
        text.push_str("{\"Commented\":{\"id\":\"co");
        std::fs::write(&log, text).unwrap();

        let mut replica = Replica::open(&dir).unwrap();
        assert_eq!(replica.snapshot(), &r.snapshot());
        let (_, applied) = replica.position();
        assert_eq!(applied, events.len(), "the torn fragment was not counted");

        // The writer reopens (repairing the tail) and appends for real.
        let mut backend = crate::storage::EventLogBackend::open(&dir).unwrap();
        r.comment(
            "alice",
            &EntryId::from_title("COMPOSERS"),
            "2014-03-28",
            "healed",
        )
        .unwrap();
        backend.record(&r.drain_events()).unwrap();
        let progress = replica.catch_up().unwrap();
        assert_eq!(progress.events_applied, 1);
        assert_eq!(replica.snapshot(), &r.snapshot());
    }
}
