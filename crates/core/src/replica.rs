//! Read replicas and federation: replication by shipping the event log.
//!
//! ## Single-primary replicas
//!
//! A [`Replica`] tails the directory an [`EventLogBackend`] writes —
//! locally, over a network file system, or rsynced from the primary —
//! and incrementally maintains three read-side materializations:
//!
//! * a [`RepositorySnapshot`] (the folded state, via
//!   [`crate::event::apply_event`]),
//! * a [`SearchIndex`] (via [`SearchIndex::apply`]), and
//! * the entry pages of a [`WikiSite`] (via [`WikiBx::sync_changed`]
//!   over the tailed events' dirty set),
//!
//! so a fleet of replicas can serve search, wiki, citation and manuscript
//! reads while the primary alone takes writes. [`Replica::catch_up`] is
//! cheap to call in a loop: within a log generation it applies only the
//! events appended since the last call; when the primary has checkpointed
//! (the manifest names a new generation), it *re-bases* — adopts the
//! checkpoint state and patches the index and site for exactly the
//! records that differ. The tailing state machine itself is [`LogTail`],
//! shared with the federation below.
//!
//! ## Multi-primary federation
//!
//! A [`Federation`] is one read node tailing **N independent primaries**
//! (each its own event-log directory and [`LogTail`]) and folding them
//! into a single merged snapshot, search index and wiki site. Every
//! record and account is namespaced by its [`SourceId`]
//! (`"<source>/<id>"`), so colliding entry ids from different primaries
//! coexist instead of clobbering each other. Per source, the federation
//! re-bases across checkpoint generations exactly as a single replica
//! does. The merged state it converges to is specified by the pure
//! [`federate_snapshots`] fold, which the convergence property tests
//! (`tests/federation_convergence.rs`) pin it against under interleaved
//! writes, compaction, killed writers and torn appends.
//!
//! [`ReplicaDaemon`] wraps a federation in a background polling thread
//! ([`DaemonConfig`] sets the cadence) with clean start/stop,
//! [`ReplicaDaemon::force_catch_up`], sticky error surfacing and
//! [`DaemonStats`] (polls, events applied, rebases, per-source lag).
//!
//! ## Fault supervision
//!
//! Every federated source is watched by a circuit breaker
//! ([`crate::supervise`]): a failing source degrades, backs off under
//! the federation's [`RetryPolicy`], and is quarantined after repeated
//! failures, while [`Federation::catch_up`] **continues past it** —
//! healthy sources keep converging and the outcome carries the sick
//! sources' typed errors ([`FederationCatchUp::errors`]) instead of
//! aborting. Serving APIs keep answering from the last good merged
//! state; [`DaemonStats::source_health`] exposes per-source staleness.
//! Opting in to [`RecoveryPolicy::SalvagePrefix`] lets a quarantined
//! source that failed with a corruption error reopen from its intact
//! prefix, reporting exactly what was dropped as a [`SalvageReport`] —
//! never a silent skip. The default remains fail-stop: corruption keeps
//! the source quarantined until an operator intervenes.
//!
//! The replica side is read-only and crash-tolerant the same way
//! recovery is: a torn final append in a tailed log is ignored until the
//! primary's next durable write, and a reader that observed a
//! mid-checkpoint directory simply re-bases on its next poll. A source
//! directory that disappears after it has been tailed surfaces as a
//! typed [`RepoError::SourceUnavailable`], never a panic.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, Weak};
use std::time::{Duration, Instant};

use bx_theory::Bx;

use crate::cite;
use crate::error::RepoError;
use crate::event::{apply_event, dirty_set, replay, replay_parallel_with, EventSink, RepoEvent};
use crate::index::SearchIndex;
use crate::manuscript::{export_manuscript, ManuscriptOptions};
use crate::principal::Principal;
use crate::repo::{EntryId, EntryRecord, RepositorySnapshot};
use crate::runtime::{HealthReport, RestoreOptions, Runtime, RuntimeHealth, TimerTask, WorkerPool};
use crate::storage::EventLogBackend;
use crate::supervise::{
    RecoveryPolicy, RetryPolicy, SalvageReport, SourceHealth, SourceStatus, SourceSupervisor,
};
use crate::template::slug_of;
use crate::version::Version;
use crate::wiki::{render_entry, WikiSite};
use crate::wiki_bx::WikiBx;

/// What one [`Replica::catch_up`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CatchUp {
    /// Events applied from the tailed generation.
    pub events_applied: usize,
    /// Whether the replica re-based onto a new checkpoint generation.
    pub rebased: bool,
}

/// What one [`LogTail::poll`] observed, for the caller to fold into its
/// materializations: an optional new base to re-base onto, then events to
/// apply incrementally on top.
#[derive(Debug, Clone, Default)]
pub struct TailProgress {
    /// When present, the caller must adopt this state before applying
    /// `events` (the primary checkpointed, or the log shrank under us).
    pub new_base: Option<RepositorySnapshot>,
    /// Intact events appended since the last poll, in log order.
    pub events: Vec<RepoEvent>,
    /// Whether this poll crossed a checkpoint generation (or recovered
    /// from a foreign truncation).
    pub rebased: bool,
}

/// The tailing state machine over one event-log directory: byte-offset
/// incremental reads within a generation, manifest-stamp change detection,
/// re-base across checkpoint generations, torn-tail tolerance, and a typed
/// error when a directory that was being tailed disappears. [`Replica`]
/// runs one of these; [`Federation`] runs one per source.
#[derive(Debug)]
pub struct LogTail {
    dir: PathBuf,
    /// The log generation currently being tailed.
    generation: String,
    /// Intact events of that generation already applied.
    applied: usize,
    /// Byte offset just past the last applied intact line — where the
    /// next poll starts reading, so polling an unchanged log costs a
    /// metadata check + empty read, not a re-parse of the whole file.
    offset: u64,
    /// (mtime, len) of `checkpoint.json` when it was last parsed — the
    /// manifest embeds a whole snapshot, so polls skip re-parsing it
    /// until this stamp moves.
    manifest_stamp: Option<(std::time::SystemTime, u64)>,
}

impl LogTail {
    /// Open a tail over `dir` (which may not exist yet — a primary that
    /// has not written) and return it with the base state the caller
    /// should materialize before the first [`LogTail::poll`].
    pub fn open(dir: impl Into<PathBuf>) -> Result<(LogTail, RepositorySnapshot), RepoError> {
        let dir = dir.into();
        // Stamp before parse: a checkpoint racing this open makes the
        // first poll conservatively re-parse, never go stale.
        let manifest_stamp = Self::stat_manifest(&dir);
        let (base, generation) = EventLogBackend::read_state_in(&dir)?;
        Ok((
            LogTail {
                dir,
                generation,
                applied: 0,
                offset: 0,
                manifest_stamp,
            },
            base,
        ))
    }

    /// The directory being tailed.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Tail position: (current generation file, events applied from it).
    pub fn position(&self) -> (&str, usize) {
        (&self.generation, self.applied)
    }

    /// Bytes sitting in the current generation log beyond what has been
    /// applied — the replication lag in bytes (0 when fully caught up or
    /// the log is absent). A torn trailing fragment counts as lag until
    /// the writer's next durable append resolves it. For a binary
    /// generation the log spans segment files, so the length is the sum
    /// of segment sizes — still metadata-only.
    pub fn lag_bytes(&self) -> u64 {
        if crate::binlog::is_binary_generation(&self.generation) {
            return crate::binlog::generation_len(&self.dir, &self.generation)
                .map(|len| len.saturating_sub(self.offset))
                .unwrap_or(0);
        }
        std::fs::metadata(self.dir.join(&self.generation))
            .map(|m| m.len().saturating_sub(self.offset))
            .unwrap_or(0)
    }

    /// Has this tail ever observed primary state? (Distinguishes "the
    /// primary has not created its directory yet" from "the directory we
    /// were tailing is gone".)
    fn observed(&self) -> bool {
        self.manifest_stamp.is_some() || self.offset > 0 || self.applied > 0
    }

    /// Cheap manifest change detector: `checkpoint.json`'s (mtime, len),
    /// or `None` when it is absent or unstatable. Two checkpoints inside
    /// one mtime tick with byte-identical length could in principle alias
    /// — an fsynced write + rename per checkpoint makes that window
    /// unrealistic, and the cost of a miss is one stale poll, repaired by
    /// the next manifest change.
    fn stat_manifest(dir: &Path) -> Option<(std::time::SystemTime, u64)> {
        let meta = std::fs::metadata(dir.join("checkpoint.json")).ok()?;
        Some((meta.modified().ok()?, meta.len()))
    }

    /// The intact events at or after byte `offset` in `path`, plus the
    /// offset just past the last complete line consumed (a torn trailing
    /// fragment stays unconsumed for a later call). `offset` always sits
    /// on a line boundary because it only ever advances past complete
    /// lines. `Ok(None)` means the file shrank below `offset` (foreign
    /// truncation) and the caller must re-base.
    fn read_tail(path: &Path, offset: u64) -> Result<Option<(Vec<RepoEvent>, u64)>, RepoError> {
        use std::io::{Read, Seek, SeekFrom};
        let io = |e: std::io::Error| RepoError::Persist(e.to_string());
        let mut file = match std::fs::File::open(path) {
            Ok(file) => file,
            // Absent file: an unwritten generation (fine at offset 0) or
            // a truncation (if we had already read past 0).
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok((offset == 0).then(|| (Vec::new(), 0)));
            }
            Err(e) => return Err(io(e)),
        };
        if file.metadata().map_err(io)?.len() < offset {
            return Ok(None);
        }
        file.seek(SeekFrom::Start(offset)).map_err(io)?;
        let mut text = String::new();
        file.read_to_string(&mut text).map_err(io)?;
        let intact_end = text.rfind('\n').map(|i| i + 1).unwrap_or(0);
        let segment = crate::storage::segment_name(path);
        let mut events = Vec::new();
        let mut pos = 0usize;
        for line in text[..intact_end].split_inclusive('\n') {
            let at = pos;
            pos += line.len();
            let body = line.trim_end_matches(['\n', '\r']);
            if body.trim().is_empty() {
                continue;
            }
            events.push(serde_json::from_str::<RepoEvent>(body).map_err(|e| {
                // Offset within the *file*, not the tail read: exactly
                // where a SalvagePrefix recovery truncates.
                crate::storage::corrupt_jsonl_line(&segment, offset + at as u64, &e)
            })?);
        }
        Ok(Some((events, offset + intact_end as u64)))
    }

    /// [`Self::read_tail`] at offset 0 with the parse fanned out over
    /// `pool`: the whole file is read once and its complete lines decode
    /// in newline-aligned chunks. Identical contract to
    /// `read_tail(path, 0)` — a torn trailing fragment stays unconsumed
    /// (unlike a primary's own recovery, a tail never adopts a
    /// half-written line), an absent file is an unwritten generation, and
    /// the first corrupt line *in log order* is the one reported.
    fn read_tail_parallel(
        path: &Path,
        pool: &WorkerPool,
    ) -> Result<(Vec<RepoEvent>, u64), RepoError> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
            Err(e) => return Err(RepoError::Persist(e.to_string())),
        };
        let text = Arc::new(text);
        let intact_end = text.rfind('\n').map(|i| i + 1).unwrap_or(0);
        let events = EventLogBackend::parse_jsonl_parallel(
            &text,
            intact_end,
            &crate::storage::segment_name(path),
            pool,
        )?;
        Ok((events, intact_end as u64))
    }

    /// [`Self::read_tail`] dispatched on the generation's on-disk format:
    /// JSONL tails one line-oriented file, binary tails the generation's
    /// segment run by global byte offset ([`crate::binlog::read_tail`]).
    /// Both share the contract — events at/after `offset` plus the new
    /// offset, `Ok(None)` on a shrink that demands a re-base, and an
    /// unchanged log costing only metadata stats.
    fn read_generation_tail(
        &self,
        offset: u64,
    ) -> Result<Option<(Vec<RepoEvent>, u64)>, RepoError> {
        if crate::binlog::is_binary_generation(&self.generation) {
            crate::binlog::read_tail(&self.dir, &self.generation, offset)
        } else {
            Self::read_tail(&self.dir.join(&self.generation), offset)
        }
    }

    /// [`Self::read_generation_tail`], decoding on `pool` when the read
    /// starts from the beginning of the generation (the cold-open /
    /// re-base case, where the whole log must be decoded anyway). A
    /// nonzero offset is an incremental tail — typically a handful of
    /// fresh events — and stays on the sequential path.
    fn read_generation_tail_pooled(
        &self,
        offset: u64,
        pool: Option<&WorkerPool>,
    ) -> Result<Option<(Vec<RepoEvent>, u64)>, RepoError> {
        if let Some(pool) = pool {
            if offset == 0 {
                if crate::binlog::is_binary_generation(&self.generation) {
                    return crate::binlog::read_generation_parallel(
                        &self.dir,
                        &self.generation,
                        pool,
                    )
                    .map(Some);
                }
                return Self::read_tail_parallel(&self.dir.join(&self.generation), pool).map(Some);
            }
        }
        self.read_generation_tail(offset)
    }

    /// Observe the log's current durable end. Within a generation this
    /// reads only the bytes appended since the last poll (polling an
    /// unchanged log is a metadata check); across a checkpoint it reports
    /// the new base to re-base onto. Safe to call at any cadence.
    pub fn poll(&mut self) -> Result<TailProgress, RepoError> {
        self.poll_with(None)
    }

    /// [`LogTail::poll`] with whole-generation decodes fanned out over
    /// `pool` — the cold-open path of [`Replica::open_with`] and
    /// [`Federation::open_with`]. Only reads that start at the beginning
    /// of a generation parallelise; incremental polls of a live tail are
    /// small and stay sequential. Observed behaviour is identical to
    /// [`LogTail::poll`] in every case, including which error a corrupt
    /// log surfaces.
    pub fn poll_with(&mut self, pool: Option<&WorkerPool>) -> Result<TailProgress, RepoError> {
        let mut progress = TailProgress::default();
        if !self.dir.exists() {
            if self.observed() {
                // We were tailing real state and the whole directory is
                // gone — not a torn tail, not a slow primary. Surface it
                // typed; the tail keeps its position so a restored
                // directory can be polled again.
                return Err(RepoError::SourceUnavailable {
                    dir: self.dir.display().to_string(),
                });
            }
            // The primary simply has not created its directory yet.
            return Ok(progress);
        }
        // Only re-parse the manifest (it embeds a whole snapshot) when
        // its stamp moved; the stamp is taken before the parse so a
        // racing checkpoint costs one conservative re-parse, never a
        // stale skip.
        let stamp = Self::stat_manifest(&self.dir);
        if stamp.is_none() && self.manifest_stamp.is_some() {
            // A manifest we had parsed is gone while the directory
            // remains (mid-rsync, a crashed compaction, a stray delete).
            // A healthy primary never removes its manifest, and falling
            // through would re-base onto the no-manifest default — an
            // empty snapshot. Surface it typed instead, keeping position
            // and state so a restored manifest resumes cleanly.
            return Err(RepoError::SourceUnavailable {
                dir: self.dir.display().to_string(),
            });
        }
        if stamp != self.manifest_stamp {
            let (base, generation) = EventLogBackend::read_state_in(&self.dir)?;
            self.manifest_stamp = stamp;
            if generation != self.generation {
                // The primary checkpointed: the caller adopts the
                // manifest state and we start tailing the new generation
                // from its beginning.
                self.generation = generation;
                self.applied = 0;
                self.offset = 0;
                progress.new_base = Some(base);
                progress.rebased = true;
            }
        }
        match self.read_generation_tail_pooled(self.offset, pool)? {
            Some((events, new_offset)) => {
                self.applied += events.len();
                self.offset = new_offset;
                progress.events = events;
            }
            None => {
                // The tailed log shrank under us (a foreign truncation
                // beyond torn-tail repair). Rolling individual events
                // back is not possible; re-base onto what the directory
                // actually holds.
                let (all, end) = self
                    .read_generation_tail_pooled(0, pool)?
                    .unwrap_or((Vec::new(), 0));
                let (base, _) = EventLogBackend::read_state_in(&self.dir)?;
                self.applied = all.len();
                self.offset = end;
                progress.new_base = Some(replay(base, &all));
                progress.events = Vec::new();
                progress.rebased = true;
            }
        }
        Ok(progress)
    }
}

// == Parallel cold open ==
//
// The sequential cold open builds its derived state in two strokes: the
// initial `fwd(base, empty)` gives every base entry's page its first
// revision, then one batched `sync_changed` over the tailed events'
// dirty set gives each dirty page its (at most one) second revision —
// `set_page` dedups unchanged content. Both strokes are per-entry and
// entries' pages are distinct, so the parallel open reproduces them
// per-entry on the pool and the result is byte-for-byte identical:
// render every base record (revision one), replay, then per final
// record index its latest version and render it again iff dirty.
// `tests/restore_parallel.rs` pins this equivalence over random
// histories.

/// Split `ids` into at most `shards` contiguous chunks of near-equal
/// size (none empty). Contiguity keeps the gather deterministic: shard
/// outputs concatenate back in id order.
fn shard_ids(ids: Vec<EntryId>, shards: usize) -> Vec<Vec<EntryId>> {
    if ids.is_empty() {
        return Vec::new();
    }
    let per = ids.len().div_ceil(shards.max(1));
    ids.chunks(per).map(<[EntryId]>::to_vec).collect()
}

/// Render the pages of `ids` (present in `snapshot`) across the pool,
/// returning `(page name, content)` pairs in id order.
fn render_pages_parallel(
    snapshot: &Arc<RepositorySnapshot>,
    ids: Vec<EntryId>,
    pool: &WorkerPool,
) -> Vec<(String, String)> {
    type Rendered = Vec<(String, String)>;
    let jobs: Vec<Box<dyn FnOnce() -> Rendered + Send>> = shard_ids(ids, pool.threads())
        .into_iter()
        .map(|shard| {
            let snapshot = Arc::clone(snapshot);
            Box::new(move || {
                shard
                    .iter()
                    .map(|id| {
                        let record = &snapshot.records[id];
                        (id.page_name(), render_entry(record.latest()))
                    })
                    .collect()
            }) as Box<dyn FnOnce() -> Rendered + Send>
        })
        .collect();
    pool.scatter(jobs).into_iter().flatten().collect()
}

/// Rebuild the search index and wiki site of a cold open on the pool:
/// `base_pages` are the pre-replay renders (each page's first revision),
/// every record of `final_snapshot` is indexed from its latest version,
/// and `dirty` pages are re-rendered from the final state (their second
/// revision, deduped away when the content did not change). Equals the
/// sequential open's `SearchIndex::build` + incremental applies and
/// `fwd` + `sync_changed` exactly; see the section comment above.
fn derived_parallel(
    base_pages: Vec<(String, String)>,
    final_snapshot: &Arc<RepositorySnapshot>,
    dirty: BTreeSet<EntryId>,
    pool: &WorkerPool,
) -> (SearchIndex, WikiSite) {
    let ids: Vec<EntryId> = final_snapshot.records.keys().cloned().collect();
    let dirty = Arc::new(dirty);
    type Partial = (SearchIndex, Vec<(String, String)>);
    let jobs: Vec<Box<dyn FnOnce() -> Partial + Send>> = shard_ids(ids, pool.threads())
        .into_iter()
        .map(|shard| {
            let snapshot = Arc::clone(final_snapshot);
            let dirty = Arc::clone(&dirty);
            Box::new(move || {
                let mut index = SearchIndex::default();
                let mut pages = Vec::new();
                for id in &shard {
                    let record = &snapshot.records[id];
                    index.upsert_entry(id, record.latest());
                    if dirty.contains(id) {
                        pages.push((id.page_name(), render_entry(record.latest())));
                    }
                }
                (index, pages)
            }) as Box<dyn FnOnce() -> Partial + Send>
        })
        .collect();
    let partials = pool.scatter(jobs);
    let mut index = SearchIndex::default();
    let mut site = WikiSite::new();
    // Base renders first: they are each page's first revision.
    for (page, content) in base_pages {
        site.set_page(&page, content);
    }
    for (partial, pages) in partials {
        index.absorb(partial);
        for (page, content) in pages {
            site.set_page(&page, content);
        }
    }
    (index, site)
}

/// Reclaim a snapshot shared with pool jobs. [`WorkerPool::scatter`]
/// returns only after every job has run to completion (dropping its
/// `Arc` clone), so the unwrap succeeds; the clone fallback is pure
/// belt-and-braces.
fn unshare(snapshot: Arc<RepositorySnapshot>) -> RepositorySnapshot {
    Arc::try_unwrap(snapshot).unwrap_or_else(|shared| (*shared).clone())
}

/// A read replica of one event-log directory; see the module docs.
pub struct Replica {
    tail: LogTail,
    bx: WikiBx,
    snapshot: RepositorySnapshot,
    index: SearchIndex,
    site: WikiSite,
    /// Sinks observing the replicated stream (e.g. a lint engine): each
    /// gets [`EventSink::rebased`] when the replica adopts a new base and
    /// [`EventSink::accept`] for every event applied on top.
    observers: Vec<Arc<dyn EventSink>>,
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("dir", &self.tail.dir)
            .field("generation", &self.tail.generation)
            .field("applied", &self.tail.applied)
            .field("entries", &self.snapshot.records.len())
            .finish()
    }
}

impl Replica {
    /// Open a replica over `dir` and catch up to the log's current end.
    /// The directory may be empty or absent (a primary that has not
    /// written yet).
    pub fn open(dir: impl Into<PathBuf>) -> Result<Replica, RepoError> {
        let (tail, base) = LogTail::open(dir)?;
        let bx = WikiBx::new();
        let index = SearchIndex::build(&base);
        let site = bx.fwd(&base, &WikiSite::new());
        let mut replica = Replica {
            tail,
            bx,
            snapshot: base,
            index,
            site,
            observers: Vec::new(),
        };
        replica.catch_up()?;
        Ok(replica)
    }

    /// [`Replica::open`] with decode, replay and derived-state rebuild
    /// fanned out over [`RestoreOptions::threads`] workers. With
    /// `threads: 1` this *is* [`Replica::open`] (no pool is created);
    /// with more, the snapshot, index and site of a quiescent directory
    /// are byte-for-byte what the sequential open produces, including
    /// which error a corrupt log surfaces
    /// (`tests/restore_parallel.rs`).
    pub fn open_with(
        dir: impl Into<PathBuf>,
        options: RestoreOptions,
    ) -> Result<Replica, RepoError> {
        let dir = dir.into();
        if !options.is_parallel() {
            return Self::open(dir);
        }
        let pool = WorkerPool::new(options.threads);
        Self::open_pooled(dir, &pool)
    }

    /// [`Replica::open_with`] on a shared [`Runtime`]'s pool instead of
    /// a pool of its own — the cold-open path for nodes that host many
    /// replicas on one bounded set of workers.
    pub fn open_on(dir: impl Into<PathBuf>, runtime: &Arc<Runtime>) -> Result<Replica, RepoError> {
        Self::open_pooled(dir.into(), runtime.pool())
    }

    fn open_pooled(dir: PathBuf, pool: &WorkerPool) -> Result<Replica, RepoError> {
        let (mut tail, base) = LogTail::open(dir)?;
        let mut progress = tail.poll_with(Some(pool))?;
        // A checkpoint racing the open lands as a new base on the first
        // poll, exactly as in the sequential open's first catch-up.
        let base = Arc::new(progress.new_base.take().unwrap_or(base));
        let events = std::mem::take(&mut progress.events);
        let dirty = dirty_set(&events);
        let base_ids: Vec<EntryId> = base.records.keys().cloned().collect();
        let base_pages = render_pages_parallel(&base, base_ids, pool);
        let snapshot = Arc::new(crate::event::replay_parallel(unshare(base), events, pool));
        let (index, site) = derived_parallel(base_pages, &snapshot, dirty, pool);
        Ok(Replica {
            tail,
            bx: WikiBx::new(),
            snapshot: unshare(snapshot),
            index,
            site,
            observers: Vec::new(),
        })
    }

    /// Subscribe a sink to the replicated stream. The sink is backfilled
    /// immediately with [`EventSink::rebased`] over the current snapshot
    /// (so a derived view starts from the state already tailed), then
    /// receives [`EventSink::accept`] for every event each later
    /// [`Replica::catch_up`] applies, and [`EventSink::rebased`] again
    /// whenever the replica adopts a new base (checkpoint crossed or
    /// truncation recovered). Sinks run on the catch-up caller's thread.
    pub fn subscribe(&mut self, sink: Arc<dyn EventSink>) {
        sink.rebased(&self.snapshot);
        self.observers.push(sink);
    }

    /// Pull the replica up to the log's current durable end. Within a
    /// generation this applies only the events appended since the last
    /// call; across a checkpoint it re-bases first. Safe to call at any
    /// cadence.
    pub fn catch_up(&mut self) -> Result<CatchUp, RepoError> {
        let progress = self.tail.poll()?;
        if let Some(base) = progress.new_base {
            self.rebase(base);
            for observer in &self.observers {
                observer.rebased(&self.snapshot);
            }
        }
        let mut dirty: BTreeSet<EntryId> = BTreeSet::new();
        for event in &progress.events {
            apply_event(&mut self.snapshot, event);
            self.index.apply(event);
            for observer in &self.observers {
                observer.accept(event);
            }
            if event.changes_rendered_page() {
                if let Some(id) = event.touched() {
                    dirty.insert(id.clone());
                }
            }
        }
        if !dirty.is_empty() {
            self.bx.sync_changed(&self.snapshot, &mut self.site, &dirty);
        }
        Ok(CatchUp {
            events_applied: progress.events.len(),
            rebased: progress.rebased,
        })
    }

    /// Adopt `target` as the replica state, updating the index and site
    /// for exactly the records that differ from the current snapshot.
    fn rebase(&mut self, target: RepositorySnapshot) {
        let mut dirty: BTreeSet<EntryId> = BTreeSet::new();
        for (id, record) in &target.records {
            if self.snapshot.records.get(id) != Some(record) {
                self.index.upsert_entry(id, record.latest());
                dirty.insert(id.clone());
            }
        }
        // Records the target no longer has (impossible through the
        // curation API, which never deletes, but a foreign log might).
        for id in self.snapshot.records.keys() {
            if !target.records.contains_key(id) {
                self.index.remove_entry(id);
                dirty.insert(id.clone());
            }
        }
        self.snapshot = target;
        if !dirty.is_empty() {
            self.bx.sync_changed(&self.snapshot, &mut self.site, &dirty);
        }
    }

    /// The replicated state (equals the primary's snapshot after the
    /// primary flushed and this replica caught up).
    pub fn snapshot(&self) -> &RepositorySnapshot {
        &self.snapshot
    }

    /// The incrementally maintained search index.
    pub fn index(&self) -> &SearchIndex {
        &self.index
    }

    /// Conjunctive keyword search served from the replica.
    pub fn query(&self, terms: &[&str]) -> Vec<(EntryId, u32)> {
        self.index.query(terms)
    }

    /// The incrementally maintained wiki site (entry pages).
    pub fn site(&self) -> &WikiSite {
        &self.site
    }

    /// The recommended citation for one replicated entry (latest or
    /// pinned version), served without touching the primary.
    pub fn cite(&self, id: &EntryId, version: Option<Version>) -> Result<String, RepoError> {
        cite::cite_in(&self.snapshot, id, version)
    }

    /// Citations for every replicated entry's latest version, in id
    /// order.
    pub fn citations(&self) -> Vec<String> {
        cite::citations(&self.snapshot)
    }

    /// The archival manuscript export (§5.2) over the replicated state.
    pub fn export_manuscript(&self, options: ManuscriptOptions) -> String {
        export_manuscript(&self.snapshot, options)
    }

    /// The directory being tailed.
    pub fn dir(&self) -> &Path {
        self.tail.dir()
    }

    /// Tail position: (current generation file, events applied from it).
    pub fn position(&self) -> (&str, usize) {
        self.tail.position()
    }
}

/// A short, slug-shaped identifier for one primary feeding a
/// [`Federation`]. Source ids namespace everything a source contributes
/// to the merged state: entry `composers` from source `eu` becomes
/// `eu/composers`, account `alice` becomes `eu/alice`. The separator can
/// never appear inside a source id (construction slugifies), so distinct
/// sources can never produce colliding namespaced keys.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SourceId(String);

impl SourceId {
    /// Build a source id from any label; the label is slugified
    /// (lowercase alphanumerics and dashes), so `"EU mirror"` becomes
    /// `eu-mirror`. An empty slug is rejected at [`Federation::open`].
    pub fn new(label: &str) -> SourceId {
        SourceId(slug_of(label))
    }

    /// The slug text.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The namespaced form of one of this source's entry ids.
    pub fn entry_id(&self, id: &EntryId) -> EntryId {
        EntryId(format!("{}/{}", self.0, id.as_str()))
    }

    /// The namespaced form of one of this source's account names.
    pub fn account(&self, name: &str) -> String {
        format!("{}/{name}", self.0)
    }

    /// Does a namespaced entry id belong to this source?
    pub fn owns(&self, id: &EntryId) -> bool {
        id.as_str()
            .strip_prefix(&self.0)
            .is_some_and(|rest| rest.starts_with('/'))
    }

    /// The namespaced-key prefix of this source (`"<source>/"`).
    fn prefix(&self) -> String {
        format!("{}/", self.0)
    }
}

impl std::fmt::Display for SourceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Rewrite one source event into the federation's namespace: entry ids
/// and account names gain the `<source>/` prefix; entry payloads (titles,
/// authors, comments) pass through untouched — they are display data, not
/// keys. The result is what the merged snapshot, index and site consume.
fn namespace_event(source: &SourceId, event: &RepoEvent) -> RepoEvent {
    use crate::event::{Commented, EntryDelta, EntryRef, Founded, Registered, RoleGranted};
    let ns_principal = |p: &Principal| Principal {
        name: source.account(&p.name),
        ..p.clone()
    };
    match event {
        RepoEvent::Founded(f) => RepoEvent::Founded(Founded {
            name: f.name.clone(),
            curators: f.curators.iter().map(ns_principal).collect(),
        }),
        RepoEvent::Registered(r) => RepoEvent::Registered(Registered {
            principal: ns_principal(&r.principal),
        }),
        RepoEvent::RoleGranted(g) => RepoEvent::RoleGranted(RoleGranted {
            account: source.account(&g.account),
            role: g.role,
        }),
        RepoEvent::Contributed(d) => RepoEvent::Contributed(EntryDelta {
            id: source.entry_id(&d.id),
            entry: d.entry.clone(),
        }),
        RepoEvent::Revised(d) => RepoEvent::Revised(EntryDelta {
            id: source.entry_id(&d.id),
            entry: d.entry.clone(),
        }),
        RepoEvent::Approved(d) => RepoEvent::Approved(EntryDelta {
            id: source.entry_id(&d.id),
            entry: d.entry.clone(),
        }),
        RepoEvent::Commented(c) => RepoEvent::Commented(Commented {
            id: source.entry_id(&c.id),
            comment: c.comment.clone(),
        }),
        RepoEvent::ReviewRequested(r) => RepoEvent::ReviewRequested(EntryRef {
            id: source.entry_id(&r.id),
        }),
        RepoEvent::ChangesRequested(r) => RepoEvent::ChangesRequested(EntryRef {
            id: source.entry_id(&r.id),
        }),
    }
}

/// The pure specification of federated state: namespace every source's
/// records and accounts under its [`SourceId`] and merge them into one
/// snapshot named `name`. A [`Federation`] that has caught up with all
/// its sources holds exactly `federate_snapshots(name, per_source_folds)`
/// — the invariant the convergence property tests assert.
pub fn federate_snapshots(
    name: &str,
    sources: &[(SourceId, RepositorySnapshot)],
) -> RepositorySnapshot {
    let mut merged = RepositorySnapshot::empty(name);
    for (source, snapshot) in sources {
        for (id, record) in &snapshot.records {
            merged.records.insert(source.entry_id(id), record.clone());
        }
        for (account_name, principal) in &snapshot.accounts {
            let namespaced = source.account(account_name);
            merged.accounts.insert(
                namespaced.clone(),
                Principal {
                    name: namespaced,
                    ..principal.clone()
                },
            );
        }
    }
    merged
}

/// Apply one *namespaced* event to the merged snapshot. Identical to
/// [`apply_event`] except for `Founded`, which must register the source's
/// curators without adopting the source repository's name (the federation
/// keeps its own).
fn apply_federated(merged: &mut RepositorySnapshot, event: &RepoEvent) {
    match event {
        RepoEvent::Founded(f) => {
            for c in &f.curators {
                merged.accounts.insert(c.name.clone(), c.clone());
            }
        }
        other => apply_event(merged, other),
    }
}

/// What one [`Federation::catch_up`] call did, per source and in total.
///
/// A pass never aborts on a sick source: healthy peers always make
/// their progress, failing sources land in [`FederationCatchUp::errors`]
/// with their typed error, and backed-off sources are counted in
/// [`FederationCatchUp::skipped`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FederationCatchUp {
    /// Events applied across all sources.
    pub events_applied: usize,
    /// How many sources re-based (checkpoint crossed, truncation
    /// recovered, or prefix-salvaged).
    pub rebases: usize,
    /// Per-source progress, in source order (a failed or skipped source
    /// contributes an all-zero [`CatchUp`]).
    pub per_source: Vec<CatchUp>,
    /// Sources whose poll failed this pass, with their typed errors, in
    /// source order. The merged state keeps serving their last good
    /// contribution.
    pub errors: Vec<(SourceId, RepoError)>,
    /// Sources not polled because their retry deadline has not arrived.
    pub skipped: usize,
    /// `SalvagePrefix` recoveries performed this pass — exactly what
    /// each one dropped, never silent.
    pub salvaged: Vec<(SourceId, SalvageReport)>,
}

/// One read node tailing N independent primaries into a single merged
/// snapshot, search index and wiki site; see the module docs.
pub struct Federation {
    name: String,
    sources: Vec<(SourceId, LogTail)>,
    /// One supervision state machine per source, index-aligned with
    /// `sources`.
    supervisors: Vec<SourceSupervisor>,
    retry: RetryPolicy,
    recovery: RecoveryPolicy,
    /// When set, every supervision transition (failure, recovery,
    /// quarantine, salvage) publishes [`HealthReport::Source`] under
    /// this component name.
    health: Option<(Arc<RuntimeHealth>, String)>,
    bx: WikiBx,
    snapshot: RepositorySnapshot,
    index: SearchIndex,
    site: WikiSite,
    /// Sinks observing the merged stream: each gets
    /// [`EventSink::rebased`] when any source re-bases and
    /// [`EventSink::accept`] for every *namespaced* event applied.
    observers: Vec<Arc<dyn EventSink>>,
}

impl std::fmt::Debug for Federation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Federation")
            .field("name", &self.name)
            .field(
                "sources",
                &self.sources.iter().map(|(s, _)| s).collect::<Vec<_>>(),
            )
            .field("entries", &self.snapshot.records.len())
            .finish()
    }
}

impl Federation {
    /// Open a federation named `name` over `(source, directory)` pairs
    /// and catch up to every source's current durable end. Source ids
    /// must be non-empty and pairwise distinct; directories may be empty
    /// or absent (primaries that have not written yet).
    pub fn open(name: &str, sources: Vec<(SourceId, PathBuf)>) -> Result<Federation, RepoError> {
        Self::validate_sources(&sources)?;
        let mut federation = Federation {
            name: name.to_string(),
            sources: Vec::with_capacity(sources.len()),
            supervisors: Vec::with_capacity(sources.len()),
            retry: RetryPolicy::default(),
            recovery: RecoveryPolicy::default(),
            health: None,
            bx: WikiBx::new(),
            snapshot: RepositorySnapshot::empty(name),
            index: SearchIndex::default(),
            site: WikiSite::new(),
            observers: Vec::new(),
        };
        for (source, dir) in sources {
            let (tail, base) = LogTail::open(dir)?;
            federation.rebase_source(&source, base);
            federation.sources.push((source, tail));
            federation.supervisors.push(SourceSupervisor::default());
        }
        // Opening is fail-fast: a federation must start from N readable
        // sources (supervised degradation is for a *running* node), so
        // the first source error of the initial pass aborts the open —
        // the same error, for the same input, as before supervision.
        let outcome = federation.catch_up()?;
        if let Some((_, error)) = outcome.errors.into_iter().next() {
            return Err(error);
        }
        Ok(federation)
    }

    /// Source ids must be non-empty and pairwise distinct.
    fn validate_sources(sources: &[(SourceId, PathBuf)]) -> Result<(), RepoError> {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        for (source, _) in sources {
            if source.as_str().is_empty() {
                return Err(RepoError::Persist(
                    "federation source ids must be non-empty".to_string(),
                ));
            }
            if !seen.insert(source.as_str()) {
                return Err(RepoError::Persist(format!(
                    "duplicate federation source id `{source}`"
                )));
            }
        }
        Ok(())
    }

    /// [`Federation::open`] with the N sources tailed **concurrently**:
    /// each source's open-and-decode runs as one pool job (source-level
    /// parallelism — a nested scatter from inside a job would run
    /// inline, so per-source decode stays a single sequential job), then
    /// the merged replay and derived-state rebuild fan out over the same
    /// pool. With `threads: 1` this *is* [`Federation::open`]. On
    /// quiescent directories the merged snapshot, index and site are
    /// byte-for-byte the sequential open's; a failing source surfaces
    /// the same error the sequential open would (the first in source
    /// order), though sources listed after it will already have been
    /// read.
    pub fn open_with(
        name: &str,
        sources: Vec<(SourceId, PathBuf)>,
        options: RestoreOptions,
    ) -> Result<Federation, RepoError> {
        if !options.is_parallel() {
            return Self::open(name, sources);
        }
        let pool = WorkerPool::new(options.threads);
        Self::open_pooled(name, sources, &pool)
    }

    /// [`Federation::open_with`] on a shared [`Runtime`]'s pool instead
    /// of a pool of its own — the cold-open path for nodes that host
    /// many federations (or federations of many sources) on one bounded
    /// set of workers.
    pub fn open_on(
        name: &str,
        sources: Vec<(SourceId, PathBuf)>,
        runtime: &Arc<Runtime>,
    ) -> Result<Federation, RepoError> {
        Self::open_pooled(name, sources, runtime.pool())
    }

    fn open_pooled(
        name: &str,
        sources: Vec<(SourceId, PathBuf)>,
        pool: &WorkerPool,
    ) -> Result<Federation, RepoError> {
        Self::validate_sources(&sources)?;
        type Opened = Result<(LogTail, RepositorySnapshot, Vec<RepoEvent>), RepoError>;
        let jobs: Vec<Box<dyn FnOnce() -> Opened + Send>> = sources
            .iter()
            .map(|(_, dir)| {
                let dir = dir.clone();
                Box::new(move || -> Opened {
                    let (mut tail, base) = LogTail::open(dir)?;
                    let mut progress = tail.poll()?;
                    let base = progress.new_base.take().unwrap_or(base);
                    Ok((tail, base, progress.events))
                }) as Box<dyn FnOnce() -> Opened + Send>
            })
            .collect();
        let mut tails = Vec::with_capacity(sources.len());
        let mut bases = Vec::with_capacity(sources.len());
        let mut events: Vec<RepoEvent> = Vec::new();
        for ((source, _), opened) in sources.iter().zip(pool.scatter(jobs)) {
            // Ordered gather: the first failing source in source order
            // reports, as it would sequentially.
            let (tail, base, tailed) = opened?;
            events.extend(tailed.iter().map(|e| namespace_event(source, e)));
            tails.push((source.clone(), tail));
            bases.push((source.clone(), base));
        }
        let base = Arc::new(federate_snapshots(name, &bases));
        drop(bases);
        let dirty = dirty_set(&events);
        let base_ids: Vec<EntryId> = base.records.keys().cloned().collect();
        let base_pages = render_pages_parallel(&base, base_ids, pool);
        // The federated replay keeps the federation's own name: `Founded`
        // barriers register a source's curators without adopting its
        // repository name.
        let snapshot = Arc::new(replay_parallel_with(
            unshare(base),
            events,
            pool,
            apply_federated,
        ));
        let (index, site) = derived_parallel(base_pages, &snapshot, dirty, pool);
        let supervisors = tails.iter().map(|_| SourceSupervisor::default()).collect();
        Ok(Federation {
            name: name.to_string(),
            sources: tails,
            supervisors,
            retry: RetryPolicy::default(),
            recovery: RecoveryPolicy::default(),
            health: None,
            bx: WikiBx::new(),
            snapshot: unshare(snapshot),
            index,
            site,
            observers: Vec::new(),
        })
    }

    /// The federation's own name (kept regardless of what the source
    /// repositories are called).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The source ids, in tail order.
    pub fn source_ids(&self) -> Vec<&SourceId> {
        self.sources.iter().map(|(s, _)| s).collect()
    }

    /// Subscribe a sink to the merged stream. The sink is backfilled
    /// immediately with [`EventSink::rebased`] over the current merged
    /// snapshot, then receives [`EventSink::accept`] for every
    /// *namespaced* event each later [`Federation::catch_up`] applies,
    /// and [`EventSink::rebased`] again whenever any source re-bases.
    /// Sinks run on the catch-up caller's thread.
    pub fn subscribe(&mut self, sink: Arc<dyn EventSink>) {
        sink.rebased(&self.snapshot);
        self.observers.push(sink);
    }

    /// Poll every due source once, folding its progress into the merged
    /// state. **A sick source never starves its peers**: a failing poll
    /// records the typed error in [`FederationCatchUp::errors`], advances
    /// that source's health state machine (arming its retry backoff),
    /// and the pass continues — the merged state keeps serving the
    /// failing source's last good contribution. A source inside its
    /// backoff window is skipped (counted, not polled); a quarantined
    /// source whose error is corruption is prefix-salvaged first when
    /// [`RecoveryPolicy::SalvagePrefix`] is active. Every supervision
    /// transition publishes [`HealthReport::Source`] on an attached
    /// runtime health channel.
    pub fn catch_up(&mut self) -> Result<FederationCatchUp, RepoError> {
        let now = Instant::now();
        let policy = self.retry;
        let mut total = FederationCatchUp::default();
        let mut reports: Vec<HealthReport> = Vec::new();
        // The sources vector is disjointly borrowed: the tail advances
        // while the merged materializations fold its output.
        for i in 0..self.sources.len() {
            if !self.supervisors[i].should_poll(now) {
                total.skipped += 1;
                total.per_source.push(CatchUp::default());
                continue;
            }
            let source = self.sources[i].0.clone();
            // A quarantined source whose sticky error is corruption gets
            // an opt-in prefix salvage before the poll that may revive it.
            let mut salvaged_bytes = None;
            let mut salvage_rebased = false;
            if self.recovery == RecoveryPolicy::SalvagePrefix
                && self.supervisors[i].health() == SourceHealth::Quarantined
            {
                let sick = self.supervisors[i]
                    .last_error()
                    .cloned()
                    .filter(crate::supervise::is_salvageable);
                if let Some(err) = sick {
                    match self.salvage_source(i, &err) {
                        Ok(report) => {
                            salvaged_bytes = Some(report.bytes_dropped);
                            salvage_rebased = true;
                            total.salvaged.push((source.clone(), report));
                        }
                        Err(e) => {
                            self.supervisors[i].record_failure(
                                &policy,
                                source.as_str(),
                                e.clone(),
                                now,
                            );
                            reports.push(self.source_report(i, None, now));
                            total.errors.push((source, e));
                            total.per_source.push(CatchUp::default());
                            continue;
                        }
                    }
                }
            }
            let progress = match self.sources[i].1.poll() {
                Ok(progress) => progress,
                Err(e) => {
                    self.supervisors[i].record_failure(&policy, source.as_str(), e.clone(), now);
                    reports.push(self.source_report(i, salvaged_bytes, now));
                    total.errors.push((source, e));
                    total.per_source.push(CatchUp::default());
                    continue;
                }
            };
            if self.supervisors[i].record_success(now) || salvaged_bytes.is_some() {
                // Only transitions report: a recovery, or a salvage.
                reports.push(self.source_report(i, salvaged_bytes, now));
            }
            if let Some(base) = progress.new_base {
                self.rebase_source(&source, base);
                for observer in &self.observers {
                    observer.rebased(&self.snapshot);
                }
            }
            let mut dirty: BTreeSet<EntryId> = BTreeSet::new();
            for event in &progress.events {
                let event = namespace_event(&source, event);
                apply_federated(&mut self.snapshot, &event);
                self.index.apply(&event);
                for observer in &self.observers {
                    observer.accept(&event);
                }
                if event.changes_rendered_page() {
                    if let Some(id) = event.touched() {
                        dirty.insert(id.clone());
                    }
                }
            }
            if !dirty.is_empty() {
                self.bx.sync_changed(&self.snapshot, &mut self.site, &dirty);
            }
            let step = CatchUp {
                events_applied: progress.events.len(),
                rebased: progress.rebased || salvage_rebased,
            };
            total.events_applied += step.events_applied;
            total.rebases += usize::from(step.rebased);
            total.per_source.push(step);
        }
        if let Some((health, component)) = &self.health {
            for report in reports {
                health.report(component, report);
            }
        }
        Ok(total)
    }

    /// Truncate source `i`'s log at its corruption boundary
    /// ([`crate::supervise::salvage_prefix`]), reopen the tail fresh,
    /// and re-base the merged state onto what survives. The supervisor
    /// keeps its failure history — the poll that follows decides whether
    /// the source is healthy again.
    fn salvage_source(&mut self, i: usize, err: &RepoError) -> Result<SalvageReport, RepoError> {
        let dir = self.sources[i].1.dir().to_path_buf();
        let report = crate::supervise::salvage_prefix(&dir, err)?;
        let (tail, base) = LogTail::open(&dir)?;
        let source = self.sources[i].0.clone();
        self.sources[i].1 = tail;
        self.rebase_source(&source, base);
        for observer in &self.observers {
            observer.rebased(&self.snapshot);
        }
        self.supervisors[i].note_salvage(report.clone());
        Ok(report)
    }

    /// One source's [`HealthReport::Source`] at its current supervision
    /// state.
    fn source_report(&self, i: usize, salvaged_bytes: Option<u64>, now: Instant) -> HealthReport {
        let status = self.supervisors[i].status(now);
        HealthReport::Source {
            source: self.sources[i].0.to_string(),
            state: status.health.label().to_string(),
            consecutive_failures: status.consecutive_failures,
            error: status.last_error.map(|e| e.to_string()),
            retry_in_ms: status.retry_in.map(|d| d.as_millis() as u64),
            salvaged_bytes,
        }
    }

    /// The active per-source retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Replace the retry policy (takes effect from the next failure —
    /// already-armed deadlines keep their schedule).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// The active corruption recovery policy.
    pub fn recovery_policy(&self) -> RecoveryPolicy {
        self.recovery
    }

    /// Opt a federation into (or back out of)
    /// [`RecoveryPolicy::SalvagePrefix`]. The default is fail-stop.
    pub fn set_recovery_policy(&mut self, policy: RecoveryPolicy) {
        self.recovery = policy;
    }

    /// Publish every supervision transition (failures, recoveries,
    /// quarantines, salvages) as [`HealthReport::Source`] on `health`
    /// under `component`. Reports fire on the catch-up caller's thread,
    /// after the pass's folding is done.
    pub fn attach_runtime_health(&mut self, health: &Arc<RuntimeHealth>, component: &str) {
        self.health = Some((Arc::clone(health), component.to_string()));
    }

    /// Every source's supervision status — health state, failure
    /// counters, sticky error, time to next retry, and staleness (time
    /// since the source last polled clean, i.e. how old its contribution
    /// to the merged state may be).
    pub fn source_status(&self) -> Vec<(SourceId, SourceStatus)> {
        let now = Instant::now();
        self.sources
            .iter()
            .zip(&self.supervisors)
            .map(|((source, _), supervisor)| (source.clone(), supervisor.status(now)))
            .collect()
    }

    /// The soonest retry deadline across all backed-off sources, as seen
    /// from now (`None` when every source is either healthy or already
    /// due). [`ReplicaDaemon`] uses this to schedule a timer-wheel
    /// wake-up instead of blind-polling a backed-off source.
    pub fn next_retry_in(&self) -> Option<Duration> {
        let now = Instant::now();
        self.supervisors
            .iter()
            .filter_map(|supervisor| supervisor.retry_in(now))
            .min()
    }

    /// Clear `source`'s backoff deadline so the next catch-up polls it
    /// immediately (an operator repaired it and wants it back now).
    /// Returns `false` when the source id is unknown.
    pub fn retry_source_now(&mut self, source: &SourceId) -> bool {
        match self.sources.iter().position(|(s, _)| s == source) {
            Some(i) => {
                self.supervisors[i].force_retry();
                true
            }
            None => false,
        }
    }

    /// Adopt `target` as source `source`'s contribution to the merged
    /// state, patching the index and site for exactly the namespaced
    /// records that differ — the per-source re-base path.
    fn rebase_source(&mut self, source: &SourceId, target: RepositorySnapshot) {
        let mut dirty: BTreeSet<EntryId> = BTreeSet::new();
        let target_records: BTreeMap<EntryId, EntryRecord> = target
            .records
            .into_iter()
            .map(|(id, record)| (source.entry_id(&id), record))
            .collect();
        // This source's records currently in the merged state but absent
        // from the target are retracted (a foreign truncation can lose
        // entries).
        let stale: Vec<EntryId> = self
            .records_of(source)
            .filter(|(id, _)| !target_records.contains_key(id))
            .map(|(id, _)| id.clone())
            .collect();
        for id in stale {
            self.snapshot.records.remove(&id);
            self.index.remove_entry(&id);
            dirty.insert(id);
        }
        for (id, record) in target_records {
            if self.snapshot.records.get(&id) != Some(&record) {
                self.index.upsert_entry(&id, record.latest());
                dirty.insert(id.clone());
                self.snapshot.records.insert(id, record);
            }
        }
        // Accounts: replace this source's namespace wholesale (accounts
        // feed no index or page, so no diffing is needed).
        let prefix = source.prefix();
        self.snapshot
            .accounts
            .retain(|name, _| !name.starts_with(&prefix));
        for (name, principal) in &target.accounts {
            let namespaced = source.account(name);
            self.snapshot.accounts.insert(
                namespaced.clone(),
                Principal {
                    name: namespaced,
                    ..principal.clone()
                },
            );
        }
        if !dirty.is_empty() {
            self.bx.sync_changed(&self.snapshot, &mut self.site, &dirty);
        }
    }

    /// The merged records belonging to `source` (keys carry the
    /// `<source>/` prefix).
    fn records_of<'a>(
        &'a self,
        source: &'a SourceId,
    ) -> impl Iterator<Item = (&'a EntryId, &'a EntryRecord)> {
        let start = EntryId(source.prefix());
        self.snapshot
            .records
            .range(start..)
            .take_while(|(id, _)| source.owns(id))
    }

    /// The merged, namespaced snapshot — exactly
    /// [`federate_snapshots`] of the per-source durable folds once caught
    /// up.
    pub fn snapshot(&self) -> &RepositorySnapshot {
        &self.snapshot
    }

    /// The merged search index.
    pub fn index(&self) -> &SearchIndex {
        &self.index
    }

    /// The merged wiki site (entry pages under namespaced slugs, e.g.
    /// `examples:eu/composers`).
    pub fn site(&self) -> &WikiSite {
        &self.site
    }

    /// Conjunctive keyword search across every source.
    pub fn query(&self, terms: &[&str]) -> Vec<(EntryId, u32)> {
        self.index.query(terms)
    }

    /// Conjunctive keyword search restricted to one source's entries.
    pub fn query_source(&self, source: &SourceId, terms: &[&str]) -> Vec<(EntryId, u32)> {
        self.index.query_filtered(terms, |id| source.owns(id))
    }

    /// The recommended citation for one federated entry (namespaced id),
    /// latest or pinned version.
    pub fn cite(&self, id: &EntryId, version: Option<Version>) -> Result<String, RepoError> {
        cite::cite_in(&self.snapshot, id, version)
    }

    /// Citations for every federated entry's latest version, in
    /// namespaced-id order.
    pub fn citations(&self) -> Vec<String> {
        cite::citations(&self.snapshot)
    }

    /// The archival manuscript export over the merged state (BibTeX keys
    /// derive from the namespaced ids, so colliding titles from different
    /// sources stay distinct).
    pub fn export_manuscript(&self, options: ManuscriptOptions) -> String {
        export_manuscript(&self.snapshot, options)
    }

    /// Per-source replication lag, in bytes of unapplied log.
    pub fn lag(&self) -> Vec<(SourceId, u64)> {
        self.sources
            .iter()
            .map(|(source, tail)| (source.clone(), tail.lag_bytes()))
            .collect()
    }

    /// Per-source tail positions: (source, generation file, events
    /// applied from it).
    pub fn positions(&self) -> Vec<(&SourceId, &str, usize)> {
        self.sources
            .iter()
            .map(|(source, tail)| {
                let (generation, applied) = tail.position();
                (source, generation, applied)
            })
            .collect()
    }
}

/// Tuning for a [`ReplicaDaemon`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaemonConfig {
    /// How long the timer wheel waits between catch-up passes. A stop
    /// request cancels the tick immediately (it never waits out the
    /// interval), and [`ReplicaDaemon::force_catch_up`] runs a pass on
    /// the caller's thread at any time.
    pub poll_interval: Duration,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            poll_interval: Duration::from_millis(100),
        }
    }
}

/// Progress accounting of a [`ReplicaDaemon`], readable at any time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// Catch-up passes completed (scheduled and forced).
    pub polls: u64,
    /// Events applied across all sources since the daemon started.
    pub events_applied: u64,
    /// Source re-bases observed (checkpoints crossed, truncations
    /// recovered).
    pub rebases: u64,
    /// Per-source lag in bytes, as of the last pass.
    pub source_lag: Vec<(SourceId, u64)>,
    /// Per-source supervision status as of the last pass — health state,
    /// retry deadline, and staleness, the metadata degraded serving
    /// hands out alongside answers from the last good merged state.
    pub source_health: Vec<(SourceId, SourceStatus)>,
}

struct DaemonShared {
    federation: Mutex<Federation>,
    stats: Mutex<DaemonStats>,
    /// Most recent poll error; sticky — it stays visible after later
    /// successful polls until [`ReplicaDaemon::clear_error`].
    error: Mutex<Option<RepoError>>,
    /// Per-source sticky errors: two failing sources no longer overwrite
    /// each other's slot. Cleared per source on
    /// [`ReplicaDaemon::clear_source_error`] (or wholesale on
    /// [`ReplicaDaemon::clear_error`]).
    errors: Mutex<BTreeMap<SourceId, RepoError>>,
    /// When the daemon is a tenant of a shared [`Runtime`], every pass
    /// publishes a [`HealthReport::Daemon`] under this component name.
    runtime_channel: Option<(Arc<RuntimeHealth>, String)>,
    /// The runtime whose timer wheel schedules backoff retries. Weak:
    /// a pending retry one-shot must not keep the runtime (or, via the
    /// closure, this shared state) alive past the daemon.
    runtime: Weak<Runtime>,
    poll_interval: Duration,
    /// Collapses retry wake-ups: at most one one-shot is in flight.
    retry_scheduled: AtomicBool,
}

fn daemon_lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

impl DaemonShared {
    /// One catch-up pass over the federation, folding the outcome into
    /// stats and the sticky error slots, then scheduling a timer-wheel
    /// retry if a backed-off source's deadline falls beyond the next
    /// periodic tick.
    fn pass(self: &Arc<Self>) -> Result<FederationCatchUp, RepoError> {
        let (outcome, retry_in) = {
            let mut federation = daemon_lock(&self.federation);
            let outcome = federation.catch_up();
            let mut stats = daemon_lock(&self.stats);
            match &outcome {
                Ok(progress) => {
                    stats.polls += 1;
                    stats.events_applied += progress.events_applied as u64;
                    stats.rebases += progress.rebases as u64;
                    stats.source_lag = federation.lag();
                    stats.source_health = federation.source_status();
                    if !progress.errors.is_empty() {
                        let mut errors = daemon_lock(&self.errors);
                        for (source, error) in &progress.errors {
                            errors.insert(source.clone(), error.clone());
                        }
                        // The "most recent" slot keeps its pre-existing
                        // meaning: the last error any source raised.
                        *daemon_lock(&self.error) = progress.errors.last().map(|(_, e)| e.clone());
                    }
                }
                Err(e) => {
                    stats.polls += 1;
                    *daemon_lock(&self.error) = Some(e.clone());
                }
            }
            let retry_in = federation.next_retry_in();
            (outcome, retry_in)
        };
        self.schedule_retry(retry_in);
        // Publish after the daemon locks are released: a health sink is
        // arbitrary user code and must not nest inside them.
        if let Some((health, component)) = &self.runtime_channel {
            let (polls, events_applied, rebases) = {
                let stats = daemon_lock(&self.stats);
                (stats.polls, stats.events_applied, stats.rebases)
            };
            let error = daemon_lock(&self.error).as_ref().map(|e| e.to_string());
            health.report(
                component,
                HealthReport::Daemon {
                    polls,
                    events_applied,
                    rebases_detected: rebases,
                    error,
                },
            );
        }
        outcome
    }

    /// Arm a one-shot timer-wheel wake-up for the soonest backed-off
    /// source whose deadline falls beyond the periodic tick — the tick
    /// itself covers deadlines inside the next interval. At most one
    /// wake-up is in flight; it holds only a weak reference, so a
    /// stopped daemon (or a dropped runtime) simply lets it lapse.
    fn schedule_retry(self: &Arc<Self>, retry_in: Option<Duration>) {
        let Some(delay) = retry_in else { return };
        if delay <= self.poll_interval {
            return;
        }
        if self.retry_scheduled.swap(true, Ordering::AcqRel) {
            return;
        }
        let Some(runtime) = self.runtime.upgrade() else {
            self.retry_scheduled.store(false, Ordering::Release);
            return;
        };
        let weak = Arc::downgrade(self);
        runtime.schedule_once(delay, move || {
            if let Some(shared) = weak.upgrade() {
                shared.retry_scheduled.store(false, Ordering::Release);
                let _ = shared.pass();
            }
        });
    }
}

/// A background polling tenant around a [`Federation`]: starts at
/// [`ReplicaDaemon::spawn`] (private [`Runtime`]) or
/// [`ReplicaDaemon::spawn_on`] (tenant of a shared one), catches up
/// every [`DaemonConfig::poll_interval`] via the runtime's timer wheel,
/// and stops cleanly (tick cancelled, in-flight pass waited out) on
/// [`ReplicaDaemon::stop`] or drop — stop is prompt even mid-interval.
/// Poll errors are sticky — per source in
/// [`ReplicaDaemon::last_errors`], with [`ReplicaDaemon::last_error`]
/// keeping the most recent across sources, until
/// [`ReplicaDaemon::clear_error`] — while the daemon keeps serving from
/// the last good merged state and polling the healthy sources, so a
/// source directory that comes back is picked up again automatically.
/// Backed-off sources beyond the poll interval get a dedicated one-shot
/// wake-up on the runtime's timer wheel instead of blind polling.
pub struct ReplicaDaemon {
    shared: Arc<DaemonShared>,
    tick: Option<TimerTask>,
    /// Present only for [`ReplicaDaemon::spawn`]: the private runtime
    /// whose sole tenant this daemon is. Dropped (threads joined) after
    /// the tick is cancelled.
    _runtime: Option<Arc<Runtime>>,
}

impl std::fmt::Debug for ReplicaDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaDaemon")
            .field("running", &self.tick.is_some())
            .field("stats", &self.stats())
            .finish()
    }
}

impl ReplicaDaemon {
    /// Take ownership of `federation` and poll it every
    /// [`DaemonConfig::poll_interval`] on a private single-worker
    /// [`Runtime`] — the standalone deployment shape.
    pub fn spawn(federation: Federation, config: DaemonConfig) -> ReplicaDaemon {
        let runtime = Runtime::named("bx-replica-daemon", 1);
        let mut daemon = Self::build(federation, config, &runtime, None);
        daemon._runtime = Some(runtime);
        daemon
    }

    /// [`ReplicaDaemon::spawn`] as a tenant of an existing shared
    /// [`Runtime`]: poll ticks fire on the shared pool, and every pass
    /// publishes [`HealthReport::Daemon`] on the runtime's unified
    /// health channel under `component`.
    pub fn spawn_on(
        federation: Federation,
        config: DaemonConfig,
        runtime: &Arc<Runtime>,
        component: &str,
    ) -> ReplicaDaemon {
        Self::build(federation, config, runtime, Some(component))
    }

    fn build(
        mut federation: Federation,
        config: DaemonConfig,
        runtime: &Arc<Runtime>,
        component: Option<&str>,
    ) -> ReplicaDaemon {
        if let Some(component) = component {
            // Supervision transitions (degraded, quarantined, recovered,
            // salvaged) publish on the same unified channel as the
            // daemon's own pass reports.
            federation.attach_runtime_health(runtime.health(), component);
        }
        let shared = Arc::new(DaemonShared {
            federation: Mutex::new(federation),
            stats: Mutex::new(DaemonStats::default()),
            error: Mutex::new(None),
            errors: Mutex::new(BTreeMap::new()),
            runtime_channel: component
                .map(|component| (Arc::clone(runtime.health()), component.to_string())),
            runtime: Arc::downgrade(runtime),
            poll_interval: config.poll_interval,
            retry_scheduled: AtomicBool::new(false),
        });
        let tick_shared = shared.clone();
        let tick = runtime.schedule_periodic(config.poll_interval, move || {
            // Poll errors are recorded (sticky) and polling continues;
            // a vanished source may come back.
            let _ = tick_shared.pass();
        });
        // The dedicated-thread daemon polled once immediately on start;
        // keep that, so a fresh daemon isn't blind for a full interval.
        tick.fire_now();
        ReplicaDaemon {
            shared,
            tick: Some(tick),
            _runtime: None,
        }
    }

    /// Catch up right now on the caller's thread (in addition to the
    /// scheduled polls), returning what the pass did. The federation and
    /// stats are updated exactly as a scheduled poll would.
    pub fn force_catch_up(&self) -> Result<FederationCatchUp, RepoError> {
        self.shared.pass()
    }

    /// Run `read` against the federation under the daemon's lock — the
    /// serving path (query, citations, manuscript, snapshot inspection)
    /// while polling continues in the background.
    pub fn with_federation<R>(&self, read: impl FnOnce(&Federation) -> R) -> R {
        read(&daemon_lock(&self.shared.federation))
    }

    /// Conjunctive keyword search across every source.
    pub fn query(&self, terms: &[&str]) -> Vec<(EntryId, u32)> {
        self.with_federation(|f| f.query(terms))
    }

    /// Citations for every federated entry's latest version.
    pub fn citations(&self) -> Vec<String> {
        self.with_federation(|f| f.citations())
    }

    /// The archival manuscript export over the merged state.
    pub fn export_manuscript(&self, options: ManuscriptOptions) -> String {
        self.with_federation(|f| f.export_manuscript(options))
    }

    /// Progress accounting so far.
    pub fn stats(&self) -> DaemonStats {
        daemon_lock(&self.shared.stats).clone()
    }

    /// The most recent poll error any source raised — sticky until
    /// [`ReplicaDaemon::clear_error`]. For attribution when several
    /// sources are failing, use [`ReplicaDaemon::last_errors`].
    pub fn last_error(&self) -> Option<RepoError> {
        daemon_lock(&self.shared.error).clone()
    }

    /// Per-source sticky errors: each failing source keeps its own slot,
    /// so a flaky peer no longer masks a corrupt one. Entries persist
    /// across later successful polls of *other* sources until cleared
    /// ([`ReplicaDaemon::clear_source_error`] /
    /// [`ReplicaDaemon::clear_error`]).
    pub fn last_errors(&self) -> BTreeMap<SourceId, RepoError> {
        daemon_lock(&self.shared.errors).clone()
    }

    /// Clear one source's sticky error (e.g. after repairing it).
    /// Returns whether an entry was present. The "most recent" slot is
    /// left alone — it is cross-source by definition.
    pub fn clear_source_error(&self, source: &SourceId) -> bool {
        daemon_lock(&self.shared.errors).remove(source).is_some()
    }

    /// Clear every sticky error — the most-recent slot and the whole
    /// per-source map (e.g. after restoring a vanished source
    /// directory).
    pub fn clear_error(&self) {
        *daemon_lock(&self.shared.error) = None;
        daemon_lock(&self.shared.errors).clear();
    }

    /// Is the daemon still scheduled on its runtime?
    pub fn is_running(&self) -> bool {
        self.tick.is_some()
    }

    /// Stop polling, returning the federation's final stats. Prompt —
    /// cancelling the tick never waits out [`DaemonConfig::poll_interval`],
    /// only an already-running pass — and idempotent: a second call
    /// returns the same stats without touching the runtime.
    pub fn stop(&mut self) -> DaemonStats {
        if let Some(tick) = self.tick.take() {
            tick.cancel();
        }
        self.stats()
    }

    /// Stop the daemon and hand the federation back for direct use.
    pub fn into_federation(mut self) -> Federation {
        self.stop();
        let mut shared = self.shared.clone();
        drop(self); // idempotent: the tick is already cancelled
        loop {
            match Arc::try_unwrap(shared) {
                Ok(shared) => {
                    return shared
                        .federation
                        .into_inner()
                        .unwrap_or_else(|e| e.into_inner())
                }
                // cancel() guarantees no pass is running or scheduled,
                // but on a shared runtime the worker that ran the last
                // tick can hold the fired job's environment (and its
                // Arc) for an instant after the pass returns.
                Err(again) => {
                    shared = again;
                    std::thread::yield_now();
                }
            }
        }
    }
}

impl Drop for ReplicaDaemon {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::principal::Principal;
    use crate::repo::Repository;
    use crate::storage::{AutoCompactingEventLog, CompactionPolicy, StorageBackend};
    use crate::template::{ExampleEntry, ExampleType};
    use bx_theory::Bx;

    use crate::test_support::unique_dir;

    fn entry(title: &str) -> ExampleEntry {
        ExampleEntry::builder(title)
            .of_type(ExampleType::Precise)
            .overview("O.")
            .models("M.")
            .consistency("C.")
            .restoration("F.", "B.")
            .discussion("D.")
            .author("alice")
            .build()
            .unwrap()
    }

    #[test]
    fn replica_tails_within_a_generation() {
        let dir = unique_dir("tail");
        let r = Repository::found("bx", vec![Principal::curator("c")]);
        r.register(Principal::member("alice")).unwrap();
        let mut backend = crate::storage::EventLogBackend::open(&dir).unwrap();
        backend.record(&r.drain_events()).unwrap();

        let mut replica = Replica::open(&dir).unwrap();
        assert_eq!(replica.snapshot(), &r.snapshot());
        assert!(replica.query(&["composers"]).is_empty());

        let id = r.contribute("alice", entry("COMPOSERS")).unwrap();
        r.comment("alice", &id, "2014-03-28", "tailed").unwrap();
        backend.record(&r.drain_events()).unwrap();

        let progress = replica.catch_up().unwrap();
        assert_eq!(progress.events_applied, 2);
        assert!(!progress.rebased);
        assert_eq!(replica.snapshot(), &r.snapshot());
        assert_eq!(replica.query(&["composers"]).len(), 1);
        assert!(replica.bx.consistent(replica.snapshot(), replica.site()));
        // Idempotent when nothing new arrived.
        assert_eq!(replica.catch_up().unwrap(), CatchUp::default());
    }

    #[test]
    fn replica_rebases_across_a_checkpoint() {
        let dir = unique_dir("rebase");
        let r = Repository::found("bx", vec![Principal::curator("c")]);
        r.register(Principal::member("alice")).unwrap();
        let mut backend = AutoCompactingEventLog::open(
            &dir,
            CompactionPolicy {
                checkpoint_every: 1_000_000, // manual checkpoints only
            },
        )
        .unwrap();
        backend.record(&r.drain_events()).unwrap();
        let mut replica = Replica::open(&dir).unwrap();

        // Mutations + a checkpoint the replica has not seen yet.
        let id = r.contribute("alice", entry("COMPOSERS")).unwrap();
        backend.record(&r.drain_events()).unwrap();
        backend.checkpoint(&r.snapshot()).unwrap();
        r.comment("alice", &id, "2014-03-28", "post-checkpoint")
            .unwrap();
        backend.record(&r.drain_events()).unwrap();

        let progress = replica.catch_up().unwrap();
        assert!(progress.rebased, "the manifest moved to a new generation");
        assert_eq!(progress.events_applied, 1, "only the post-checkpoint tail");
        assert_eq!(replica.snapshot(), &r.snapshot());
        assert_eq!(replica.index(), &SearchIndex::build(&r.snapshot()));
        assert!(replica.bx.consistent(replica.snapshot(), replica.site()));
    }

    #[test]
    fn replica_rebases_when_the_log_shrinks_under_it() {
        let dir = unique_dir("shrink");
        let r = Repository::found("bx", vec![Principal::curator("c")]);
        r.register(Principal::member("alice")).unwrap();
        r.contribute("alice", entry("COMPOSERS")).unwrap();
        r.contribute("alice", entry("DATES")).unwrap();
        let mut backend = crate::storage::EventLogBackend::open(&dir).unwrap();
        let events = r.drain_events();
        backend.record(&events).unwrap();
        let mut replica = Replica::open(&dir).unwrap();
        assert_eq!(replica.snapshot(), &r.snapshot());

        // A foreign hand truncates the log to its first three lines.
        let log = dir.join("events-0.jsonl");
        let text = std::fs::read_to_string(&log).unwrap();
        let keep: String = text.lines().take(3).map(|l| format!("{l}\n")).collect();
        std::fs::write(&log, &keep).unwrap();

        let progress = replica.catch_up().unwrap();
        assert!(progress.rebased, "a shrunken log forces a re-base");
        let expected = crate::event::replay(RepositorySnapshot::empty(""), &events[..3]);
        assert_eq!(replica.snapshot(), &expected);
        assert_eq!(replica.index(), &SearchIndex::build(&expected));
        assert!(replica.bx.consistent(replica.snapshot(), replica.site()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replica_ignores_a_torn_tail_until_it_heals() {
        let dir = unique_dir("torn");
        let r = Repository::found("bx", vec![Principal::curator("c")]);
        r.register(Principal::member("alice")).unwrap();
        r.contribute("alice", entry("COMPOSERS")).unwrap();
        let mut backend = crate::storage::EventLogBackend::open(&dir).unwrap();
        let events = r.drain_events();
        backend.record(&events).unwrap();
        // A torn append lands after the intact events.
        let log = dir.join("events-0.jsonl");
        let mut text = std::fs::read_to_string(&log).unwrap();
        text.push_str("{\"Commented\":{\"id\":\"co");
        std::fs::write(&log, text).unwrap();

        let mut replica = Replica::open(&dir).unwrap();
        assert_eq!(replica.snapshot(), &r.snapshot());
        let (_, applied) = replica.position();
        assert_eq!(applied, events.len(), "the torn fragment was not counted");

        // The writer reopens (repairing the tail) and appends for real.
        let mut backend = crate::storage::EventLogBackend::open(&dir).unwrap();
        r.comment(
            "alice",
            &EntryId::from_title("COMPOSERS"),
            "2014-03-28",
            "healed",
        )
        .unwrap();
        backend.record(&r.drain_events()).unwrap();
        let progress = replica.catch_up().unwrap();
        assert_eq!(progress.events_applied, 1);
        assert_eq!(replica.snapshot(), &r.snapshot());
    }

    #[test]
    fn replica_serves_citations_and_manuscript() {
        let dir = unique_dir("serve");
        let r = Repository::found("The Bx Examples Repository", vec![Principal::curator("c")]);
        r.register(Principal::member("alice")).unwrap();
        let id = r.contribute("alice", entry("COMPOSERS")).unwrap();
        let mut backend = crate::storage::EventLogBackend::open(&dir).unwrap();
        backend.record(&r.drain_events()).unwrap();

        let replica = Replica::open(&dir).unwrap();
        let cites = replica.citations();
        assert_eq!(cites.len(), 1);
        assert!(cites[0].contains("COMPOSERS, version 0.1"));
        assert_eq!(replica.cite(&id, None).unwrap(), cites[0]);
        assert!(replica.cite(&id, Some(Version::new(9, 9))).is_err());
        let manuscript = replica.export_manuscript(ManuscriptOptions::default());
        assert!(manuscript.contains("++ COMPOSERS"));
        assert!(manuscript.contains("@misc{bx-composers-0-1,"));
        std::fs::remove_dir_all(&dir).ok();
    }

    // == catch_up edge cases (satellite) ==

    #[test]
    fn replica_opens_over_an_empty_or_absent_directory() {
        // Absent directory: the primary has not even created it yet.
        let dir = unique_dir("absent");
        let mut replica = Replica::open(&dir).unwrap();
        assert!(replica.snapshot().records.is_empty());
        assert_eq!(replica.catch_up().unwrap(), CatchUp::default());

        // Present-but-empty directory: same story.
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(replica.catch_up().unwrap(), CatchUp::default());

        // The first real write is then picked up normally.
        let r = Repository::found("bx", vec![Principal::curator("c")]);
        r.register(Principal::member("alice")).unwrap();
        let mut backend = crate::storage::EventLogBackend::open(&dir).unwrap();
        backend.record(&r.drain_events()).unwrap();
        let progress = replica.catch_up().unwrap();
        assert!(progress.events_applied > 0);
        assert_eq!(replica.snapshot(), &r.snapshot());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replica_adopts_a_manifest_appearing_between_polls() {
        let dir = unique_dir("late-manifest");
        let r = Repository::found("bx", vec![Principal::curator("c")]);
        r.register(Principal::member("alice")).unwrap();
        let mut backend = crate::storage::EventLogBackend::open(&dir).unwrap();
        backend.record(&r.drain_events()).unwrap();
        // The replica opens while no checkpoint manifest exists.
        let mut replica = Replica::open(&dir).unwrap();
        assert_eq!(replica.snapshot(), &r.snapshot());

        // Between polls the primary writes its *first* checkpoint: the
        // manifest appears and names a fresh generation.
        r.contribute("alice", entry("COMPOSERS")).unwrap();
        backend.record(&r.drain_events()).unwrap();
        backend.checkpoint(&r.snapshot()).unwrap();

        let progress = replica.catch_up().unwrap();
        assert!(progress.rebased, "the appearing manifest forces a re-base");
        assert_eq!(replica.snapshot(), &r.snapshot());
        assert_eq!(replica.index(), &SearchIndex::build(&r.snapshot()));
        assert!(replica.bx.consistent(replica.snapshot(), replica.site()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replica_surfaces_a_typed_error_when_the_source_dir_vanishes() {
        let dir = unique_dir("vanish");
        let r = Repository::found("bx", vec![Principal::curator("c")]);
        r.register(Principal::member("alice")).unwrap();
        r.contribute("alice", entry("COMPOSERS")).unwrap();
        let mut backend = crate::storage::EventLogBackend::open(&dir).unwrap();
        backend.record(&r.drain_events()).unwrap();
        let mut replica = Replica::open(&dir).unwrap();
        assert_eq!(replica.snapshot(), &r.snapshot());

        std::fs::remove_dir_all(&dir).unwrap();
        let err = replica.catch_up().unwrap_err();
        assert!(
            matches!(err, RepoError::SourceUnavailable { ref dir } if dir.contains("vanish")),
            "expected SourceUnavailable, got {err:?}"
        );
        // State is untouched — the replica keeps serving its last good
        // view, and a restored directory resumes tailing.
        assert_eq!(replica.snapshot(), &r.snapshot());
        std::fs::create_dir_all(&dir).unwrap();
        let mut backend = crate::storage::EventLogBackend::open(&dir).unwrap();
        backend.record(&r.drain_events()).unwrap();
        assert!(replica.catch_up().is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replica_surfaces_a_typed_error_when_the_manifest_vanishes() {
        let dir = unique_dir("manifest-vanish");
        let r = Repository::found("bx", vec![Principal::curator("c")]);
        r.register(Principal::member("alice")).unwrap();
        r.contribute("alice", entry("COMPOSERS")).unwrap();
        let mut backend = crate::storage::EventLogBackend::open(&dir).unwrap();
        backend.record(&r.drain_events()).unwrap();
        backend.checkpoint(&r.snapshot()).unwrap();
        let mut replica = Replica::open(&dir).unwrap();
        assert_eq!(replica.snapshot(), &r.snapshot());

        // The manifest alone disappears (mid-rsync, stray delete) while
        // the directory remains: without the guard the tail would
        // re-base onto the no-manifest default — an empty snapshot.
        let manifest = dir.join("checkpoint.json");
        let saved = std::fs::read(&manifest).unwrap();
        std::fs::remove_file(&manifest).unwrap();
        let err = replica.catch_up().unwrap_err();
        assert!(matches!(err, RepoError::SourceUnavailable { .. }));
        assert_eq!(
            replica.snapshot(),
            &r.snapshot(),
            "the last good state keeps serving"
        );

        // A restored manifest resumes tailing where it left off.
        std::fs::write(&manifest, saved).unwrap();
        r.comment(
            "alice",
            &EntryId::from_title("COMPOSERS"),
            "2014-03-28",
            "healed",
        )
        .unwrap();
        let mut backend = crate::storage::EventLogBackend::open(&dir).unwrap();
        backend.record(&r.drain_events()).unwrap();
        replica.catch_up().unwrap();
        assert_eq!(replica.snapshot(), &r.snapshot());
        std::fs::remove_dir_all(&dir).ok();
    }

    // == federation ==

    fn primary(name: &str) -> Repository {
        let r = Repository::found(name, vec![Principal::curator("c")]);
        r.register(Principal::member("alice")).unwrap();
        r
    }

    #[test]
    fn source_ids_namespace_and_own() {
        let eu = SourceId::new("EU mirror");
        assert_eq!(eu.as_str(), "eu-mirror");
        let id = EntryId::from_title("COMPOSERS");
        let ns = eu.entry_id(&id);
        assert_eq!(ns.as_str(), "eu-mirror/composers");
        assert!(eu.owns(&ns));
        assert!(!eu.owns(&id));
        // A source whose slug is a prefix of another's does not own it.
        let e = SourceId::new("eu");
        assert!(!e.owns(&ns));
        assert_eq!(eu.account("alice"), "eu-mirror/alice");
    }

    #[test]
    fn federation_rejects_duplicate_or_empty_sources() {
        let dir = unique_dir("fed-dup");
        assert!(Federation::open(
            "fed",
            vec![
                (SourceId::new("a"), dir.clone()),
                (SourceId::new("a"), dir.clone()),
            ],
        )
        .is_err());
        assert!(Federation::open("fed", vec![(SourceId::new("!!"), dir)]).is_err());
    }

    #[test]
    fn federation_merges_colliding_entry_ids() {
        let dir_a = unique_dir("fed-a");
        let dir_b = unique_dir("fed-b");
        let a = primary("alpha");
        let b = primary("beta");
        // The *same* title on both primaries: in a single replica one
        // would clobber the other; the federation namespaces them apart.
        a.contribute("alice", entry("COMPOSERS")).unwrap();
        b.contribute("alice", entry("COMPOSERS")).unwrap();
        b.contribute("alice", entry("DATES")).unwrap();
        let mut backend_a = crate::storage::EventLogBackend::open(&dir_a).unwrap();
        backend_a.record(&a.drain_events()).unwrap();
        let mut backend_b = crate::storage::EventLogBackend::open(&dir_b).unwrap();
        backend_b.record(&b.drain_events()).unwrap();

        let federation = Federation::open(
            "fed",
            vec![
                (SourceId::new("a"), dir_a.clone()),
                (SourceId::new("b"), dir_b.clone()),
            ],
        )
        .unwrap();
        assert_eq!(federation.snapshot().records.len(), 3);
        assert_eq!(
            federation.snapshot(),
            &federate_snapshots(
                "fed",
                &[
                    (SourceId::new("a"), a.snapshot()),
                    (SourceId::new("b"), b.snapshot()),
                ]
            )
        );
        // Both COMPOSERS entries are found, namespaced apart.
        let hits = federation.query(&["composers"]);
        assert_eq!(hits.len(), 2);
        let ids: Vec<&str> = hits.iter().map(|(id, _)| id.as_str()).collect();
        assert!(ids.contains(&"a/composers") && ids.contains(&"b/composers"));
        // Source-restricted search sees only its own.
        let a_hits = federation.query_source(&SourceId::new("a"), &["composers"]);
        assert_eq!(a_hits.len(), 1);
        assert_eq!(a_hits[0].0.as_str(), "a/composers");
        // The merged wiki is consistent and serves namespaced pages.
        assert!(federation.site().current("examples:a/composers").is_some());
        assert!(WikiBx::new().consistent(federation.snapshot(), federation.site()));
        // Citations and manuscript come straight off the merged state.
        assert_eq!(federation.citations().len(), 3);
        let manuscript = federation.export_manuscript(ManuscriptOptions::default());
        assert!(manuscript.contains("@misc{bx-a-composers-0-1,"));
        assert!(manuscript.contains("@misc{bx-b-composers-0-1,"));
        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }

    #[test]
    fn federation_tails_and_rebases_per_source() {
        let dir_a = unique_dir("fed-tail-a");
        let dir_b = unique_dir("fed-tail-b");
        let a = primary("alpha");
        let b = primary("beta");
        let mut backend_a = AutoCompactingEventLog::open(
            &dir_a,
            CompactionPolicy {
                checkpoint_every: 1_000_000,
            },
        )
        .unwrap();
        backend_a.record(&a.drain_events()).unwrap();
        let mut backend_b = crate::storage::EventLogBackend::open(&dir_b).unwrap();
        backend_b.record(&b.drain_events()).unwrap();

        let sa = SourceId::new("a");
        let sb = SourceId::new("b");
        let mut federation = Federation::open(
            "fed",
            vec![(sa.clone(), dir_a.clone()), (sb.clone(), dir_b.clone())],
        )
        .unwrap();

        // Source a checkpoints (forcing a per-source re-base); source b
        // just appends.
        let id_a = a.contribute("alice", entry("COMPOSERS")).unwrap();
        backend_a.record(&a.drain_events()).unwrap();
        backend_a.checkpoint(&a.snapshot()).unwrap();
        a.comment("alice", &id_a, "2014-03-28", "after checkpoint")
            .unwrap();
        backend_a.record(&a.drain_events()).unwrap();
        b.contribute("alice", entry("DATES")).unwrap();
        backend_b.record(&b.drain_events()).unwrap();

        let progress = federation.catch_up().unwrap();
        assert_eq!(progress.rebases, 1, "only source a crossed a checkpoint");
        assert!(progress.per_source[0].rebased);
        assert!(!progress.per_source[1].rebased);
        let expected = federate_snapshots(
            "fed",
            &[(sa.clone(), a.snapshot()), (sb.clone(), b.snapshot())],
        );
        assert_eq!(federation.snapshot(), &expected);
        assert_eq!(federation.index(), &SearchIndex::build(&expected));
        assert!(WikiBx::new().consistent(federation.snapshot(), federation.site()));
        // Caught up: zero lag everywhere.
        assert!(federation.lag().iter().all(|(_, lag)| *lag == 0));
        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }

    // == parallel cold open ==

    /// A directory with enough texture to exercise every rebuild path:
    /// checkpointed base entries, post-checkpoint contributions,
    /// revisions, comments, status-only events and an account barrier
    /// mid-generation.
    fn textured_dir(tag: &str) -> (std::path::PathBuf, Repository) {
        let dir = unique_dir(tag);
        let r = Repository::found("bx", vec![Principal::curator("c")]);
        r.register(Principal::member("alice")).unwrap();
        let mut backend = AutoCompactingEventLog::open(
            &dir,
            CompactionPolicy {
                checkpoint_every: 1_000_000,
            },
        )
        .unwrap();
        for t in ["COMPOSERS", "UML2RDBMS", "DATES"] {
            r.contribute("alice", entry(t)).unwrap();
        }
        backend.record(&r.drain_events()).unwrap();
        backend.checkpoint(&r.snapshot()).unwrap();
        // Post-checkpoint: one untouched base entry (DATES), one revised,
        // one commented, new entries, a registration barrier between
        // per-entry runs, and a status-only event.
        let composers = EntryId::from_title("COMPOSERS");
        let mut edited = r.latest(&composers).unwrap();
        edited.overview = "Revised after the checkpoint.".to_string();
        r.revise("alice", &composers, edited).unwrap();
        r.register(Principal::member("bob")).unwrap();
        r.contribute("bob", entry("FAMILIES")).unwrap();
        r.comment(
            "bob",
            &EntryId::from_title("UML2RDBMS"),
            "2014-03-28",
            "noted",
        )
        .unwrap();
        r.request_review("bob", &EntryId::from_title("FAMILIES"))
            .unwrap();
        backend.record(&r.drain_events()).unwrap();
        (dir, r)
    }

    #[test]
    fn parallel_replica_open_matches_sequential_exactly() {
        let (dir, r) = textured_dir("par-open");
        let sequential = Replica::open(&dir).unwrap();
        for threads in [1, 2, 4, 8] {
            let parallel = Replica::open_with(&dir, RestoreOptions::with_threads(threads)).unwrap();
            assert_eq!(
                parallel.snapshot(),
                sequential.snapshot(),
                "{threads} threads"
            );
            assert_eq!(parallel.index(), sequential.index(), "{threads} threads");
            assert_eq!(parallel.site(), sequential.site(), "{threads} threads");
            assert_eq!(
                parallel.position(),
                sequential.position(),
                "{threads} threads"
            );
            assert_eq!(parallel.snapshot(), &r.snapshot());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parallel_federation_open_matches_sequential_exactly() {
        let (dir_a, _) = textured_dir("par-fed-a");
        let (dir_b, _) = textured_dir("par-fed-b");
        let sources = vec![
            (SourceId::new("a"), dir_a.clone()),
            (SourceId::new("b"), dir_b.clone()),
        ];
        let sequential = Federation::open("fed", sources.clone()).unwrap();
        for threads in [1, 4] {
            let parallel = Federation::open_with(
                "fed",
                sources.clone(),
                RestoreOptions::with_threads(threads),
            )
            .unwrap();
            assert_eq!(parallel.name(), sequential.name());
            assert_eq!(
                parallel.snapshot(),
                sequential.snapshot(),
                "{threads} threads"
            );
            assert_eq!(parallel.index(), sequential.index(), "{threads} threads");
            assert_eq!(parallel.site(), sequential.site(), "{threads} threads");
            assert_eq!(
                parallel.positions(),
                sequential.positions(),
                "{threads} threads"
            );
        }
        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }

    #[test]
    fn parallel_federation_open_surfaces_the_first_corrupt_source() {
        let (dir_a, _) = textured_dir("par-fed-bad-a");
        let (dir_b, _) = textured_dir("par-fed-bad-b");
        // Corrupt b's tailed generation (a complete, unparseable line).
        let (_, generation) = EventLogBackend::read_state_in(&dir_b).unwrap();
        let log = dir_b.join(&generation);
        let mut text = std::fs::read_to_string(&log).unwrap();
        text.push_str("{\"Vandalised\":true}\n");
        std::fs::write(&log, text).unwrap();
        let sources = vec![
            (SourceId::new("a"), dir_a.clone()),
            (SourceId::new("b"), dir_b.clone()),
        ];
        let sequential = Federation::open("fed", sources.clone()).unwrap_err();
        let parallel =
            Federation::open_with("fed", sources, RestoreOptions::with_threads(4)).unwrap_err();
        assert_eq!(parallel, sequential, "same typed error, same source");
        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }

    #[test]
    fn federation_open_parses_each_manifest_once_and_idle_polls_skip_it() {
        let (dir_a, _) = textured_dir("fed-stamp-a");
        let (dir_b, _) = textured_dir("fed-stamp-b");
        let before = crate::storage::manifests_parsed();
        let mut federation = Federation::open(
            "fed",
            vec![
                (SourceId::new("a"), dir_a.clone()),
                (SourceId::new("b"), dir_b.clone()),
            ],
        )
        .unwrap();
        assert_eq!(
            crate::storage::manifests_parsed() - before,
            2,
            "cold open parses each source's manifest exactly once \
             (the open's first catch-up reuses the stamp taken at open)"
        );
        // Idle polls on an unchanged federation never re-parse.
        federation.catch_up().unwrap();
        federation.catch_up().unwrap();
        assert_eq!(crate::storage::manifests_parsed() - before, 2);
        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }

    #[test]
    fn daemon_polls_surfaces_sticky_errors_and_stops_clean() {
        let dir_a = unique_dir("daemon-a");
        let dir_b = unique_dir("daemon-b");
        let a = primary("alpha");
        let b = primary("beta");
        let mut backend_a = crate::storage::EventLogBackend::open(&dir_a).unwrap();
        backend_a.record(&a.drain_events()).unwrap();
        let mut backend_b = crate::storage::EventLogBackend::open(&dir_b).unwrap();
        backend_b.record(&b.drain_events()).unwrap();

        let federation = Federation::open(
            "fed",
            vec![
                (SourceId::new("a"), dir_a.clone()),
                (SourceId::new("b"), dir_b.clone()),
            ],
        )
        .unwrap();
        let mut daemon = ReplicaDaemon::spawn(
            federation,
            DaemonConfig {
                poll_interval: Duration::from_millis(5),
            },
        );
        assert!(daemon.is_running());

        // New writes are served after a forced pass (no sleep needed; a
        // scheduled poll may also have raced us to them, which is fine —
        // the cumulative stats see them either way).
        a.contribute("alice", entry("COMPOSERS")).unwrap();
        backend_a.record(&a.drain_events()).unwrap();
        daemon.force_catch_up().unwrap();
        assert!(daemon.stats().events_applied >= 1);
        assert_eq!(daemon.query(&["composers"]).len(), 1);
        assert_eq!(daemon.citations().len(), 1);
        assert!(daemon.last_error().is_none());

        // A vanished source surfaces a sticky typed error — per source
        // and in the most-recent slot — while the pass itself succeeds
        // with partial progress and healthy sources still serve.
        std::fs::remove_dir_all(&dir_a).unwrap();
        let outcome = daemon.force_catch_up().unwrap();
        assert_eq!(outcome.errors.len(), 1);
        assert_eq!(outcome.errors[0].0, SourceId::new("a"));
        assert!(matches!(
            outcome.errors[0].1,
            RepoError::SourceUnavailable { .. }
        ));
        assert!(matches!(
            daemon.last_error(),
            Some(RepoError::SourceUnavailable { .. })
        ));
        let errors = daemon.last_errors();
        assert!(matches!(
            errors.get(&SourceId::new("a")),
            Some(RepoError::SourceUnavailable { .. })
        ));
        assert!(!errors.contains_key(&SourceId::new("b")));
        assert_eq!(daemon.query(&["composers"]).len(), 1, "degraded serving");
        assert!(daemon.clear_source_error(&SourceId::new("a")));
        assert!(!daemon.clear_source_error(&SourceId::new("a")));
        daemon.clear_error();

        let stats = daemon.stop();
        assert!(stats.polls >= 2);
        assert!(
            stats
                .source_health
                .iter()
                .any(|(s, status)| s == &SourceId::new("a")
                    && status.health != SourceHealth::Healthy),
            "per-source staleness metadata reflects the sick source"
        );
        assert!(!daemon.is_running(), "no orphan thread after stop");
        // Idempotent stop; the federation comes back out for direct use.
        daemon.stop();
        std::fs::remove_dir_all(&dir_b).ok();
    }

    #[test]
    fn backed_off_sources_are_skipped_while_healthy_peers_progress() {
        let dir_a = unique_dir("backoff-a");
        let dir_b = unique_dir("backoff-b");
        let a = primary("alpha");
        let b = primary("beta");
        let mut backend_a = crate::storage::EventLogBackend::open(&dir_a).unwrap();
        backend_a.record(&a.drain_events()).unwrap();
        let mut backend_b = crate::storage::EventLogBackend::open(&dir_b).unwrap();
        backend_b.record(&b.drain_events()).unwrap();
        let mut federation = Federation::open(
            "fed",
            vec![
                (SourceId::new("a"), dir_a.clone()),
                (SourceId::new("b"), dir_b.clone()),
            ],
        )
        .unwrap();
        federation.set_retry_policy(RetryPolicy {
            base: Duration::from_secs(3600),
            max: Duration::from_secs(3600),
            multiplier: 1,
            jitter_percent: 0,
            quarantine_after: 5,
            seed: 0,
        });

        std::fs::remove_dir_all(&dir_a).unwrap();
        let outcome = federation.catch_up().unwrap();
        assert_eq!(outcome.errors.len(), 1);
        assert_eq!(outcome.skipped, 0);

        // Inside the hour-long backoff window the sick source is skipped
        // (not polled), while the healthy peer keeps folding.
        b.contribute("alice", entry("COMPOSERS")).unwrap();
        backend_b.record(&b.drain_events()).unwrap();
        let outcome = federation.catch_up().unwrap();
        assert!(outcome.errors.is_empty());
        assert_eq!(outcome.skipped, 1);
        assert_eq!(outcome.events_applied, 1);
        assert_eq!(
            outcome.per_source.len(),
            2,
            "skipped sources keep their slot"
        );

        let status = federation.source_status();
        assert_eq!(status[0].0, SourceId::new("a"));
        assert_eq!(
            status[0].1.health,
            SourceHealth::Degraded {
                consecutive_failures: 1
            }
        );
        assert!(status[0].1.retry_in.is_some());
        assert_eq!(status[1].1.health, SourceHealth::Healthy);
        assert!(
            federation.next_retry_in().unwrap() > Duration::from_secs(3000),
            "the daemon would schedule a distant timer-wheel wake-up, not blind-poll"
        );

        // Operator override: clear the deadline and the next pass polls
        // the source again immediately.
        assert!(federation.retry_source_now(&SourceId::new("a")));
        assert!(!federation.retry_source_now(&SourceId::new("nonesuch")));
        let outcome = federation.catch_up().unwrap();
        assert_eq!(outcome.errors.len(), 1);
        assert_eq!(outcome.skipped, 0);
        std::fs::remove_dir_all(&dir_b).ok();
    }

    #[test]
    fn quarantined_corrupt_source_salvages_its_intact_prefix() {
        use std::io::Write as _;
        let dir_a = unique_dir("salvage-a");
        let dir_b = unique_dir("salvage-b");
        let a = primary("alpha");
        let b = primary("beta");
        a.contribute("alice", entry("COMPOSERS")).unwrap();
        b.contribute("alice", entry("UML2RDBMS")).unwrap();
        let mut backend_a = crate::storage::EventLogBackend::open(&dir_a).unwrap();
        backend_a.record(&a.drain_events()).unwrap();
        let mut backend_b = crate::storage::EventLogBackend::open(&dir_b).unwrap();
        backend_b.record(&b.drain_events()).unwrap();
        let mut federation = Federation::open(
            "fed",
            vec![
                (SourceId::new("a"), dir_a.clone()),
                (SourceId::new("b"), dir_b.clone()),
            ],
        )
        .unwrap();
        let clean = federation.snapshot().clone();
        federation.set_retry_policy(RetryPolicy {
            quarantine_after: 1,
            ..RetryPolicy::immediate()
        });

        // Corruption lands beyond the already-tailed prefix.
        let log = dir_a.join("events-0.jsonl");
        let boundary = std::fs::metadata(&log).unwrap().len();
        let rot = b"{ rotted beyond repair\n";
        let mut file = std::fs::OpenOptions::new().append(true).open(&log).unwrap();
        file.write_all(rot).unwrap();
        drop(file);

        // Fail-stop (the default): the source quarantines and stays sick
        // across passes — corruption is never silently skipped.
        let outcome = federation.catch_up().unwrap();
        assert!(matches!(
            outcome.errors[0].1,
            RepoError::CorruptFrame { offset, .. } if offset == boundary
        ));
        assert_eq!(
            federation.source_status()[0].1.health,
            SourceHealth::Quarantined
        );
        let outcome = federation.catch_up().unwrap();
        assert!(outcome.salvaged.is_empty());
        assert_eq!(outcome.errors.len(), 1);

        // Opt in: the next pass truncates at the corruption boundary,
        // reopens the tail from the intact prefix, and reports exactly
        // what was dropped.
        federation.set_recovery_policy(RecoveryPolicy::SalvagePrefix);
        let outcome = federation.catch_up().unwrap();
        assert!(outcome.errors.is_empty());
        assert_eq!(outcome.salvaged.len(), 1);
        let (source, report) = &outcome.salvaged[0];
        assert_eq!(source, &SourceId::new("a"));
        assert_eq!(report.truncated_at, Some(boundary));
        assert_eq!(report.bytes_dropped, rot.len() as u64);
        assert_eq!(federation.snapshot(), &clean, "intact prefix survives");

        let status = federation.source_status();
        assert_eq!(status[0].1.health, SourceHealth::Healthy, "revived");
        assert!(status[0].1.salvage.is_some(), "the drop stays on record");

        // The salvaged source tails new durable writes as before.
        a.contribute("alice", entry("TRIPLEGRAPH")).unwrap();
        let mut backend_a = crate::storage::EventLogBackend::open(&dir_a).unwrap();
        backend_a.record(&a.drain_events()).unwrap();
        let outcome = federation.catch_up().unwrap();
        assert_eq!(outcome.events_applied, 1);
        assert_eq!(federation.query(&["triplegraph"]).len(), 1);
        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }

    #[test]
    fn supervision_transitions_publish_on_an_attached_health_channel() {
        let dir_a = unique_dir("transitions-a");
        let hidden = unique_dir("transitions-hidden");
        let a = primary("alpha");
        let mut backend_a = crate::storage::EventLogBackend::open(&dir_a).unwrap();
        backend_a.record(&a.drain_events()).unwrap();
        let mut federation =
            Federation::open("fed", vec![(SourceId::new("a"), dir_a.clone())]).unwrap();
        let health = Arc::new(RuntimeHealth::new());
        federation.attach_runtime_health(&health, "fed");

        // Steady healthy state publishes nothing.
        federation.catch_up().unwrap();
        assert!(health.drain().is_empty(), "no news is good news");

        // Failure → degraded transition publishes; recovery publishes.
        std::fs::rename(&dir_a, &hidden).unwrap();
        federation.catch_up().unwrap();
        std::fs::rename(&hidden, &dir_a).unwrap();
        federation.retry_source_now(&SourceId::new("a"));
        federation.catch_up().unwrap();

        let states: Vec<String> = health
            .drain()
            .into_iter()
            .map(|entry| match entry.report {
                HealthReport::Source { source, state, .. } => {
                    assert_eq!(source, "a");
                    state
                }
                other => panic!("expected source reports, got {other:?}"),
            })
            .collect();
        assert_eq!(states, ["degraded", "healthy"]);
        std::fs::remove_dir_all(&dir_a).ok();
    }

    /// A sink that records everything it is told, for observer tests.
    #[derive(Default)]
    struct RecordingSink {
        accepted: Mutex<Vec<RepoEvent>>,
        rebases: Mutex<Vec<usize>>, // record count of each base seen
    }

    impl crate::event::EventSink for RecordingSink {
        fn accept(&self, event: &RepoEvent) {
            self.accepted.lock().unwrap().push(event.clone());
        }
        fn rebased(&self, base: &RepositorySnapshot) {
            self.rebases.lock().unwrap().push(base.records.len());
        }
    }

    #[test]
    fn replica_observers_see_backfill_events_and_rebases() {
        let dir = unique_dir("observe");
        let r = Repository::found("bx", vec![Principal::curator("c")]);
        r.register(Principal::member("alice")).unwrap();
        let mut backend = AutoCompactingEventLog::open(
            &dir,
            CompactionPolicy {
                checkpoint_every: 1_000_000,
            },
        )
        .unwrap();
        backend.record(&r.drain_events()).unwrap();

        let mut replica = Replica::open(&dir).unwrap();
        let sink = Arc::new(RecordingSink::default());
        replica.subscribe(sink.clone());
        assert_eq!(
            sink.rebases.lock().unwrap().as_slice(),
            &[0],
            "subscription backfills with the current (empty-records) base"
        );

        // Tailed events reach the observer verbatim.
        let id = r.contribute("alice", entry("COMPOSERS")).unwrap();
        backend.record(&r.drain_events()).unwrap();
        replica.catch_up().unwrap();
        assert_eq!(sink.accepted.lock().unwrap().len(), 1);

        // A checkpoint crossing notifies rebased, then the tail events.
        backend.checkpoint(&r.snapshot()).unwrap();
        r.comment("alice", &id, "2014-03-28", "observed").unwrap();
        backend.record(&r.drain_events()).unwrap();
        let progress = replica.catch_up().unwrap();
        assert!(progress.rebased);
        assert_eq!(sink.rebases.lock().unwrap().as_slice(), &[0, 1]);
        assert_eq!(sink.accepted.lock().unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn federation_observers_see_namespaced_events() {
        let dir = unique_dir("fed-observe");
        let a = primary("alpha");
        a.contribute("alice", entry("COMPOSERS")).unwrap();
        let mut backend = crate::storage::EventLogBackend::open(&dir).unwrap();
        backend.record(&a.drain_events()).unwrap();

        let mut federation =
            Federation::open("fed", vec![(SourceId::new("a"), dir.clone())]).unwrap();
        let sink = Arc::new(RecordingSink::default());
        federation.subscribe(sink.clone());
        assert_eq!(
            sink.rebases.lock().unwrap().as_slice(),
            &[1],
            "backfill delivers the already-merged base"
        );

        a.comment(
            "alice",
            &EntryId::from_title("COMPOSERS"),
            "2014-03-28",
            "federated",
        )
        .unwrap();
        backend.record(&a.drain_events()).unwrap();
        federation.catch_up().unwrap();
        let accepted = sink.accepted.lock().unwrap();
        assert_eq!(accepted.len(), 1);
        assert_eq!(
            accepted[0].touched().map(|id| id.as_str().to_string()),
            Some("a/composers".to_string()),
            "observers see the namespaced form"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn daemon_hands_the_federation_back() {
        let dir = unique_dir("daemon-back");
        let a = primary("alpha");
        let mut backend = crate::storage::EventLogBackend::open(&dir).unwrap();
        backend.record(&a.drain_events()).unwrap();
        let federation = Federation::open("fed", vec![(SourceId::new("a"), dir.clone())]).unwrap();
        let daemon = ReplicaDaemon::spawn(federation, DaemonConfig::default());
        let federation = daemon.into_federation();
        assert_eq!(federation.name(), "fed");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn daemon_stop_is_prompt_even_mid_interval() {
        let dir = unique_dir("daemon-prompt");
        let a = primary("alpha");
        let mut backend = crate::storage::EventLogBackend::open(&dir).unwrap();
        backend.record(&a.drain_events()).unwrap();
        let federation = Federation::open("fed", vec![(SourceId::new("a"), dir.clone())]).unwrap();
        let mut daemon = ReplicaDaemon::spawn(
            federation,
            DaemonConfig {
                poll_interval: Duration::from_secs(5),
            },
        );
        // Let the immediate first pass land so stop() isn't racing it.
        let settle = std::time::Instant::now();
        while daemon.stats().polls == 0 && settle.elapsed() < Duration::from_secs(5) {
            std::thread::yield_now();
        }
        assert!(daemon.stats().polls >= 1, "the spawn-time pass ran");
        // The next tick is ~5 s out; stop must not wait for it.
        let begin = std::time::Instant::now();
        daemon.stop();
        assert!(
            begin.elapsed() < Duration::from_millis(100),
            "stop waited {:?} of a 5 s poll interval",
            begin.elapsed()
        );
        assert!(!daemon.is_running());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn daemon_on_a_shared_runtime_reports_on_the_unified_channel() {
        let dir_a = unique_dir("daemon-shared-a");
        let dir_b = unique_dir("daemon-shared-b");
        let a = primary("alpha");
        let b = primary("beta");
        a.contribute("alice", entry("COMPOSERS")).unwrap();
        let mut backend_a = crate::storage::EventLogBackend::open(&dir_a).unwrap();
        backend_a.record(&a.drain_events()).unwrap();
        let mut backend_b = crate::storage::EventLogBackend::open(&dir_b).unwrap();
        backend_b.record(&b.drain_events()).unwrap();
        let sources = vec![
            (SourceId::new("a"), dir_a.clone()),
            (SourceId::new("b"), dir_b.clone()),
        ];

        let runtime = crate::runtime::Runtime::new(2);
        // The shared-pool cold open matches the per-pool one exactly.
        let sequential = Federation::open("fed", sources.clone()).unwrap();
        let federation = Federation::open_on("fed", sources, &runtime).unwrap();
        assert_eq!(federation.snapshot(), sequential.snapshot());
        assert_eq!(federation.index(), sequential.index());

        let mut daemon = ReplicaDaemon::spawn_on(
            federation,
            DaemonConfig {
                poll_interval: Duration::from_millis(5),
            },
            &runtime,
            "daemon",
        );
        b.contribute("alice", entry("UML2RDBMS")).unwrap();
        backend_b.record(&b.drain_events()).unwrap();
        daemon.force_catch_up().unwrap();
        assert_eq!(daemon.query(&["uml2rdbms"]).len(), 1);

        let report = runtime
            .health()
            .latest("daemon")
            .expect("every pass publishes on the unified channel");
        match report.report {
            HealthReport::Daemon {
                polls,
                events_applied,
                error,
                ..
            } => {
                assert!(polls >= 1);
                assert!(events_applied >= 1);
                assert!(error.is_none());
            }
            other => panic!("expected a daemon report, got {other:?}"),
        }
        daemon.stop();
        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }
}
