//! Findability (§5.2): keyword search over entries plus type and property
//! filters. "Ensuring that the wiki is google indexed goes a long way" —
//! this is the in-process equivalent.

use std::collections::BTreeMap;

use bx_theory::{Claim, Property};

use crate::repo::{EntryId, RepositorySnapshot};
use crate::template::{ExampleEntry, ExampleType};

/// An inverted index over the latest versions of all entries.
#[derive(Debug, Clone, Default)]
pub struct SearchIndex {
    /// term → (entry → term frequency)
    postings: BTreeMap<String, BTreeMap<EntryId, u32>>,
    /// number of indexed entries
    entries: usize,
}

/// Lowercase alphanumeric tokens of length ≥ 2.
fn tokenize(text: &str) -> impl Iterator<Item = String> + '_ {
    text.split(|c: char| !c.is_ascii_alphanumeric())
        .filter(|t| t.len() >= 2)
        .map(str::to_ascii_lowercase)
}

fn entry_text(entry: &ExampleEntry) -> String {
    let mut text = String::with_capacity(512);
    for part in [
        entry.title.as_str(),
        entry.overview.as_str(),
        entry.models.as_str(),
        entry.consistency.as_str(),
        entry.restoration.forward.as_str(),
        entry.restoration.backward.as_str(),
        entry.discussion.as_str(),
    ] {
        text.push_str(part);
        text.push(' ');
    }
    for v in &entry.variants {
        text.push_str(&v.name);
        text.push(' ');
        text.push_str(&v.description);
        text.push(' ');
    }
    text
}

impl SearchIndex {
    /// Build from a repository snapshot (latest versions only).
    pub fn build(snapshot: &RepositorySnapshot) -> SearchIndex {
        let mut idx = SearchIndex::default();
        for (id, record) in &snapshot.records {
            idx.entries += 1;
            for token in tokenize(&entry_text(record.latest())) {
                *idx.postings
                    .entry(token)
                    .or_default()
                    .entry(id.clone())
                    .or_insert(0) += 1;
            }
        }
        idx
    }

    /// Number of distinct indexed terms.
    pub fn term_count(&self) -> usize {
        self.postings.len()
    }

    /// Number of indexed entries.
    pub fn entry_count(&self) -> usize {
        self.entries
    }

    /// Conjunctive keyword query: entries containing *all* terms, scored
    /// by summed term frequency, sorted by descending score then id.
    pub fn query(&self, terms: &[&str]) -> Vec<(EntryId, u32)> {
        let mut scores: Option<BTreeMap<EntryId, u32>> = None;
        for term in terms {
            let term = term.to_ascii_lowercase();
            let posting = self.postings.get(&term).cloned().unwrap_or_default();
            scores = Some(match scores {
                None => posting,
                Some(prev) => prev
                    .into_iter()
                    .filter_map(|(id, score)| posting.get(&id).map(|tf| (id, score + tf)))
                    .collect(),
            });
        }
        let mut out: Vec<(EntryId, u32)> = scores.unwrap_or_default().into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }
}

/// Entries of a given type, in id order.
pub fn entries_of_type(snapshot: &RepositorySnapshot, ty: ExampleType) -> Vec<EntryId> {
    snapshot
        .records
        .iter()
        .filter(|(_, r)| r.latest().types.contains(&ty))
        .map(|(id, _)| id.clone())
        .collect()
}

/// Entries claiming a property (with either polarity), in id order.
pub fn entries_claiming(snapshot: &RepositorySnapshot, property: Property) -> Vec<EntryId> {
    snapshot
        .records
        .iter()
        .filter(|(_, r)| r.latest().properties.iter().any(|c| c.property == property))
        .map(|(id, _)| id.clone())
        .collect()
}

/// Entries with exactly the given claim (property + polarity).
pub fn entries_with_claim(snapshot: &RepositorySnapshot, claim: Claim) -> Vec<EntryId> {
    snapshot
        .records
        .iter()
        .filter(|(_, r)| r.latest().properties.contains(&claim))
        .map(|(id, _)| id.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::principal::Principal;
    use crate::repo::Repository;
    use crate::template::ExampleEntry;
    use bx_theory::Polarity;

    fn snapshot() -> RepositorySnapshot {
        let r = Repository::found("r", vec![Principal::curator("c")]);
        r.register(Principal::member("a")).unwrap();
        let composers = ExampleEntry::builder("COMPOSERS")
            .of_type(ExampleType::Precise)
            .overview("Composers with names and nationalities.")
            .models("A set of composer objects; a list of pairs.")
            .consistency("Same pairs both sides.")
            .restoration("Delete and append composers.", "Delete and add composers.")
            .discussion("Undoability is too strong for composers.")
            .property(Claim::holds(Property::Correct))
            .property(Claim::fails(Property::Undoable))
            .author("a")
            .build()
            .unwrap();
        let uml = ExampleEntry::builder("UML2RDBMS")
            .of_type(ExampleType::Precise)
            .of_type(ExampleType::Benchmark)
            .overview("Class diagrams to database schemas.")
            .models("UML class diagrams; RDBMS schemas.")
            .consistency("Classes correspond to tables.")
            .restoration("Regenerate tables.", "Regenerate classes.")
            .discussion("The notorious example.")
            .property(Claim::holds(Property::Correct))
            .author("a")
            .build()
            .unwrap();
        r.contribute("a", composers).unwrap();
        r.contribute("a", uml).unwrap();
        r.snapshot()
    }

    #[test]
    fn single_term_query_scores_by_tf() {
        let idx = SearchIndex::build(&snapshot());
        let hits = idx.query(&["composers"]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0.as_str(), "composers");
        assert!(hits[0].1 >= 3, "composers appears several times");
    }

    #[test]
    fn conjunctive_query() {
        let idx = SearchIndex::build(&snapshot());
        // Both entries mention "classes"? Only UML does; "delete" only composers.
        let both = idx.query(&["consistency"]); // not in overview text fields? it's in field names only
        let _ = both;
        let uml_only = idx.query(&["tables", "classes"]);
        assert_eq!(uml_only.len(), 1);
        assert_eq!(uml_only[0].0.as_str(), "uml2rdbms");
        let none = idx.query(&["tables", "composers"]);
        assert!(none.is_empty());
    }

    #[test]
    fn case_insensitive_queries() {
        let idx = SearchIndex::build(&snapshot());
        assert_eq!(idx.query(&["UML2RDBMS"]).len(), 1);
        assert_eq!(idx.query(&["CoMpOsErS"]).len(), 1);
    }

    #[test]
    fn empty_query_returns_nothing() {
        let idx = SearchIndex::build(&snapshot());
        assert!(idx.query(&[]).is_empty());
        assert!(idx.query(&["zzzznothing"]).is_empty());
    }

    #[test]
    fn counts_exposed() {
        let idx = SearchIndex::build(&snapshot());
        assert_eq!(idx.entry_count(), 2);
        assert!(idx.term_count() > 10);
    }

    #[test]
    fn type_filter() {
        let s = snapshot();
        let precise = entries_of_type(&s, ExampleType::Precise);
        assert_eq!(precise.len(), 2);
        let bench = entries_of_type(&s, ExampleType::Benchmark);
        assert_eq!(bench.len(), 1);
        assert_eq!(bench[0].as_str(), "uml2rdbms");
        assert!(entries_of_type(&s, ExampleType::Sketch).is_empty());
    }

    #[test]
    fn property_filters() {
        let s = snapshot();
        let correct = entries_claiming(&s, Property::Correct);
        assert_eq!(correct.len(), 2);
        let not_undoable = entries_with_claim(&s, Claim::fails(Property::Undoable));
        assert_eq!(not_undoable.len(), 1);
        assert_eq!(not_undoable[0].as_str(), "composers");
        assert!(entries_with_claim(&s, Claim::holds(Property::Undoable)).is_empty());
        let _ = Polarity::Holds;
    }
}
